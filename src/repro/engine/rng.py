"""Deterministic named random streams.

A simulation draws randomness for several independent purposes (arrival
times, partition choices, declared-cost errors, retry jitter).  Giving each
purpose its own stream — derived deterministically from one master seed and
the stream's name — means a change in how one stream is consumed cannot
perturb the draws of another, so experiments stay comparable across code
changes and scheduler choices.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from ``master_seed`` and ``name``.

    Uses SHA-256 so that stream seeds are effectively independent even for
    adjacent master seeds or similar names.
    """
    payload = f"{master_seed}:{name}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class RandomStreams:
    """A family of independent, reproducible random generators."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The generator for ``name``, created on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    # -- convenience draws ---------------------------------------------------

    def exponential(self, name: str, mean: float) -> float:
        """One exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def normal(self, name: str, mu: float, sigma: float) -> float:
        """One normal variate (sigma = 0 returns mu exactly)."""
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if sigma == 0:
            return mu
        return self.stream(name).gauss(mu, sigma)

    def choice(self, name: str, items: Sequence[T]) -> T:
        """One uniformly random element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self.stream(name).choice(items)

    def sample(self, name: str, items: Sequence[T], k: int) -> List[T]:
        """``k`` distinct uniformly random elements of ``items``."""
        if k > len(items):
            raise ValueError(f"cannot sample {k} items from {len(items)}")
        return self.stream(name).sample(items, k)

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform variate on [low, high]."""
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """One uniform integer on [low, high] inclusive."""
        return self.stream(name).randint(low, high)
