"""Core of the discrete-event engine: events, processes and the environment.

Time is a number (the simulator uses integer milliseconds, "clocks", but the
kernel works with any non-negative numeric delay).  The three central
concepts are:

* :class:`Event` — a one-shot occurrence with a value.  Callbacks attached to
  an event run when the environment processes it.
* :class:`Process` — a generator wrapped as an event.  The generator yields
  events; the process resumes when each yielded event fires and the process
  event itself succeeds with the generator's return value.
* :class:`Environment` — the clock plus a heap of events.  Same-time events
  are processed in schedule order, which makes whole simulations
  reproducible bit-for-bit.

The heap is a *slab* heap: :class:`Event` instances are pushed directly
(ordered by their ``_when``/``_order`` slots via :meth:`Event.__lt__`)
instead of being boxed into ``(time, seq, event)`` tuples.  That removes one
tuple allocation and two indirections per scheduled event — the hottest
allocation site of a run.  Removal from the middle of the heap is lazy:
:meth:`Environment.unschedule` marks the entry dead and the pop loop skips
it, so cancellations cost O(1) instead of O(n).

Every class on this hot path is ``__slots__``-ed and registered in
:data:`HOT_CLASSES`; ``tests/engine/test_slots.py`` guards the registry so a
future field addition cannot silently reintroduce per-instance dicts.
"""

from __future__ import annotations

from heapq import heapify, heappush, heappop
from itertools import count
from typing import (Any, Callable, Dict, Generator, Iterable, List, Optional,
                    TypeVar, Union)

from repro.errors import EngineStateError

_PENDING = object()

#: Classes whose instances populate the event heap or the per-event hot
#: path.  Each must be fully ``__slots__``-ed (no instance ``__dict__``).
HOT_CLASSES: List[type] = []

_T = TypeVar("_T", bound=type)


def register_hot_class(cls: _T) -> _T:
    """Class decorator: add ``cls`` to the slots-guarded registry."""
    HOT_CLASSES.append(cls)
    return cls


@register_hot_class
class _FailureCarrier:
    """Minimal event-shaped object used to throw an error into a process."""

    __slots__ = ("_ok", "_value", "_defused")

    def __init__(self, exception: BaseException) -> None:
        self._ok = False
        self._value = exception
        self._defused = True


def _failure(exception: BaseException) -> "_FailureCarrier":
    return _FailureCarrier(exception)


@register_hot_class
class Event:
    """A one-shot occurrence inside an :class:`Environment`.

    An event starts *untriggered*; calling :meth:`succeed` or :meth:`fail`
    schedules it, and the environment then *processes* it, running the
    attached callbacks.  Processes wait on events simply by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed",
                 "_defused", "_when", "_sub", "_rank", "_order", "_dead")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._processed = False
        # Failures must not pass silently: if a failed event is never
        # yielded-on, the environment re-raises at the end of the run.
        self._defused = False
        # Slab-heap fields, set by Environment._schedule; ``_dead`` marks
        # a lazily deleted entry that the pop loop discards.  ``_sub``
        # and ``_rank`` refine same-``_when`` tie-breaking: ``_sub`` is a
        # virtual draw instant (defaults to the scheduling instant, which
        # leaves ordinary ordering untouched — ``_order`` is already
        # monotone in schedule time, so (when, sub, order) ranks exactly
        # like (when, order)) and ``_rank`` a small actor index
        # (defaults to 0).  Together they let actors whose event *times*
        # are pure arithmetic (the data-node quantum loops) order
        # exact-time ties by arithmetic-only keys, independent of which
        # server loop variant created the event first (see
        # ``Environment.timeout_until``).
        self._when = 0.0
        self._sub = 0.0
        self._rank = 0
        self._order = 0
        self._dead = False

    def __lt__(self, other: "Event") -> bool:
        if self._when != other._when:
            return self._when < other._when
        if self._sub != other._sub:
            return self._sub < other._sub
        if self._rank != other._rank:
            return self._rank < other._rank
        return self._order < other._order

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event has not triggered yet."""
        if self._value is _PENDING:
            raise EngineStateError("value of untriggered event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` (chainable)."""
        if self._value is not _PENDING:
            raise EngineStateError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception (chainable)."""
        if self._value is not _PENDING:
            raise EngineStateError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


@register_hot_class
class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


@register_hot_class
class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


@register_hot_class
class Process(Event):
    """A running process; also an event that fires when the process ends.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event fails, the exception is thrown into the generator, so processes can
    handle failures with ordinary ``try``/``except``.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment",
                 generator: Generator["Event", Any, Any]) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        current: Union[Event, _FailureCarrier] = event
        while True:
            try:
                if current._ok:
                    next_event = self._generator.send(current._value)
                else:
                    current._defused = True
                    next_event = self._generator.throw(current._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._defused = False
                self.env._schedule(self)
                break

            if not isinstance(next_event, Event):
                current = _failure(TypeError(
                    f"process yielded a non-event: {next_event!r}"))
                continue
            if next_event.env is not self.env:
                current = _failure(EngineStateError(
                    "process yielded an event from a different environment"))
                continue

            self._target = next_event
            if next_event._processed:
                # Already fired: resume synchronously with its value.
                current = next_event
                continue
            next_event.callbacks.append(self._resume)
            break

        self.env._active_process = None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise EngineStateError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise EngineStateError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)  # repro-lint: disable=RL014 -- deliberately constructs a pre-triggered event: it is fresh and unshared, so the single-trigger guard succeed()/fail() enforce cannot be violated here
        event._defused = True
        # Detach from whatever the process currently waits on.
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        event.callbacks.append(self._resume)
        self.env._schedule(event)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


@register_hot_class
class Condition(Event):
    """An event that triggers based on a set of sub-events.

    Used through :class:`AnyOf` / :class:`AllOf`.  The value is a dict
    mapping each *triggered* sub-event to its value at trigger time.
    """

    __slots__ = ("_events", "_evaluate", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[int, int], bool]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._done = 0
        for event in self._events:
            if event.env is not self.env:
                raise EngineStateError(
                    "condition spans events from different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event._processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> Dict[Event, Any]:
        return {event: event._value for event in self._events
                if event._processed}

    def _check(self, event: Event) -> None:
        if self.triggered:
            # The condition already resolved; a sub-event failing now
            # (e.g. a fault cancelling the remaining shares of a
            # declustered step) has no waiter left, so defuse it.
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._evaluate(len(self._events), self._done):
            self.succeed(self._collect())


@register_hot_class
class AnyOf(Condition):
    """Triggers as soon as any sub-event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda total, done: done >= 1)


@register_hot_class
class AllOf(Condition):
    """Triggers when every sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda total, done: done == total)


@register_hot_class
class Environment:
    """The simulation clock and event loop."""

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "_run_until",
                 "_track", "_live", "_inert")

    def __init__(self, initial_time: float = 0) -> None:
        self._now = initial_time
        self._queue: List[Event] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self._run_until = float("inf")
        # Affect tracking (see affecting_horizon): disabled by default so
        # runs that never batch pay only one predictable branch per
        # schedule.  When enabled, ``_live`` mirrors every scheduled
        # non-inert event and ``_inert`` holds (affect, order, event)
        # entries for events declared inert via ``timeout_until``.
        self._track = False
        self._live: List[Event] = []
        self._inert: List[tuple] = []

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` units from now."""
        return Timeout(self, delay, value)

    def timeout_until(self, when: float, value: Any = None,
                      affect: Optional[float] = None,
                      sort_time: Optional[float] = None,
                      sort_rank: Optional[int] = None) -> Event:
        """An event that fires at the *absolute* time ``when``.

        Equivalent to ``timeout(when - now)`` except that the firing
        instant is exactly ``when``: the ``now + (when - now)`` float
        round-trip of a relative delay is not guaranteed to reproduce
        ``when`` bit-for-bit.  The batched data-node loop relies on this
        to land its coalesced quantum boundary on the identical instant
        the reference per-quantum loop would have reached additively.

        ``affect`` (only meaningful with affect tracking enabled)
        declares the event *inert*: its own firing cannot influence any
        other actor before the absolute time ``affect`` — the earliest
        instant the yielding actor could produce an externally visible
        effect (for a data node, complete a step).  Inert events are
        excluded from :meth:`affecting_horizon` up to their ``affect``
        bound, which must therefore be >= ``when``.

        ``sort_time`` and ``sort_rank`` set the event's virtual draw
        instant and actor rank (see ``Event._sub`` / ``Event._rank``):
        same-``when`` events order by ``(sort_time, sort_rank)`` before
        falling back to schedule order.  A coalescing loop passes the
        instant at which its uncoalesced equivalent would have created
        the event plus a stable per-actor rank, making exact-time tie
        order a function of arithmetic quantities only — never of which
        loop variant happened to create its event first.  ``sort_time``
        must not exceed ``when``; defaults to ``now``.  ``sort_rank``
        must be positive when given (rank 0 is reserved for ordinary
        events, which keep plain schedule order among themselves).
        """
        if when < self._now:
            raise ValueError(
                f"timeout_until({when!r}) lies in the past (now={self._now!r})")
        if sort_time is not None and sort_time > when:
            raise ValueError(
                f"sort_time {sort_time!r} lies beyond the event's own "
                f"time {when!r}")
        if sort_rank is not None and sort_rank <= 0:
            raise ValueError(f"sort_rank must be positive: {sort_rank!r}")
        event = Event(self)
        event._ok = True
        event._value = value  # repro-lint: disable=RL014 -- heap fast path: the timeout is born triggered (like Timeout.__init__) on a fresh, unshared event, so the succeed()/fail() single-trigger guard is not bypassable by anyone else
        event._when = when
        event._sub = self._now if sort_time is None else sort_time
        event._rank = 0 if sort_rank is None else sort_rank
        event._order = next(self._seq)
        heappush(self._queue, event)
        if self._track:
            if affect is not None:
                if affect < when:
                    raise ValueError(
                        f"affect bound {affect!r} precedes the event's own "
                        f"time {when!r}")
                heappush(self._inert, (affect, event._order, event))
            else:
                heappush(self._live, event)
        return event

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a process; returns its process event."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0) -> None:
        event._when = self._now + delay
        event._sub = self._now
        event._rank = 0
        event._order = next(self._seq)
        heappush(self._queue, event)
        if self._track:
            heappush(self._live, event)

    def unschedule(self, event: Event) -> None:
        """Lazily remove a scheduled-but-unprocessed event from the queue.

        The heap entry is only marked; the pop loop discards it when it
        surfaces.  The event must not be rescheduled afterwards.
        """
        if event._processed:
            raise EngineStateError("cannot unschedule a processed event")
        event._dead = True

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        queue = self._queue
        while queue:
            head = queue[0]
            if head._dead:
                heappop(queue)
                continue
            return head._when
        return float("inf")

    def horizon(self) -> float:
        """Earliest instant anything other than the caller can observe.

        The minimum of the next live event's time and the active
        ``run(until=<time>)`` cutoff.  The cutoff matters: it is enforced
        by the run loop, not by a heap entry, so :meth:`peek` alone would
        let a batching process pre-account work completing *after* the
        instant the run stops and state is inspected.
        """
        when = self.peek()
        return when if when < self._run_until else self._run_until

    def enable_affect_tracking(self) -> None:
        """Start classifying events as inert/non-inert (idempotent).

        Called by batched data nodes at construction; until then the
        tracking heaps stay empty and scheduling pays only a dead
        branch, so reference-mode and pure-engine runs are unaffected.
        Every event already scheduled is conservatively non-inert.
        """
        if self._track:
            return
        self._track = True
        self._live = [event for event in self._queue if not event._dead]
        heapify(self._live)

    def affecting_horizon(self) -> float:
        """Earliest instant any *other* actor could affect the caller.

        Like :meth:`horizon`, but inert events (non-completing data-node
        quanta yielded through ``timeout_until(..., affect=...)``) are
        counted at their declared ``affect`` bound — the earliest time
        the sleeping actor could produce an externally visible effect —
        instead of at their firing time.  An actor pre-playing work up
        to this bound can therefore ignore other nodes' internal quantum
        boundaries: everything that could actually reach it (a process
        resumption, a completion, a fault, the run cutoff) is accounted
        at or before the returned instant.
        """
        if not self._track:
            return self.horizon()
        best = self._run_until
        live = self._live
        while live:
            head = live[0]
            if head._dead or head._processed:
                heappop(live)
                continue
            if head._when < best:
                best = head._when
            break
        inert = self._inert
        while inert:
            affect, _, event = inert[0]
            if event._dead or event._processed:
                heappop(inert)
                continue
            if affect < best:
                best = affect
            break
        return best

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time."""
        queue = self._queue
        while queue:
            event = heappop(queue)
            if event._dead:
                continue
            self._now = event._when
            callbacks = event.callbacks
            event.callbacks = []
            event._processed = True
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused and not callbacks:
                # A failure nobody waited on: surface it, don't lose it.
                raise event._value
            return
        raise EngineStateError("no more events to process")

    def run(self, until: Union[float, Event, None] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or an event.

        ``until`` may be a number (run up to that time, then set ``now`` to
        it) or an :class:`Event` (run until it is processed and return its
        value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not lie in the past "
                    f"(now={self._now})")

        # Publish the cutoff so Environment.horizon() (the batched
        # data-node's pre-play bound) never looks past the instant this
        # run stops and counters become observable.
        self._run_until = stop_time

        # The hot loop: identical semantics to repeated step() calls, with
        # the pop/dispatch inlined so the per-event overhead is one heap
        # operation plus the callback calls.
        queue = self._queue
        try:
            while queue:
                head = queue[0]
                if head._dead:
                    heappop(queue)
                    continue
                if stop_event is not None and stop_event._processed:
                    if not stop_event._ok:
                        stop_event._defused = True
                        raise stop_event._value
                    return stop_event._value
                if head._when > stop_time:
                    self._now = stop_time
                    return None
                heappop(queue)
                self._now = head._when
                callbacks = head.callbacks
                head.callbacks = []
                head._processed = True
                for callback in callbacks:
                    callback(head)
                if not head._ok and not head._defused and not callbacks:
                    raise head._value
        finally:
            self._run_until = float("inf")

        if stop_event is not None:
            if stop_event._processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise EngineStateError(
                "event queue drained before the awaited event triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
