"""Core of the discrete-event engine: events, processes and the environment.

Time is a number (the simulator uses integer milliseconds, "clocks", but the
kernel works with any non-negative numeric delay).  The three central
concepts are:

* :class:`Event` — a one-shot occurrence with a value.  Callbacks attached to
  an event run when the environment processes it.
* :class:`Process` — a generator wrapped as an event.  The generator yields
  events; the process resumes when each yielded event fires and the process
  event itself succeeds with the generator's return value.
* :class:`Environment` — the clock plus a heap of ``(time, seq, event)``
  entries.  Same-time events are processed in schedule order, which makes
  whole simulations reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import (Any, Callable, Dict, Generator, Iterable, List, Optional,
                    Tuple, Union)

from repro.errors import EngineStateError

_PENDING = object()


class _FailureCarrier:
    """Minimal event-shaped object used to throw an error into a process."""

    def __init__(self, exception: BaseException) -> None:
        self._ok = False
        self._value = exception
        self._defused = True


def _failure(exception: BaseException) -> "_FailureCarrier":
    return _FailureCarrier(exception)


class Event:
    """A one-shot occurrence inside an :class:`Environment`.

    An event starts *untriggered*; calling :meth:`succeed` or :meth:`fail`
    schedules it, and the environment then *processes* it, running the
    attached callbacks.  Processes wait on events simply by yielding them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._processed = False
        # Failures must not pass silently: if a failed event is never
        # yielded-on, the environment re-raises at the end of the run.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event has not triggered yet."""
        if self._value is _PENDING:
            raise EngineStateError("value of untriggered event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` (chainable)."""
        if self.triggered:
            raise EngineStateError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception (chainable)."""
        if self.triggered:
            raise EngineStateError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event fails, the exception is thrown into the generator, so processes can
    handle failures with ordinary ``try``/``except``.
    """

    def __init__(self, env: "Environment",
                 generator: Generator["Event", Any, Any]) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        current: Union[Event, _FailureCarrier] = event
        while True:
            try:
                if current._ok:
                    next_event = self._generator.send(current._value)
                else:
                    current._defused = True
                    next_event = self._generator.throw(current._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._defused = False
                self.env._schedule(self)
                break

            if not isinstance(next_event, Event):
                current = _failure(TypeError(
                    f"process yielded a non-event: {next_event!r}"))
                continue
            if next_event.env is not self.env:
                current = _failure(EngineStateError(
                    "process yielded an event from a different environment"))
                continue

            self._target = next_event
            if next_event._processed:
                # Already fired: resume synchronously with its value.
                current = next_event
                continue
            next_event.callbacks.append(self._resume)
            break

        self.env._active_process = None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise EngineStateError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise EngineStateError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        # Detach from whatever the process currently waits on.
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        event.callbacks.append(self._resume)
        self.env._schedule(event)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Condition(Event):
    """An event that triggers based on a set of sub-events.

    Used through :class:`AnyOf` / :class:`AllOf`.  The value is a dict
    mapping each *triggered* sub-event to its value at trigger time.
    """

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[int, int], bool]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._done = 0
        for event in self._events:
            if event.env is not self.env:
                raise EngineStateError(
                    "condition spans events from different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event._processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> Dict[Event, Any]:
        return {event: event._value for event in self._events
                if event._processed}

    def _check(self, event: Event) -> None:
        if self.triggered:
            # The condition already resolved; a sub-event failing now
            # (e.g. a fault cancelling the remaining shares of a
            # declustered step) has no waiter left, so defuse it.
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._evaluate(len(self._events), self._done):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers as soon as any sub-event triggers."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda total, done: done >= 1)


class AllOf(Condition):
    """Triggers when every sub-event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda total, done: done == total)


class Environment:
    """The simulation clock and event loop."""

    def __init__(self, initial_time: float = 0) -> None:
        self._now = initial_time
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a process; returns its process event."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time."""
        if not self._queue:
            raise EngineStateError("no more events to process")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused and not callbacks:
            # A failure nobody waited on: surface it instead of losing it.
            raise event._value

    def run(self, until: Union[float, Event, None] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or an event.

        ``until`` may be a number (run up to that time, then set ``now`` to
        it) or an :class:`Event` (run until it is processed and return its
        value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not lie in the past "
                    f"(now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event._processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event._processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise EngineStateError(
                "event queue drained before the awaited event triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
