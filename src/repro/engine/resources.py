"""Shared resources for the discrete-event engine.

The simulator models two kinds of servers:

* :class:`Resource` — a counted resource with FIFO queueing (used for the
  control node's CPU, which serialises concurrency-control work).
* :class:`PriorityResource` — same, but requests carry a priority and lower
  values are served first (ties broken FIFO).
* :class:`Store` — an unbounded message queue between processes (used for
  the per-object weight-adjustment messages from data nodes to the control
  node).

The usage protocol mirrors SimPy::

    req = cpu.request()
    yield req
    try:
        yield env.timeout(cost)
    finally:
        cpu.release(req)

Cancelling a queued request is *lazy* in both resource flavours: the
request is flagged and the wake-up loop discards it when it surfaces, so a
cancellation costs O(1) instead of an O(n) scan of the wait queue.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Deque, List, Optional, Tuple
from collections import deque

from repro.engine.core import Environment, Event, register_hot_class
from repro.errors import EngineStateError


@register_hot_class
class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource", "_cancelled")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self._cancelled = False


@register_hot_class
class Resource:
    """A counted resource with FIFO discipline.

    ``capacity`` units exist; a :meth:`request` either succeeds immediately
    or queues.  :meth:`release` wakes the head of the queue.  Cancelling a
    queued request (e.g. after losing a race with a timeout) is supported
    via :meth:`cancel`.
    """

    __slots__ = ("env", "capacity", "_in_use", "_waiting", "_busy_area",
                 "_last_change", "_cancelled_waiting")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        # Cumulative busy integral for utilization reporting.
        self._busy_area = 0.0
        self._last_change = env.now
        # Lazily cancelled requests still sitting in _waiting.
        self._cancelled_waiting = 0

    @property
    def in_use(self) -> int:
        """Number of units currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of live requests waiting for a unit."""
        return len(self._waiting) - self._cancelled_waiting

    def _account(self) -> None:
        now = self.env.now
        self._busy_area += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Unit-weighted busy time accumulated so far (for utilization)."""
        self._account()
        return self._busy_area

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted unit, waking the next queued request."""
        if request.resource is not self:
            raise EngineStateError("request released to the wrong resource")
        if not request.triggered:
            raise EngineStateError(
                "cannot release a request that was never granted; "
                "use cancel() for queued requests")
        self._account()
        self._in_use -= 1
        if self._in_use < 0:
            raise EngineStateError("resource released more than acquired")
        self._wake_next()

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (ungranted) request — lazy, O(1)."""
        if request.triggered:
            raise EngineStateError("cannot cancel a granted request")
        if request.resource is not self or request._cancelled:
            raise EngineStateError("request is not queued on this resource")
        request._cancelled = True
        self._cancelled_waiting += 1

    def _wake_next(self) -> None:
        while self._waiting and self._in_use < self.capacity:
            req = self._waiting.popleft()
            if req._cancelled:
                self._cancelled_waiting -= 1
                continue
            self._in_use += 1
            req.succeed()


@register_hot_class
class PriorityRequest(Request):
    """A claim on a :class:`PriorityResource` carrying a priority key."""

    __slots__ = ("priority",)

    def __init__(self, resource: "PriorityResource", priority: float) -> None:
        super().__init__(resource)
        self.priority = priority


@register_hot_class
class PriorityResource(Resource):
    """A counted resource serving lower-priority-value requests first."""

    __slots__ = ("_heap", "_ticket")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: List[Tuple[float, int, PriorityRequest]] = []
        self._ticket = count()

    @property
    def queue_length(self) -> int:
        return sum(1 for _, _, req in self._heap if not req.triggered)

    def request(self, priority: float = 0) -> PriorityRequest:  # type: ignore[override]
        req = PriorityRequest(self, priority)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            req.succeed()
        else:
            heapq.heappush(self._heap, (priority, next(self._ticket), req))
        return req

    def cancel(self, request: Request) -> None:
        if request.triggered:
            raise EngineStateError("cannot cancel a granted request")
        # Lazy deletion: mark and skip at wake time.
        request._cancelled = True

    def _wake_next(self) -> None:
        while self._heap and self._in_use < self.capacity:
            _, _, req = heapq.heappop(self._heap)
            if req._cancelled:
                continue
            self._in_use += 1
            req.succeed()


@register_hot_class
class Store:
    """An unbounded FIFO channel of items between processes."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking one waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek(self) -> Optional[Any]:
        """The next item without removing it, or None when empty."""
        return self._items[0] if self._items else None
