"""Discrete-event simulation kernel.

A small, dependency-free process-oriented DES in the style of SimPy:
processes are Python generators that ``yield`` events; the
:class:`~repro.engine.core.Environment` advances a virtual clock and resumes
processes when the events they wait on are triggered.

The kernel is deliberately deterministic: events scheduled for the same
instant fire in schedule order (a monotone sequence number breaks ties), and
all randomness is confined to :class:`~repro.engine.rng.RandomStreams`, which
derives independent named substreams from a single integer seed.

Public surface::

    from repro.engine import Environment, Event, Timeout, Process
    from repro.engine import Resource, PriorityResource, Store
    from repro.engine import RandomStreams

    env = Environment()

    def worker(env, resource):
        with (yield from resource.acquire()):
            yield env.timeout(5)

    env.process(worker(env, Resource(env, capacity=1)))
    env.run(until=100)
"""

from repro.engine.core import Environment, Event, Process, Timeout, AnyOf, AllOf
from repro.engine.resources import PriorityResource, Resource, Store
from repro.engine.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "Store",
    "Timeout",
]
