"""The erroneous-declaration model of Experiment 4.

Each step's *declared* I/O demand is ``C = C0 * (1 + x)`` where ``C0`` is
the exact demand and ``x ~ Normal(0, sigma)``; ``C`` is clipped to 0 when
``x <= -1``.  Actual execution always uses ``C0`` — only what the
scheduler believes is distorted, which is precisely what stresses the
WTPG weights.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.transaction import Step
from repro.engine.rng import RandomStreams


def declare_with_error(steps: Sequence[Step], streams: RandomStreams,
                       sigma: float, stream_name: str = "declared-error",
                       ) -> List[Step]:
    """Steps with declared costs distorted by the paper's error model."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0:
        return list(steps)
    out: List[Step] = []
    for step in steps:
        x = streams.normal(stream_name, 0.0, sigma)
        declared = step.cost * (1.0 + x) if x > -1.0 else 0.0
        out.append(Step(step.partition, step.mode, step.cost,
                        declared_cost=declared))
    return out
