"""The paper's transaction patterns (Experiments 1-4) and a pattern DSL.

Pattern 1 (Experiments 1 and 4), on 16 partitions of 5 objects::

    r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)

a join of the indexed 20 % selection of F1 with a full scan of F2,
updating 10 % of the read data in both (the 2a|P| bulk-update rule gives
the 0.2 and 1 object write costs).  F1 and F2 are drawn uniformly,
distinct, from all 16 partitions.

Pattern 2 (Experiment 2), 8 read-only partitions of 5 objects plus
``NumHots`` hot partitions of 1 object::

    r(B:5) -> w(F1:1) -> w(F2:1)

Pattern 3 (Experiment 3), same layout with NumHots = 8 but a shorter
first step and heavier last step — longer blocking time::

    r(B:4) -> w(F1:1) -> w(F2:2)
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.transaction import Step, TransactionSpec
from repro.engine.rng import RandomStreams
from repro.errors import WorkloadError
from repro.machine.partition import Catalog
from repro.workloads.errors import declare_with_error

StepTemplate = Tuple[str, str, float]  # (op 'r'/'w', symbol, cost)

_PATTERN_RE = re.compile(r"^([rw])\(([A-Za-z]\w*):(\d+(?:\.\d+)?)\)$")


def parse_pattern(text: str) -> List[StepTemplate]:
    """Parse the paper's pattern notation.

    >>> parse_pattern("r(F1:1) -> w(F2:0.2)")
    [('r', 'F1', 1.0), ('w', 'F2', 0.2)]
    """
    templates: List[StepTemplate] = []
    for token in text.split("->"):
        token = token.strip()
        match = _PATTERN_RE.match(token)
        if not match:
            raise WorkloadError(f"cannot parse pattern step {token!r}")
        op, symbol, cost = match.groups()
        templates.append((op, symbol, float(cost)))
    if not templates:
        raise WorkloadError("empty pattern")
    return templates


def bind_pattern(tid: int, templates: Sequence[StepTemplate],
                 bindings: Dict[str, int]) -> TransactionSpec:
    """Instantiate a pattern with concrete partition ids per symbol."""
    steps: List[Step] = []
    for op, symbol, cost in templates:
        if symbol not in bindings:
            raise WorkloadError(f"no binding for pattern symbol {symbol!r}")
        partition = bindings[symbol]
        steps.append(Step.read(partition, cost) if op == "r"
                     else Step.write(partition, cost))
    return TransactionSpec(tid, steps)


class PatternWorkload:
    """A workload drawing pattern bindings at random per arrival.

    ``binder`` maps a :class:`RandomStreams` to the symbol->partition
    bindings of one transaction.  ``error_sigma`` applies the Experiment 4
    declared-cost error model on top.
    """

    def __init__(self, name: str, templates: Sequence[StepTemplate],
                 binder: Callable[[RandomStreams], Dict[str, int]],
                 error_sigma: float = 0.0) -> None:
        self.name = name
        self.templates = list(templates)
        self.binder = binder
        self.error_sigma = error_sigma

    def __call__(self, tid: int, streams: RandomStreams) -> TransactionSpec:
        spec = bind_pattern(tid, self.templates, self.binder(streams))
        if self.error_sigma > 0:
            steps = declare_with_error(spec.steps, streams, self.error_sigma)
            spec = TransactionSpec(tid, steps)
        return spec

    def __repr__(self) -> str:
        body = " -> ".join(f"{op}({sym}:{cost:g})"
                           for op, sym, cost in self.templates)
        return f"<PatternWorkload {self.name}: {body}>"


# -- Pattern 1 (Experiments 1 and 4) ------------------------------------------

PATTERN1_TEXT = "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)"


def pattern1(num_partitions: int = 16,
             error_sigma: float = 0.0) -> PatternWorkload:
    """Experiment 1 workload: the join-and-update BAT on 16 partitions."""
    if num_partitions < 2:
        raise WorkloadError("pattern1 needs at least two partitions")
    pids = list(range(num_partitions))

    def binder(streams: RandomStreams) -> Dict[str, int]:
        f1, f2 = streams.sample("pattern1-partitions", pids, 2)
        return {"F1": f1, "F2": f2}

    return PatternWorkload("Pattern1", parse_pattern(PATTERN1_TEXT), binder,
                           error_sigma=error_sigma)


def pattern1_catalog(num_partitions: int = 16, num_nodes: int = 8) -> Catalog:
    """16 partitions of 5 objects, striped mod 8."""
    return Catalog.uniform(num_partitions, size_objects=5.0,
                           num_nodes=num_nodes)


# -- Patterns 2 and 3 (Experiments 2 and 3) ------------------------------------

PATTERN2_TEXT = "r(B:5) -> w(F1:1) -> w(F2:1)"
PATTERN3_TEXT = "r(B:4) -> w(F1:1) -> w(F2:2)"


def _hot_set_binder(num_readonly: int, num_hots: int,
                    ) -> Callable[[RandomStreams], Dict[str, int]]:
    readonly_pids = list(range(num_readonly))
    hot_pids = list(range(num_readonly, num_readonly + num_hots))

    def binder(streams: RandomStreams) -> Dict[str, int]:
        b = streams.choice("hotset-readonly", readonly_pids)
        f1, f2 = streams.sample("hotset-hot", hot_pids, 2)
        return {"B": b, "F1": f1, "F2": f2}

    return binder


def pattern2(num_hots: int = 8, num_readonly: int = 8) -> PatternWorkload:
    """Experiment 2 workload: scan a read-only file, update two hot ones."""
    if num_hots < 2:
        raise WorkloadError("pattern2 needs at least two hot partitions")
    return PatternWorkload("Pattern2", parse_pattern(PATTERN2_TEXT),
                           _hot_set_binder(num_readonly, num_hots))


def pattern3(num_hots: int = 8, num_readonly: int = 8) -> PatternWorkload:
    """Experiment 3 workload: like Pattern2 with longer blocking time."""
    if num_hots < 2:
        raise WorkloadError("pattern3 needs at least two hot partitions")
    return PatternWorkload("Pattern3", parse_pattern(PATTERN3_TEXT),
                           _hot_set_binder(num_readonly, num_hots))


def pattern2_catalog(num_hots: int = 8, num_readonly: int = 8,
                     num_nodes: int = 8) -> Catalog:
    """8 read-only partitions of 5 objects + NumHots hot ones of 1 object."""
    return Catalog.hot_set(num_hots=num_hots, hot_size=1.0,
                           num_readonly=num_readonly, readonly_size=5.0,
                           num_nodes=num_nodes)


pattern3_catalog = pattern2_catalog


# -- Bulk scan (scale runs) ----------------------------------------------------


def bulk_scan(num_partitions: int = 64, scan_objects: float = 512.0,
              update_objects: float = 1.0) -> PatternWorkload:
    """Scale-run workload: a full scan of one partition plus a small
    trailing update, ``r(F:scan) -> w(F:update)``.

    Each transaction spends hundreds of uninterrupted quanta on a single
    data node — the regime the batched node loop coalesces.  At light
    load (utilization well below ``1/num_nodes`` per node) almost every
    scan runs alone between scheduler events, so batches approach the
    full scan length.
    """
    if num_partitions < 1:
        raise WorkloadError("bulk_scan needs at least one partition")
    templates = [("r", "F", float(scan_objects)),
                 ("w", "F", float(update_objects))]
    pids = list(range(num_partitions))

    def binder(streams: RandomStreams) -> Dict[str, int]:
        return {"F": streams.choice("bulk-scan-partition", pids)}

    return PatternWorkload("BulkScan", templates, binder)


def bulk_scan_catalog(num_partitions: int = 64, scan_objects: float = 512.0,
                      num_nodes: int = 64) -> Catalog:
    """One scan-sized partition per node (pid mod num_nodes placement)."""
    return Catalog.uniform(num_partitions, size_objects=float(scan_objects),
                           num_nodes=num_nodes)
