"""Mixed transaction processing: BATs plus short transactions.

The paper's conclusion points at mixed workloads as the open problem:
"in mixed transaction processing, different schedulers are necessary for
different classes of jobs."  This module provides the substrate to study
that question on our machine:

* :func:`short_transactions` — debit-credit-style jobs touching one or
  two partitions for a fraction of an object each (the on-line class);
* :class:`MixedWorkload` — a Bernoulli mixture of a BAT workload and a
  short workload, labelling each transaction with its class so per-class
  response times come out of the metrics directly.

The headline phenomenon it exposes: under one shared partition-level
scheduler, a single BAT holding an X lock stalls every short transaction
on that partition for its whole lifetime — quantified in
``examples/mixed_service.py``.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.transaction import Step, TransactionSpec
from repro.engine.rng import RandomStreams
from repro.errors import WorkloadError

#: The workload-callable shape the cluster consumes (kept structural
#: here: importing machine.cluster's alias would invert the layering).
WorkloadFn = Callable[[int, RandomStreams], TransactionSpec]

BAT_LABEL = "bat"
SHORT_LABEL = "short"


def short_transactions(num_partitions: int, read_cost: float = 0.05,
                       write_cost: float = 0.1,
                       write_fraction: float = 0.5,
                       label: str = SHORT_LABEL) -> WorkloadFn:
    """A debit-credit-style short-transaction workload.

    Each job reads one random partition and, with ``write_fraction``
    probability, updates another.  Costs default to 1/20th and 1/10th of
    an object (tens of milliseconds at ObjTime = 1 s) — tiny against a
    BAT but still partition-granule locked, which is exactly the paper's
    point about lock granularity in mixed processing.
    """
    if num_partitions < 2:
        raise WorkloadError("short transactions need at least two partitions")
    if not 0 <= write_fraction <= 1:
        raise WorkloadError("write_fraction must lie in [0, 1]")
    pids = list(range(num_partitions))

    def workload(tid: int, streams: RandomStreams) -> TransactionSpec:
        first = streams.choice("short-partitions", pids)
        steps: List[Step] = [Step.read(first, read_cost)]
        if streams.uniform("short-writes", 0.0, 1.0) < write_fraction:
            second = streams.choice("short-partitions", pids)
            steps.append(Step.write(second, write_cost))
        return TransactionSpec(tid, steps, label=label)

    return workload


class MixedWorkload:
    """Bernoulli mixture of a BAT workload and a short workload.

    ``bat_fraction`` of arrivals are BATs.  Class labels are forced onto
    the produced specs so per-class metrics work regardless of how the
    component workloads label things.
    """

    def __init__(self, bat_workload: WorkloadFn,
                 short_workload: WorkloadFn,
                 bat_fraction: float = 0.2) -> None:
        if not 0 <= bat_fraction <= 1:
            raise WorkloadError("bat_fraction must lie in [0, 1]")
        self.bat_workload = bat_workload
        self.short_workload = short_workload
        self.bat_fraction = bat_fraction

    def __call__(self, tid: int, streams: RandomStreams) -> TransactionSpec:
        draw = streams.uniform("mixed-class", 0.0, 1.0)
        if draw < self.bat_fraction:
            spec = self.bat_workload(tid, streams)
            label = BAT_LABEL
        else:
            spec = self.short_workload(tid, streams)
            label = SHORT_LABEL
        if spec.label != label:
            spec = TransactionSpec(spec.tid, spec.steps, label=label)
        return spec


def relabel(workload: WorkloadFn, label: str) -> WorkloadFn:
    """Wrap a workload so every produced spec carries ``label``."""

    def labelled(tid: int, streams: RandomStreams) -> TransactionSpec:
        spec = workload(tid, streams)
        return TransactionSpec(spec.tid, spec.steps, label=label)

    return labelled
