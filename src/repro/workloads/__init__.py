"""Workload generation: the paper's transaction patterns and arrival mix.

Each experiment defines a transaction *pattern* — a step template whose
partitions are drawn at random per arrival.  The factories here return
``WorkloadFn`` callables (``(tid, RandomStreams) -> TransactionSpec``)
plus matching catalogs, so an experiment is fully described by
``(pattern factory, catalog factory, parameters)``.
"""

from repro.workloads.patterns import (PatternWorkload, bulk_scan,
                                      bulk_scan_catalog, parse_pattern,
                                      pattern1, pattern1_catalog, pattern2,
                                      pattern2_catalog, pattern3,
                                      pattern3_catalog)
from repro.workloads.errors import declare_with_error
from repro.workloads.mixed import MixedWorkload, short_transactions
from repro.workloads.tracefile import (ReplayWorkload, load_trace,
                                       record_workload, save_trace)

__all__ = [
    "MixedWorkload",
    "PatternWorkload",
    "ReplayWorkload",
    "bulk_scan",
    "bulk_scan_catalog",
    "declare_with_error",
    "load_trace",
    "record_workload",
    "save_trace",
    "short_transactions",
    "parse_pattern",
    "pattern1",
    "pattern1_catalog",
    "pattern2",
    "pattern2_catalog",
    "pattern3",
    "pattern3_catalog",
]
