"""Trace-driven workloads: save, load and replay fixed transaction sets.

Production BAT traces are not publicly available (1990 banking batch
logs...), so the experiments use the paper's synthetic patterns — but a
real deployment would drive the scheduler from its own batch logs.  This
module provides the interchange format for that: a JSON-lines file, one
transaction per line::

    {"tid": 1, "steps": [{"op": "r", "partition": 3, "cost": 5.0},
                         {"op": "w", "partition": 7, "cost": 1.0,
                          "declared_cost": 1.5}]}

and a :class:`ReplayWorkload` that feeds a fixed list of specs to the
simulator (cycling or raising when exhausted).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Union)

from repro.core.transaction import LockMode, Step, TransactionSpec
from repro.engine.rng import RandomStreams
from repro.errors import WorkloadError

_OPS = {"r": LockMode.SHARED, "w": LockMode.EXCLUSIVE}
_OP_OF = {LockMode.SHARED: "r", LockMode.EXCLUSIVE: "w"}


def spec_to_dict(spec: TransactionSpec) -> Dict[str, Any]:
    """JSON-able representation of one transaction."""
    steps: List[Dict[str, Any]] = []
    for step in spec.steps:
        entry: Dict[str, Any] = {"op": _OP_OF[step.mode],
                                 "partition": step.partition,
                                 "cost": step.cost}
        if step.declared_cost != step.cost:
            entry["declared_cost"] = step.declared_cost
        steps.append(entry)
    return {"tid": spec.tid, "steps": steps}


def spec_from_dict(raw: Dict[str, Any]) -> TransactionSpec:
    """Parse one transaction from its dict form (validating everything)."""
    try:
        tid = int(raw["tid"])
        step_entries = raw["steps"]
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"malformed transaction record: {raw!r}") from exc
    steps: List[Step] = []
    for entry in step_entries:
        try:
            mode = _OPS[entry["op"]]
            partition = int(entry["partition"])
            cost = float(entry["cost"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"malformed step record: {entry!r}") from exc
        declared = entry.get("declared_cost")
        steps.append(Step(partition, mode, cost,
                          None if declared is None else float(declared)))
    return TransactionSpec(tid, steps)


def save_trace(path: Union[str, Path],
               specs: Iterable[TransactionSpec]) -> None:
    """Write transactions as JSON lines."""
    with open(path, "w") as handle:
        for spec in specs:
            handle.write(json.dumps(spec_to_dict(spec), sort_keys=True))
            handle.write("\n")


def load_trace(path: Union[str, Path]) -> List[TransactionSpec]:
    """Read a JSON-lines transaction trace."""
    specs: List[TransactionSpec] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(
                    f"{path}:{number}: invalid JSON") from exc
            specs.append(spec_from_dict(raw))
    return specs


class ReplayWorkload:
    """Feed a fixed list of transactions to the simulator in order.

    ``tid`` values are re-assigned from the simulator's arrival counter
    (the trace's own tids are kept as ``source_tid`` provenance only via
    ordering).  With ``cycle=True`` the list repeats forever; otherwise a
    :class:`WorkloadError` is raised when the trace runs dry — size your
    horizon accordingly.
    """

    def __init__(self, specs: Sequence[TransactionSpec],
                 cycle: bool = True) -> None:
        if not specs:
            raise WorkloadError("cannot replay an empty trace")
        self._specs = list(specs)
        self.cycle = cycle

    def __len__(self) -> int:
        return len(self._specs)

    def __call__(self, tid: int,
                 streams: Optional[RandomStreams] = None) -> TransactionSpec:
        index = tid - 1
        if index >= len(self._specs):
            if not self.cycle:
                raise WorkloadError(
                    f"trace exhausted after {len(self._specs)} transactions")
            index %= len(self._specs)
        template = self._specs[index]
        return TransactionSpec(tid, template.steps)


def record_workload(workload: Callable[[int, RandomStreams],
                                       TransactionSpec],
                    count: int, seed: int = 0,
                    ) -> List[TransactionSpec]:
    """Materialise ``count`` transactions from any workload function.

    Handy for turning a synthetic pattern into a fixed, shareable trace:
    ``save_trace(path, record_workload(pattern1(), 500))``.
    """
    streams = RandomStreams(seed)
    return [workload(tid, streams) for tid in range(1, count + 1)]
