"""Statistical helpers: batch means and confidence intervals.

The paper reports single long runs (2,000,000 clocks); for our own
quality control the experiment harness can additionally compute batch-
means confidence intervals over a run's response times, the standard
method for steady-state simulation output analysis.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ExperimentError


def batch_means(values: Sequence[float], num_batches: int = 10) -> List[float]:
    """Split ``values`` (in arrival order) into batch averages."""
    if num_batches < 1:
        raise ExperimentError("need at least one batch")
    n = len(values)
    if n < num_batches:
        raise ExperimentError(
            f"cannot form {num_batches} batches from {n} values")
    size = n // num_batches
    means: List[float] = []
    for b in range(num_batches):
        chunk = values[b * size:(b + 1) * size]
        means.append(sum(chunk) / len(chunk))
    return means


# Two-sided Student-t 97.5% quantiles for df = 1..30 (95% CI half-width).
_T_975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def _t_quantile(df: int) -> float:
    if df < 1:
        raise ExperimentError("degrees of freedom must be >= 1")
    if df <= len(_T_975):
        return _T_975[df - 1]
    return 1.96  # normal approximation for large df


def mean_confidence_interval(values: Sequence[float],
                             ) -> Tuple[float, float]:
    """(mean, 95% half-width) of ``values`` via the Student t."""
    n = len(values)
    if n < 2:
        raise ExperimentError("need at least two values for an interval")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = _t_quantile(n - 1) * math.sqrt(variance / n)
    return mean, half
