"""Curve interpolation for the paper's "throughput at RT = 70 s" metric.

Experiments 2 and 4 report, per scheduler, the throughput at the arrival
rate where the mean response time reaches 70 seconds.  Given a sweep of
(arrival rate -> mean RT) and (arrival rate -> TPS) samples, we find the
RT crossing by piecewise-linear interpolation (RT is monotone in load up
to noise) and read the TPS curve at the same arrival rate.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError


def interpolate_crossing(xs: Sequence[float], ys: Sequence[float],
                         target: float) -> Optional[float]:
    """The smallest x where the piecewise-linear y(x) crosses ``target``.

    Points are sorted by x first.  Infinite/NaN y values terminate the
    usable prefix (an overloaded run reports unbounded RT).  Returns None
    if the curve never reaches the target inside the sampled range.
    """
    if len(xs) != len(ys):
        raise ExperimentError("xs and ys must have equal length")
    points = sorted(zip(xs, ys))
    usable: List[Tuple[float, float]] = []
    for x, y in points:
        if math.isnan(y):
            continue
        usable.append((x, y))

    previous: Optional[Tuple[float, float]] = None
    for x, y in usable:
        if y >= target:
            if previous is None:
                return x  # already above target at the first sample
            x0, y0 = previous
            if math.isinf(y):
                return x0  # crossing happens somewhere in (x0, x]; be
                # conservative and report the last finite point
            if y == y0:
                return x
            return x0 + (target - y0) * (x - x0) / (y - y0)
        previous = (x, y)
    return None


def value_at(xs: Sequence[float], ys: Sequence[float], x: float) -> float:
    """Piecewise-linear evaluation of y(x), clamped to the sampled range."""
    if len(xs) != len(ys) or not xs:
        raise ExperimentError("need equally sized, non-empty samples")
    points = sorted(zip(xs, ys))
    if x <= points[0][0]:
        return points[0][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= x <= x1:
            if x1 == x0:
                return y1
            return y0 + (x - x0) * (y1 - y0) / (x1 - x0)
    return points[-1][1]


def throughput_at_response_time(arrival_rates: Sequence[float],
                                response_times: Sequence[float],
                                throughputs: Sequence[float],
                                rt_target: float) -> Optional[float]:
    """TPS at the arrival rate where mean RT reaches ``rt_target``.

    Returns the final sampled throughput if RT never reaches the target
    (the scheduler is better than the measurement range), None only when
    nothing at all was sampled.
    """
    if not arrival_rates:
        return None
    crossing = interpolate_crossing(arrival_rates, response_times, rt_target)
    if crossing is None:
        # RT stayed under target everywhere: report the largest sampled
        # throughput (a lower bound on the true value).
        finite = [tps for tps in throughputs if not math.isnan(tps)]
        return max(finite) if finite else None
    return value_at(arrival_rates, throughputs, crossing)
