"""Seed replication: mean ± confidence interval over independent runs.

The paper reports single 2,000,000-clock runs; for our own quality
control (and for anyone extending the study) this module runs the same
point under several seeds and reports the mean with a 95 % Student-t
interval per metric — the standard independent-replications method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimulationParameters
from repro.errors import ExperimentError
from repro.metrics.collector import RunMetrics
from repro.metrics.stats import mean_confidence_interval


@dataclass(frozen=True)
class ReplicatedMetric:
    """A metric's replication summary."""

    mean: float
    half_width: float       # 95 % CI half-width
    values: Tuple[float, ...]

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


@dataclass
class ReplicationResult:
    """All runs plus per-metric summaries."""

    runs: List[RunMetrics]

    def metric(self, name: str) -> ReplicatedMetric:
        values = tuple(float(getattr(run, name)) for run in self.runs)
        mean, half = mean_confidence_interval(values)
        return ReplicatedMetric(mean, half, values)

    @property
    def throughput(self) -> ReplicatedMetric:
        return self.metric("throughput_tps")

    @property
    def response_time(self) -> ReplicatedMetric:
        return self.metric("mean_response_time")

    def summary(self) -> Dict[str, str]:
        return {name: str(self.metric(name))
                for name in ("throughput_tps", "mean_response_time",
                             "dn_utilization", "cn_utilization")}


def _replication_worker(job: Tuple[SimulationParameters,
                                   Callable[[], object],
                                   Callable[[], object], int]) -> RunMetrics:
    """One seeded run (top-level so it pickles for pool workers)."""
    # Imported here to keep repro.metrics import-independent of the
    # machine layer (which itself imports repro.metrics.collector).
    from repro.machine.cluster import run_simulation

    params, workload_factory, catalog_factory, seed = job
    result = run_simulation(params.with_overrides(seed=seed),
                            workload_factory(),
                            catalog=catalog_factory())
    return result.metrics


def _replicate_parallel(jobs: List[Tuple[SimulationParameters,
                                         Callable[[], object],
                                         Callable[[], object], int]],
                        max_workers: int) -> Optional[List[RunMetrics]]:
    """Fan seeded runs over a process pool; None = use the serial path.

    Factories must pickle for the pool (module-level callables such as
    ``pattern1`` do; ad-hoc lambdas don't) — probed up front so the
    caller can degrade to in-process execution, which produces identical
    results: each run is an isolated simulation keyed by its seed.
    """
    import pickle

    try:
        pickle.dumps(jobs[0])
    except Exception:
        return None
    try:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(_replication_worker, jobs))
    except (OSError, ValueError, ImportError):
        return None


def replicate(params: SimulationParameters,
              workload_factory: Callable[[], object],
              catalog_factory: Callable[[], object],
              seeds: Sequence[int] = (1, 2, 3, 4, 5),
              max_workers: int = 1,
              ) -> ReplicationResult:
    """Run the same point under each seed.

    Factories (not instances) are taken so every replication gets fresh
    workload/catalog state; the seed is the only thing that varies.
    ``max_workers > 1`` fans the seeds over a process pool — results are
    bit-identical to the serial path (runs are independent and keyed by
    seed alone) and come back in seed order.  Unpicklable factories or a
    restricted platform silently fall back to in-process execution.
    """
    if len(seeds) < 2:
        raise ExperimentError("replication needs at least two seeds")
    if len(set(seeds)) != len(seeds):
        raise ExperimentError("seeds must be distinct")
    jobs = [(params, workload_factory, catalog_factory, seed)
            for seed in seeds]
    if max_workers > 1:
        runs = _replicate_parallel(jobs, max_workers)
        if runs is not None:
            return ReplicationResult(runs)
    return ReplicationResult([_replication_worker(job) for job in jobs])
