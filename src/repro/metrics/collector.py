"""Per-run metric collection and the summary it produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.transaction import TransactionRuntime
from repro.errors import ExperimentError


@dataclass
class RunMetrics:
    """Summary of one simulation run (after warmup filtering)."""

    scheduler: str
    arrival_rate_tps: float
    sim_clocks: float
    arrivals: int
    commits: int
    mean_response_time: float      # clocks
    max_response_time: float       # clocks
    throughput_tps: float
    mean_attempts: float           # admission attempts per committed txn
    dn_utilization: float          # mean over data nodes
    cn_utilization: float
    weight_messages: int
    lock_retries: int              # blocked/delayed request re-submissions
    aborts: int = 0                # all mid-flight aborts (any cause)
    wasted_objects: float = 0.0    # bulk work discarded by those aborts
    fault_aborts: int = 0          # injected assassinations (repro.faults)
    crash_aborts: int = 0          # victims of data-node crashes
    cascade_aborts: int = 0        # precedence-successor cascade victims
    restarts: int = 0              # aborted transactions re-admitted
    node_crashes: int = 0          # injected node crash events
    void_cascades: int = 0         # cascade dooms that found no victim
    cn_crashes: int = 0            # injected control-node crash events
    cn_recoveries: int = 0         # control-node log replays completed
    twopc_rounds: int = 0          # cross-shard prepare/commit rounds
    recovery_records: int = 0      # dependency-log records replayed
    recovery_clocks: float = 0.0   # total simulated CN downtime
    fault_timeline: List[Dict[str, object]] = field(default_factory=list)
    scheduler_stats: Dict[str, float] = field(default_factory=dict)
    response_time_by_label: Dict[str, float] = field(default_factory=dict)
    cn_utilizations: List[float] = field(default_factory=list)

    @property
    def mean_response_time_seconds(self) -> float:
        return self.mean_response_time / 1000.0

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


class MetricsCollector:
    """Accumulates events during a run; produces a :class:`RunMetrics`."""

    def __init__(self, warmup_clocks: float = 0.0) -> None:
        self.warmup_clocks = warmup_clocks
        self.arrivals = 0
        self.lock_retries = 0
        self.aborts = 0
        self.wasted_objects = 0.0
        self.fault_aborts = 0
        self.crash_aborts = 0
        self.cascade_aborts = 0
        self.restarts = 0
        self.node_crashes = 0
        self.void_cascades = 0
        self.cn_crashes = 0
        self.cn_recoveries = 0
        self.twopc_rounds = 0
        self.recovery_records = 0
        self.recovery_clocks = 0.0
        self.fault_timeline: List[Dict[str, object]] = []
        self._response_times: List[float] = []
        self._attempts: List[int] = []
        self._commits = 0
        self._by_label: Dict[str, List[float]] = {}

    def record_arrival(self, now: float) -> None:
        if now >= self.warmup_clocks:
            self.arrivals += 1

    def record_lock_retry(self) -> None:
        self.lock_retries += 1

    def record_abort(self, txn: TransactionRuntime,
                     cause: str = "deadlock", now: float = 0.0) -> None:
        """A mid-flight abort: its work so far is wasted.

        ``cause`` is ``"deadlock"`` (the legacy 2PL/WAIT-DIE restart),
        ``"injected"``, ``"crash"``, ``"cn_crash"`` or ``"cascade"``;
        fault-induced causes additionally land on the fault timeline.
        """
        self.aborts += 1
        self.wasted_objects += txn.objects_done
        if cause == "deadlock":
            return
        if cause == "injected":
            self.fault_aborts += 1
        elif cause in ("crash", "cn_crash"):
            self.crash_aborts += 1
        elif cause == "cascade":
            self.cascade_aborts += 1
        self.fault_timeline.append({
            "time": now, "kind": "abort", "tid": txn.tid, "cause": cause,
            "step": txn.current_step,
            "wasted_objects": txn.objects_done})

    def record_restart(self) -> None:
        """An aborted transaction made it back through admission."""
        self.restarts += 1

    def record_void_cascade(self) -> None:
        """A cascade doom that found its victim not running (void)."""
        self.void_cascades += 1

    def record_2pc_round(self, rounds: int = 1) -> None:
        """``rounds`` cross-shard prepare/commit message rounds ran."""
        self.twopc_rounds += rounds

    def record_recovery(self, records: int, downtime: float) -> None:
        """A crashed control node finished replaying its dependency log."""
        self.cn_recoveries += 1
        self.recovery_records += records
        self.recovery_clocks += downtime

    def record_fault(self, kind: str, now: float, **detail: object) -> None:
        """A machine-level fault event (crash/recovery/slowdown window)."""
        if kind == "node_crash":
            self.node_crashes += 1
        elif kind == "cn_crash":
            self.cn_crashes += 1
        entry: Dict[str, object] = {"time": now, "kind": kind}
        entry.update(detail)
        self.fault_timeline.append(entry)

    def record_commit(self, txn: TransactionRuntime, now: float) -> None:
        if txn.arrival_time < self.warmup_clocks:
            return  # transaction straddles the warmup boundary: discard
        self._commits += 1
        self._response_times.append(now - txn.arrival_time)
        self._attempts.append(txn.attempts + 1)
        label = getattr(txn.spec, "label", "")
        if label:
            self._by_label.setdefault(label, []).append(
                now - txn.arrival_time)

    @property
    def commits(self) -> int:
        return self._commits

    @property
    def response_times(self) -> List[float]:
        return list(self._response_times)

    def response_times_by_label(self) -> Dict[str, List[float]]:
        """Response times grouped by the transactions' class labels."""
        return {label: list(values)
                for label, values in self._by_label.items()}

    def mean_response_time_by_label(self) -> Dict[str, float]:
        """Per-class mean RT (only classes with at least one commit)."""
        return {label: sum(values) / len(values)
                for label, values in self._by_label.items() if values}

    def summarise(self, scheduler: str, arrival_rate_tps: float,
                  sim_clocks: float, dn_utilization: float,
                  cn_utilization: float, weight_messages: int,
                  scheduler_stats: Optional[Dict[str, float]] = None,
                  cn_utilizations: Optional[List[float]] = None,
                  ) -> RunMetrics:
        if sim_clocks <= self.warmup_clocks:
            raise ExperimentError("run shorter than its warmup")
        measured = sim_clocks - self.warmup_clocks
        mean_rt = (sum(self._response_times) / len(self._response_times)
                   if self._response_times else float("inf"))
        max_rt = max(self._response_times, default=float("inf"))
        mean_attempts = (sum(self._attempts) / len(self._attempts)
                         if self._attempts else 0.0)
        return RunMetrics(
            scheduler=scheduler,
            arrival_rate_tps=arrival_rate_tps,
            sim_clocks=sim_clocks,
            arrivals=self.arrivals,
            commits=self._commits,
            mean_response_time=mean_rt,
            max_response_time=max_rt,
            throughput_tps=self._commits / (measured / 1000.0),
            mean_attempts=mean_attempts,
            dn_utilization=dn_utilization,
            cn_utilization=cn_utilization,
            weight_messages=weight_messages,
            lock_retries=self.lock_retries,
            aborts=self.aborts,
            wasted_objects=self.wasted_objects,
            fault_aborts=self.fault_aborts,
            crash_aborts=self.crash_aborts,
            cascade_aborts=self.cascade_aborts,
            restarts=self.restarts,
            node_crashes=self.node_crashes,
            void_cascades=self.void_cascades,
            cn_crashes=self.cn_crashes,
            cn_recoveries=self.cn_recoveries,
            twopc_rounds=self.twopc_rounds,
            recovery_records=self.recovery_records,
            recovery_clocks=self.recovery_clocks,
            fault_timeline=list(self.fault_timeline),
            scheduler_stats=dict(scheduler_stats or {}),
            response_time_by_label=self.mean_response_time_by_label(),
            cn_utilizations=(list(cn_utilizations)
                             if cn_utilizations is not None
                             else [cn_utilization]),
        )
