"""Performance metrics: collection, summary statistics, curve utilities.

The paper's two metrics are mean response time RT (creation to completion)
and throughput TPS (committed transactions per second); Experiments 2 and
4 additionally report *throughput at RT = 70 s*, obtained here by sweeping
the arrival rate and interpolating both curves at the RT crossing (see
:mod:`repro.metrics.interpolate`).
"""

from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.interpolate import (interpolate_crossing,
                                       throughput_at_response_time)
from repro.metrics.replication import (ReplicatedMetric, ReplicationResult,
                                       replicate)
from repro.metrics.stats import batch_means, mean_confidence_interval

__all__ = [
    "MetricsCollector",
    "ReplicatedMetric",
    "ReplicationResult",
    "RunMetrics",
    "batch_means",
    "interpolate_crossing",
    "mean_confidence_interval",
    "replicate",
    "throughput_at_response_time",
]
