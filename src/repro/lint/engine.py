"""File collection, rule dispatch and reporting for repro-lint.

Since the whole-program rules arrived (the interprocedural layer
RL009–RL012, then the typestate layer RL013–RL016), a lint run has
two phases: every file of the invocation is parsed first and assembled
into one :class:`repro.lint.project.Project` (call graph + function
summaries + the per-run analysis cache the typestate transition
relations memoise into), then the rules run file by file — plain
:class:`Rule` subclasses see only their :class:`FileContext`, while
:class:`ProjectRule` subclasses also receive the project.  Single-file
entry points (``check_source``) build a one-file project, so fixture
tests exercise the whole-program rules without touching disk.

``--jobs N`` parallelism lives here too: each worker process parses the
full entry set once (the project must be whole-program in every
worker), then lints only the files assigned to it; results are stitched
back together in entry order so output is deterministic regardless of
scheduling.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import repro.lint.flow_rules  # noqa: F401  (imported for rule registration)
import repro.lint.rules  # noqa: F401  (imported for rule registration)
import repro.lint.typestate  # noqa: F401  (imported for rule registration)
from repro.lint.model import (FileContext, ProjectRule, Rule, Violation,
                              all_rules)
from repro.lint.project import Project
from repro.lint.suppressions import apply_suppressions, parse_suppressions

#: Rule id used for meta problems: unparseable files and malformed or
#: unjustified suppression directives.
META_RULE = "RL000"

#: Directories never linted even when nested under a requested path.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})

#: One file handed to the engine: ``(display path, logical path, source)``.
SourceEntry = Tuple[str, str, str]


def logical_path_of(path: Path) -> str:
    """The package-relative posix path (``repro/core/wtpg.py``) of a file.

    Falls back to the file's own posix path when it does not live inside
    a ``repro`` package directory (fixtures pass an explicit override
    instead of relying on this).
    """
    parts = path.resolve().parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.as_posix()


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            seen.setdefault(path, None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen.setdefault(candidate, None)
    return list(seen)


def read_entries(paths: Sequence[Path]) -> List[SourceEntry]:
    """Collect ``(display, logical, source)`` entries for a path set."""
    return [(str(path), logical_path_of(path),
             path.read_text(encoding="utf-8"))
            for path in iter_python_files(paths)]


def _parse_entry(
        entry: SourceEntry) -> Tuple[Optional[FileContext], List[Violation]]:
    display, logical, source = entry
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return None, [Violation(META_RULE, display, exc.lineno or 1,
                                (exc.offset or 1) - 1,
                                f"file does not parse: {exc.msg}")]
    return FileContext(display=display, logical=logical, source=source,
                       tree=tree), []


class LintRunner:
    """Run a set of rules over files, honouring suppression directives."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self.files_checked = 0

    def check_source(self, source: str, display: str,
                     logical: str) -> List[Violation]:
        """Lint one in-memory source blob (the unit tests' entry point)."""
        return self.check_sources([(display, logical, source)])

    def check_sources(self, entries: Sequence[SourceEntry]) -> List[Violation]:
        """Lint a batch of in-memory sources as one project.

        Multi-entry calls are how the interprocedural fixtures model
        cross-module facts: every parseable entry lands in the same
        call graph, so a fixture impersonating ``repro/machine/x.py``
        can call into one impersonating ``repro/core/y.py``.
        """
        contexts: List[Optional[FileContext]] = []
        parse_failures: List[List[Violation]] = []
        for entry in entries:
            ctx, errors = _parse_entry(entry)
            contexts.append(ctx)
            parse_failures.append(errors)
        project = Project([ctx for ctx in contexts if ctx is not None])
        self.files_checked += len(entries)
        violations: List[Violation] = []
        for ctx, errors in zip(contexts, parse_failures):
            if ctx is None:
                violations.extend(errors)
            else:
                violations.extend(self.check_context(ctx, project))
        return violations

    def check_context(self, ctx: FileContext,
                      project: Project) -> List[Violation]:
        """Rules + suppressions for one already-parsed file."""
        violations: List[Violation] = []
        for rule in self.rules:
            if not rule.applies_to(ctx):
                continue
            if isinstance(rule, ProjectRule):
                violations.extend(rule.check_project(ctx, project))
            else:
                violations.extend(rule.check(ctx))
        table = parse_suppressions(ctx.source)
        violations, _used = apply_suppressions(violations, table)
        for directive in table.values():
            if not directive.justified:
                violations.append(Violation(
                    META_RULE, ctx.display, directive.line, 0,
                    "suppression without a justification: write "
                    "'# repro-lint: disable=RLxxx -- <why the contract "
                    "does not apply here>'"))
        violations.sort(key=lambda v: (v.file, v.line, v.col, v.rule_id))
        return violations

    def check_file(self, path: Path,
                   logical: Optional[str] = None) -> List[Violation]:
        source = path.read_text(encoding="utf-8")
        return self.check_sources([
            (str(path), logical or logical_path_of(path), source)])

    def check_paths(self, paths: Sequence[Path]) -> List[Violation]:
        return self.check_sources(read_entries(paths))


# ---------------------------------------------------------------------------
# Parallel mode
# ---------------------------------------------------------------------------
#
# Workers are handed the full entry list once (at pool start) and build
# their own project from it — the call graph is whole-program, so there
# is no per-file shortcut.  Tasks are entry *indices*; ``Pool.map``
# returns chunks in index order, which makes the concatenated output
# identical to the serial run.

_WORKER: Optional[Tuple[LintRunner, List[Optional[FileContext]],
                        List[List[Violation]], Project]] = None


def _worker_init(entries: Sequence[SourceEntry],
                 rule_ids: Optional[Sequence[str]]) -> None:
    global _WORKER
    rules = [rule for rule in all_rules()
             if rule_ids is None or rule.rule_id in rule_ids]
    runner = LintRunner(rules)
    contexts: List[Optional[FileContext]] = []
    parse_failures: List[List[Violation]] = []
    for entry in entries:
        ctx, errors = _parse_entry(entry)
        contexts.append(ctx)
        parse_failures.append(errors)
    project = Project([ctx for ctx in contexts if ctx is not None])
    _WORKER = (runner, contexts, parse_failures, project)


def _worker_check(index: int) -> List[Violation]:
    assert _WORKER is not None, "worker used before initialisation"
    runner, contexts, parse_failures, project = _WORKER
    ctx = contexts[index]
    if ctx is None:
        return parse_failures[index]
    return runner.check_context(ctx, project)


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence[Rule]] = None,
               jobs: int = 1,
               ) -> Tuple[List[Violation], LintRunner]:
    """Convenience wrapper: lint paths, return (violations, runner)."""
    runner = LintRunner(rules)
    entries = read_entries(paths)
    if jobs <= 1 or len(entries) < 2:
        return runner.check_sources(entries), runner
    import multiprocessing

    rule_ids = [rule.rule_id for rule in runner.rules]
    with multiprocessing.Pool(
            processes=min(jobs, len(entries)),
            initializer=_worker_init,
            initargs=(entries, rule_ids)) as pool:
        chunks = pool.map(_worker_check, range(len(entries)))
    runner.files_checked += len(entries)
    return [violation for chunk in chunks for violation in chunk], runner


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    lines = [violation.render() for violation in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        count = len(violations)
        lines.append(f"repro-lint: {count} violation"
                     f"{'s' if count != 1 else ''} "
                     f"in {files_checked} {noun}")
    else:
        lines.append(f"repro-lint: clean ({files_checked} {noun})")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int,
                rules: Sequence[Rule]) -> str:
    payload = {
        "tool": "repro-lint",
        "version": 1,
        "files_checked": files_checked,
        "rules": [rule.rule_id for rule in rules],
        "violations": [violation.as_dict() for violation in violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
