"""File collection, rule dispatch and reporting for repro-lint."""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import repro.lint.flow_rules  # noqa: F401  (imported for rule registration)
import repro.lint.rules  # noqa: F401  (imported for rule registration)
from repro.lint.model import FileContext, Rule, Violation, all_rules
from repro.lint.suppressions import apply_suppressions, parse_suppressions

#: Rule id used for meta problems: unparseable files and malformed or
#: unjustified suppression directives.
META_RULE = "RL000"

#: Directories never linted even when nested under a requested path.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


def logical_path_of(path: Path) -> str:
    """The package-relative posix path (``repro/core/wtpg.py``) of a file.

    Falls back to the file's own posix path when it does not live inside
    a ``repro`` package directory (fixtures pass an explicit override
    instead of relying on this).
    """
    parts = path.resolve().parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.as_posix()


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            seen.setdefault(path, None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen.setdefault(candidate, None)
    return list(seen)


class LintRunner:
    """Run a set of rules over files, honouring suppression directives."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self.files_checked = 0

    def check_source(self, source: str, display: str,
                     logical: str) -> List[Violation]:
        """Lint one in-memory source blob (the unit tests' entry point)."""
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            return [Violation(META_RULE, display, exc.lineno or 1,
                              (exc.offset or 1) - 1,
                              f"file does not parse: {exc.msg}")]
        ctx = FileContext(display=display, logical=logical, source=source,
                          tree=tree)
        violations: List[Violation] = []
        for rule in self.rules:
            if rule.applies_to(ctx):
                violations.extend(rule.check(ctx))
        table = parse_suppressions(source)
        violations, _used = apply_suppressions(violations, table)
        for directive in table.values():
            if not directive.justified:
                violations.append(Violation(
                    META_RULE, display, directive.line, 0,
                    "suppression without a justification: write "
                    "'# repro-lint: disable=RLxxx -- <why the contract "
                    "does not apply here>'"))
        violations.sort(key=lambda v: (v.file, v.line, v.col, v.rule_id))
        return violations

    def check_file(self, path: Path,
                   logical: Optional[str] = None) -> List[Violation]:
        source = path.read_text(encoding="utf-8")
        self.files_checked += 1
        return self.check_source(source, display=str(path),
                                 logical=logical or logical_path_of(path))

    def check_paths(self, paths: Sequence[Path]) -> List[Violation]:
        violations: List[Violation] = []
        for path in iter_python_files(paths):
            violations.extend(self.check_file(path))
        return violations


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence[Rule]] = None,
               ) -> Tuple[List[Violation], LintRunner]:
    """Convenience wrapper: lint paths, return (violations, runner)."""
    runner = LintRunner(rules)
    return runner.check_paths(paths), runner


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    lines = [violation.render() for violation in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        count = len(violations)
        lines.append(f"repro-lint: {count} violation"
                     f"{'s' if count != 1 else ''} "
                     f"in {files_checked} {noun}")
    else:
        lines.append(f"repro-lint: clean ({files_checked} {noun})")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int,
                rules: Sequence[Rule]) -> str:
    payload = {
        "tool": "repro-lint",
        "version": 1,
        "files_checked": files_checked,
        "rules": [rule.rule_id for rule in rules],
        "violations": [violation.as_dict() for violation in violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
