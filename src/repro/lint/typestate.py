"""Declarative typestate verification: protocols as data (RL013–RL016).

The fourth analysis layer.  The first three answer progressively wider
questions — syntactic shape (RL001–RL005), intraprocedural order
(RL006–RL008), interprocedural reachability (RL009–RL012) — but none of
them states the thing the paper's correctness argument is actually made
of: *object lifecycles*.  A BAT is admitted, started, granted locks,
committed or aborted, and restarted only from aborted; an engine event
is triggered exactly once; a WTPG node must not receive edge operations
or estimator reads after it was excised; a checkpoint's results may be
merged into a sweep only once, and only after fingerprint validation.

Here a protocol is a committed :class:`ProtocolSpec` value — states,
operation→transition rules, an error state, creators, and escape
semantics — and one generic evaluator interprets any spec over the
existing machinery:

* **object discovery** — a local name becomes *tracked* when it is a
  parameter annotated with one of the spec's ``tracked_types``, when it
  is bound from one of the spec's ``creators`` (including a named index
  of a tuple-unpacked result), when it appears at the tracked position
  of an *introducing* operation, or when it is aliased from an already
  tracked name.  All tracked names of a function are seeded at function
  entry: annotated parameters and introduced names start in *every*
  non-error state (nothing is known about the caller), creator-bound
  names are narrowed at their binding site.  Seeding everything at
  entry keeps the transfer function monotone — tracking never begins
  mid-flight, so the fixpoint cannot oscillate.

* **operations** — three syntactic kinds, matched the same
  receiver-blind way as RL006's :class:`~repro.lint.dataflow.ResourceSpec`
  (the call graph cannot resolve ``self.scheduler.admit``; a method
  *name* in this codebase is unambiguous within a spec's scope):

  - ``call``: ``obj.<name>(...)`` on a tracked plain-name receiver;
  - ``arg``: a tracked name passed at a fixed positional index of a
    call whose bare/attribute name matches (``admit(txn, now)`` and
    ``self.scheduler.admit(txn, now)`` both match ``admit`` @ 0);
  - ``write``: ``obj.<attr> = ...`` on a tracked plain-name receiver.

  An operation maps each legal source state to a *set* of successor
  states (admission may reject: ``pending -> {pending, active}``).  An
  operation with **no** legal sources is *forbidden* — flagged from any
  non-error state.

* **evaluation** — facts are ``(name, state)`` pairs in a
  :class:`~repro.lint.dataflow.UnionLattice` solved forward over the
  PR 4 CFG.  At an operation, states outside the legal sources flow to
  the spec's error state; once in the error state an object is silent
  (one finding per broken object, not a cascade).

* **reporting policy (must-violation)** — a site is flagged only when
  *no* reachable non-error state permits the operation.  The union
  lattice carries may-information, so "illegal on some path" would
  flag every operation downstream of a nondeterministic outcome (the
  admit example above).  The cost, documented in docs/lint.md: an
  operation illegal on one arm of a join but legal on the other is
  not reported.

* **interprocedural lift** — when a tracked name is passed to a call
  the PR 6 call graph resolves and no syntactic operation matched, the
  callee contributes its *transition relation* for that parameter: the
  map ``in-state -> possible out-states`` obtained by running the same
  transfer over the callee's CFG once per starting state (resolved
  callees of the callee recurse, cut at cycles with the identity
  relation).  Relations are memoised in ``Project.analysis_cache``.
  A call whose relation maps every reachable state to the error state
  alone is itself a must-violation at the call site.

* **escape semantics** — a tracked name handed to an unmatched,
  unresolvable call (or used as the receiver of an unknown method)
  either keeps its states (``on_escape="ignore"``: the protocol's
  operations are the only state-changing surface, the default for the
  shipped specs) or resets to all states (``on_escape="reset"``: the
  conservative choice when unknown code may advance the object).

The four shipped rules and their scopes:

* **RL013** — BAT lifecycle (``core/schedulers/``,
  ``machine/control_node.py``, ``faults/``): no commit after a doom or
  abort, no double abort, no lock grant to a transaction that is not
  admitted-and-waiting, restart only from aborted.
* **RL014** — engine Event/Condition lifecycle (``engine/``): an event
  triggers at most once and only through ``succeed()``/``fail()``
  (direct ``_value`` writes bypass the ``EngineStateError`` guard),
  only a triggered (failed) event is defused, only a scheduled
  (pending) event is unscheduled.
* **RL015** — WTPG node lifecycle (``core/wtpg.py``,
  ``core/builder.py``): no edge operations or estimator reads against
  an excised node.  The *excise implies generation bump* half of the
  contract is deliberately not restated here: ``remove_transaction``
  mutates watched containers, so RL002/RL010 already enforce the bump;
  RL015 adds only the node-order half.
* **RL016** — checkpoint/sweep-task lifecycle
  (``experiments/parallel.py``): a loaded checkpoint's results are
  merged once, and only after ``_validate_checkpoint`` accepted the
  fingerprint.

Like every prior layer, the rules ran against the real modules before
landing: each finding was fixed or justified-and-suppressed inline, and
the teeth tests in ``tests/lint/test_typestate.py`` strip those
suppressions (or re-seed the historical bug) to prove the rules still
fire on production code shapes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.lint.callgraph import CallSite, FunctionDecl, FunctionId
from repro.lint.cfg import CFG, CFGNode
from repro.lint.dataflow import UnionLattice, calls_of, solve_forward
from repro.lint.model import (FileContext, ProjectRule, Violation,
                              register_rule)
from repro.lint.project import Project
from repro.lint.summaries import bind_args

_LATTICE = UnionLattice()

#: Operation kinds (see module docstring).
CALL = "call"
ARG = "arg"
WRITE = "write"

#: A dataflow fact: ``(tracked local name, protocol state)``.
Fact = Tuple[str, str]
#: One reported problem before the owning rule stamps its id on it.
Finding = Tuple[int, int, str]


@dataclass(frozen=True)
class Operation:
    """One protocol operation and its transition rules.

    ``transitions`` maps each legal source state to the set of states
    the object may be in afterwards.  An empty mapping makes the
    operation *forbidden*: no state permits it.  ``introduces`` marks
    operations whose tracked operand starts tracking (at all states)
    even without an annotation or creator — the only way to track
    plain-``int`` handles like WTPG transaction ids.
    """

    kind: str                 # CALL, ARG or WRITE
    name: str                 # method/function name, or attribute for WRITE
    transitions: Mapping[str, FrozenSet[str]]
    arg_index: int = 0        # ARG only: position of the tracked operand
    introduces: bool = False
    description: str = ""     # appended to findings and --explain rows

    def sources(self) -> FrozenSet[str]:
        return frozenset(self.transitions)

    def describe(self) -> str:
        if self.kind == WRITE:
            return f"write to .{self.name}"
        if self.kind == ARG:
            return f"{self.name}(...) [operand {self.arg_index}]"
        return f".{self.name}()"


@dataclass(frozen=True)
class Creator:
    """A callable whose result (or one tuple element of it) is a fresh
    protocol object in a known state."""

    name: str                       # bare or attribute callable name
    state: str
    result_index: Optional[int] = None  # None: whole result; int: elts[i]


@dataclass(frozen=True)
class ProtocolSpec:
    """One complete protocol: the data a typestate rule is driven by."""

    name: str
    states: Tuple[str, ...]         # non-error states, display order
    error_state: str
    creators: Tuple[Creator, ...]
    operations: Tuple[Operation, ...]
    tracked_types: FrozenSet[str] = frozenset()
    on_escape: str = "ignore"       # or "reset"
    description: str = ""

    def all_states(self) -> FrozenSet[str]:
        return frozenset(self.states)


# ---------------------------------------------------------------------------
# Spec-shaped helpers
# ---------------------------------------------------------------------------

def _called_name(call: ast.Call) -> str:
    """``name`` for ``name(...)`` or ``<expr>.name(...)``, else ""."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Every plain name in an annotation, unwrapping string annotations.

    ``Optional[Event]`` yields ``{Optional, Event}`` — matching any of
    the spec's tracked types is enough.
    """
    if node is None:
        return set()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return set()
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _all_args(fn: ast.AST) -> List[ast.arg]:
    args = getattr(fn, "args", None)
    if args is None:
        return []
    return (list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs))


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body, nested function/lambda bodies excluded."""
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Per-function evaluation
# ---------------------------------------------------------------------------

class _FunctionAnalysis:
    """Evaluate one spec over one function's CFG."""

    def __init__(self, spec: ProtocolSpec, project: Project,
                 fid: FunctionId) -> None:
        self.spec = spec
        self.project = project
        self.fid = fid
        decl = project.declaration(fid)
        cfg = project.summaries.cfg(fid)
        assert decl is not None and cfg is not None
        self.decl: FunctionDecl = decl
        self.cfg: CFG = cfg
        self.all_states = spec.all_states()
        self.error = spec.error_state
        self.call_ops: Dict[str, Operation] = {
            op.name: op for op in spec.operations if op.kind == CALL}
        self.arg_ops: Dict[str, List[Operation]] = {}
        for op in spec.operations:
            if op.kind == ARG:
                self.arg_ops.setdefault(op.name, []).append(op)
        self.write_ops: Dict[str, Operation] = {
            op.name: op for op in spec.operations if op.kind == WRITE}
        self.creators: Dict[str, Creator] = {
            c.name: c for c in spec.creators}
        self.sites: Dict[int, CallSite] = {
            id(site.call): site
            for site in project.callgraph.call_sites(fid)}
        self.relevant = self._relevant_names()

    # -- tracked-name discovery (see module docstring) ---------------------

    def _relevant_names(self) -> FrozenSet[str]:
        names: Set[str] = set()
        for arg in _all_args(self.decl.node):
            if self.spec.tracked_types & _annotation_names(arg.annotation):
                names.add(arg.arg)
        alias_edges: List[Tuple[str, str]] = []
        for node in _own_nodes(self.decl.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                creator = self._creator_of(value)
                for target in targets:
                    if isinstance(target, ast.Name):
                        if creator is not None and creator.result_index is None:
                            names.add(target.id)
                        elif isinstance(value, ast.Name):
                            alias_edges.append((target.id, value.id))
                    elif isinstance(target, ast.Tuple) and creator is not None:
                        index = creator.result_index
                        if (index is not None and index < len(target.elts)
                                and isinstance(target.elts[index], ast.Name)):
                            names.add(target.elts[index].id)  # type: ignore[union-attr]
            elif isinstance(node, ast.Call):
                op = self.call_ops.get(_called_name(node))
                if (op is not None and op.introduces
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)):
                    names.add(node.func.value.id)
                for arg_op in self.arg_ops.get(_called_name(node), []):
                    if (arg_op.introduces
                            and arg_op.arg_index < len(node.args)
                            and isinstance(node.args[arg_op.arg_index],
                                           ast.Name)):
                        names.add(node.args[arg_op.arg_index].id)  # type: ignore[attr-defined]
        changed = True
        while changed:
            changed = False
            for target, source in alias_edges:
                if source in names and target not in names:
                    names.add(target)
                    changed = True
        return frozenset(names)

    def _creator_of(self, value: Optional[ast.AST]) -> Optional[Creator]:
        if isinstance(value, ast.Call):
            return self.creators.get(_called_name(value))
        return None

    # -- fact plumbing -----------------------------------------------------

    @staticmethod
    def _states(facts: FrozenSet[object], name: str) -> FrozenSet[str]:
        return frozenset(fact[1] for fact in facts
                         if isinstance(fact, tuple) and fact[0] == name)

    @staticmethod
    def _set(facts: FrozenSet[object], name: str,
             states: FrozenSet[str]) -> FrozenSet[object]:
        kept = frozenset(fact for fact in facts
                         if not (isinstance(fact, tuple)
                                 and fact[0] == name))
        return kept | frozenset((name, state) for state in states)

    def entry_facts(self) -> FrozenSet[object]:
        return frozenset((name, state) for name in self.relevant
                         for state in self.all_states)

    # -- the transfer ------------------------------------------------------

    def run(self) -> List[Finding]:
        """Solve, then replay each node's entering facts with reporting."""
        def transfer(node: CFGNode,
                     value: FrozenSet[object]) -> FrozenSet[object]:
            if node.stmt is None:
                return value
            return self._apply(node.stmt, value, None)

        result = solve_forward(self.cfg, _LATTICE, transfer,
                               self.entry_facts())
        findings: List[Finding] = []
        seen: Set[Finding] = set()

        def report(node: ast.AST, message: str) -> None:
            finding = (getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)
            if finding not in seen:
                seen.add(finding)
                findings.append(finding)

        for node in self.cfg.nodes:
            if node.stmt is None:
                continue
            self._apply(node.stmt, result.entering(node), report)
        findings.sort()
        return findings

    def _apply(self, stmt: ast.AST, facts: FrozenSet[object],
               report: Optional[object]) -> FrozenSet[object]:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            facts = self._apply_calls(stmt, facts, report)
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)):
                    op = self.write_ops.get(target.attr)
                    if op is not None:
                        facts = self._apply_op(op, target.value.id,
                                               target, facts, report)
            for target in targets:
                facts = self._bind(target, stmt.value, facts)
            return facts
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if (isinstance(target, ast.Name)
                        and target.id in self.relevant):
                    facts = self._set(facts, target.id, self.all_states)
            return facts
        facts = self._apply_calls(stmt, facts, report)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name) and sub.id in self.relevant:
                    facts = self._set(facts, sub.id, self.all_states)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if (isinstance(sub, ast.Name)
                                and sub.id in self.relevant):
                            facts = self._set(facts, sub.id,
                                              self.all_states)
        return facts

    def _bind(self, target: ast.AST, value: Optional[ast.AST],
              facts: FrozenSet[object]) -> FrozenSet[object]:
        creator = self._creator_of(value)
        if isinstance(target, ast.Name):
            if target.id not in self.relevant:
                return facts
            if creator is not None and creator.result_index is None:
                return self._set(facts, target.id,
                                 frozenset({creator.state}))
            if isinstance(value, ast.Name):
                states = self._states(facts, value.id)
                if states:
                    return self._set(facts, target.id, states)
            # Opaque rebinding: back to "could be anything".
            return self._set(facts, target.id, self.all_states)
        if isinstance(target, ast.Tuple):
            for index, elt in enumerate(target.elts):
                if not isinstance(elt, ast.Name):
                    continue
                if elt.id not in self.relevant:
                    continue
                if creator is not None and creator.result_index == index:
                    facts = self._set(facts, elt.id,
                                      frozenset({creator.state}))
                else:
                    facts = self._set(facts, elt.id, self.all_states)
        return facts

    def _apply_calls(self, stmt: ast.AST, facts: FrozenSet[object],
                     report: Optional[object]) -> FrozenSet[object]:
        for call in calls_of(stmt):
            facts = self._apply_call(call, facts, report)
        return facts

    def _apply_call(self, call: ast.Call, facts: FrozenSet[object],
                    report: Optional[object]) -> FrozenSet[object]:
        name = _called_name(call)
        handled: Set[int] = set()     # ids of operand Name nodes consumed
        receiver_handled = False

        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            op = self.call_ops.get(func.attr)
            if op is not None and self._states(facts, func.value.id):
                facts = self._apply_op(op, func.value.id, call, facts,
                                       report)
                receiver_handled = True

        for arg_op in self.arg_ops.get(name, []):
            if arg_op.arg_index >= len(call.args):
                continue
            operand = call.args[arg_op.arg_index]
            if (isinstance(operand, ast.Name)
                    and self._states(facts, operand.id)):
                facts = self._apply_op(arg_op, operand.id, call, facts,
                                       report)
                handled.add(id(operand))

        if not handled and not receiver_handled:
            facts = self._apply_callee_relation(call, facts, report,
                                               handled)

        if self.spec.on_escape == "reset":
            facts = self._apply_escapes(call, facts, handled,
                                        receiver_handled)
        return facts

    def _apply_op(self, op: Operation, name: str, node: ast.AST,
                  facts: FrozenSet[object],
                  report: Optional[object]) -> FrozenSet[object]:
        entering = self._states(facts, name)
        if not entering:
            return facts
        legal = frozenset(s for s in entering if s in op.transitions)
        non_error = entering - {self.error}
        if report is not None and non_error and not (non_error
                                                     & op.sources()):
            allowed = (", ".join(sorted(op.sources()))
                       or "no state (the operation is forbidden)")
            extra = f"; {op.description}" if op.description else ""
            report(node, (  # type: ignore[operator]
                f"{self.spec.name}: {op.describe()} on '{name}' is "
                f"illegal in every reachable state "
                f"({', '.join(sorted(non_error))}); allowed from: "
                f"{allowed}{extra}"))
        post: Set[str] = set()
        for state in legal:
            post.update(op.transitions[state])
        if entering - legal:
            post.add(self.error)
        return self._set(facts, name, frozenset(post))

    # -- interprocedural lift ---------------------------------------------

    def _apply_callee_relation(self, call: ast.Call,
                               facts: FrozenSet[object],
                               report: Optional[object],
                               handled: Set[int]) -> FrozenSet[object]:
        site = self.sites.get(id(call))
        if site is None or site.callee is None:
            return facts
        callee_decl = self.project.declaration(site.callee)
        if callee_decl is None:
            return facts
        for param, arg in bind_args(callee_decl, call):
            if not isinstance(arg, ast.Name):
                continue
            entering = self._states(facts, arg.id)
            if not entering:
                continue
            relation = transition_relation(self.project, self.spec,
                                           site.callee, param)
            if relation is None:
                continue
            handled.add(id(arg))
            post: Set[str] = set()
            survivable = False
            for state in entering:
                outs = relation.get(state, frozenset({state}))
                post.update(outs)
                if state != self.error and (outs - {self.error}):
                    survivable = True
            non_error = entering - {self.error}
            if report is not None and non_error and not survivable:
                report(call, (  # type: ignore[operator]
                    f"{self.spec.name}: call to "
                    f"{callee_decl.qualname}() cannot complete legally "
                    f"with '{arg.id}' in state "
                    f"({', '.join(sorted(non_error))}): every outcome "
                    f"inside the callee violates the protocol"))
            facts = self._set(facts, arg.id, frozenset(post))
        return facts

    def _apply_escapes(self, call: ast.Call, facts: FrozenSet[object],
                       handled: Set[int],
                       receiver_handled: bool) -> FrozenSet[object]:
        """``on_escape="reset"``: unknown code may advance the object."""
        func = call.func
        if (not receiver_handled and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and self._states(facts, func.value.id)):
            facts = self._set(facts, func.value.id, self.all_states)
        operands = list(call.args) + [kw.value for kw in call.keywords]
        for operand in operands:
            if (isinstance(operand, ast.Name) and id(operand) not in handled
                    and self._states(facts, operand.id)):
                facts = self._set(facts, operand.id, self.all_states)
        return facts


# ---------------------------------------------------------------------------
# Transition relations (the function-summary lift)
# ---------------------------------------------------------------------------

Relation = Dict[str, FrozenSet[str]]


def transition_relation(project: Project, spec: ProtocolSpec,
                        fid: FunctionId,
                        param: str) -> Optional[Relation]:
    """``in-state -> possible out-states`` of ``param`` through ``fid``.

    Computed by running the spec's transfer over the callee's CFG once
    per starting state and reading the parameter's states at the normal
    exit (a parameter rebound locally contributes the identity — the
    caller's object is unaffected).  Memoised per
    ``(spec, function, param)`` in ``Project.analysis_cache``; recursion
    is cut by publishing the identity relation before computing, so
    mutually recursive helpers converge to a sound over-approximation.
    """
    key = ("typestate", spec.name, fid, param)
    cache = project.analysis_cache
    if key in cache:
        return cache[key]  # type: ignore[return-value]
    decl = project.declaration(fid)
    cfg = project.summaries.cfg(fid)
    if decl is None or cfg is None:
        cache[key] = None
        return None
    if param not in {arg.arg for arg in _all_args(decl.node)}:
        cache[key] = None
        return None
    identity: Relation = {state: frozenset({state})
                          for state in spec.states}
    cache[key] = identity  # recursion cut: callee-of-self sees identity
    analysis = _FunctionAnalysis(spec, project, fid)

    def transfer(node: CFGNode,
                 value: FrozenSet[object]) -> FrozenSet[object]:
        if node.stmt is None:
            return value
        return analysis._apply(node.stmt, value, None)

    relation: Relation = {}
    base = frozenset((name, state) for name in analysis.relevant
                     if name != param for state in analysis.all_states)
    for start in spec.states:
        entry = base | frozenset({(param, start)})
        result = solve_forward(cfg, _LATTICE, transfer, entry)
        out = analysis._states(result.entering(cfg.exit), param)
        relation[start] = out or frozenset({start})
    cache[key] = relation
    return relation


def check_protocol(spec: ProtocolSpec, project: Project,
                   ctx: FileContext) -> List[Finding]:
    """Evaluate one spec over every function of one file."""
    findings: List[Finding] = []
    for decl in project.functions_of(ctx.logical):
        if project.summaries.cfg(decl.fid) is None:
            continue
        findings.extend(_FunctionAnalysis(spec, project, decl.fid).run())
    findings.sort()
    return findings


# ---------------------------------------------------------------------------
# --explain rendering
# ---------------------------------------------------------------------------

def render_table(spec: ProtocolSpec) -> str:
    """A human-readable state-machine table for ``--explain``."""
    lines = [f"protocol: {spec.name}"]
    if spec.description:
        lines.append(f"  {spec.description}")
    lines.append(f"states: {', '.join(spec.states)} "
                 f"(+ {spec.error_state})")
    if spec.creators:
        for creator in spec.creators:
            where = ("" if creator.result_index is None
                     else f" [result {creator.result_index}]")
            lines.append(f"creator: {creator.name}(...){where} -> "
                         f"{creator.state}")
    if spec.tracked_types:
        lines.append("tracked annotations: "
                     + ", ".join(sorted(spec.tracked_types)))
    lines.append(f"on escape to unknown code: {spec.on_escape}")
    header = f"{'operation':<34} {'from':<22} to"
    lines.append(header)
    lines.append("-" * len(header))
    for op in spec.operations:
        rows = sorted(op.transitions.items())
        if not rows:
            lines.append(f"{op.describe():<34} {'(forbidden)':<22} "
                         f"{spec.error_state}")
        for source, targets in rows:
            lines.append(f"{op.describe():<34} {source:<22} "
                         f"{'|'.join(sorted(targets))}")
        if op.description:
            lines.append(f"    {op.description}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The committed protocols
# ---------------------------------------------------------------------------

def _t(**transitions: Sequence[str]) -> Dict[str, FrozenSet[str]]:
    return {source: frozenset(targets)
            for source, targets in transitions.items()}


#: RL013 — the BAT lifecycle of the paper's §3 walked by
#: ``ControlNode.transaction_process``.  ``admit`` is nondeterministic
#: (the scheduler may reject); the binding ``start_time`` write the CN
#: performs only after an accepted admission collapses it to *active*.
BAT_PROTOCOL = ProtocolSpec(
    name="BAT lifecycle",
    states=("pending", "active", "aborted", "committed"),
    error_state="invalid",
    creators=(Creator("TransactionRuntime", "pending"),),
    operations=(
        Operation(ARG, "admit", _t(pending=("pending", "active")),
                  description="admission may accept or reject"),
        Operation(WRITE, "start_time",
                  _t(pending=("active",), active=("active",)),
                  description="the CN stamps start_time only once the "
                              "scheduler accepted the BAT"),
        Operation(ARG, "request_lock", _t(active=("active",)),
                  description="lock requests only for an admitted, "
                              "uncommitted BAT"),
        Operation(ARG, "_apply_grant", _t(active=("active",)),
                  description="a grant only lands on an admitted, "
                              "waiting BAT"),
        Operation(CALL, "advance_step", _t(active=("active",))),
        Operation(ARG, "commit", _t(active=("committed",)),
                  description="no commit after a doom or abort"),
        Operation(ARG, "abort_transaction", _t(active=("aborted",)),
                  description="no double abort"),
        Operation(CALL, "reset_for_retry", _t(aborted=("pending",)),
                  description="restart only from aborted"),
        Operation(CALL, "response_time", _t(committed=("committed",))),
    ),
    tracked_types=frozenset({"TransactionRuntime"}),
    on_escape="ignore",
    description="admitted -> running -> committed/aborted -> restarted; "
                "state changes only through the scheduler API",
)

#: RL014 — the engine Event contract.  Direct ``_value`` writes are
#: forbidden outright: they bypass the ``EngineStateError`` re-trigger
#: guard in ``succeed()``/``fail()``.
EVENT_PROTOCOL = ProtocolSpec(
    name="Event lifecycle",
    states=("pending", "triggered", "defused"),
    error_state="corrupt",
    creators=(Creator("Event", "pending"), Creator("Condition", "pending"),
              Creator("AnyOf", "pending"), Creator("AllOf", "pending"),
              Creator("Timeout", "pending")),
    operations=(
        Operation(CALL, "succeed", _t(pending=("triggered",)),
                  introduces=True,
                  description="an event triggers at most once"),
        Operation(CALL, "fail", _t(pending=("triggered",)),
                  introduces=True,
                  description="an event triggers at most once"),
        Operation(WRITE, "_value", {},
                  description="trigger through succeed()/fail(), which "
                              "enforce the single-trigger guard"),
        Operation(WRITE, "_defused", _t(triggered=("defused",)),
                  description="only a triggered (failed) event is "
                              "defused"),
        Operation(ARG, "unschedule", _t(pending=("defused",)),
                  description="only a scheduled, untriggered event can "
                              "be unscheduled"),
    ),
    tracked_types=frozenset({"Event"}),
    on_escape="ignore",
    description="created -> triggered (once) -> processed; failed "
                "sub-events of conditions must be defused",
)

#: RL015 — WTPG node order: nothing touches an excised node.  All
#: operations introduce tracking (node handles are plain ints, so there
#: is no annotation or constructor to anchor on).
WTPG_NODE_PROTOCOL = ProtocolSpec(
    name="WTPG node lifecycle",
    states=("absent", "present", "excised"),
    error_state="invalid",
    creators=(),
    operations=(
        Operation(ARG, "add_transaction", _t(absent=("present",)),
                  introduces=True,
                  description="a node is created exactly once"),
        Operation(ARG, "remove_transaction", _t(present=("excised",)),
                  introduces=True,
                  description="excision drops the node and its edges"),
        Operation(ARG, "ensure_pair", _t(present=("present",)),
                  arg_index=0, introduces=True),
        Operation(ARG, "ensure_pair", _t(present=("present",)),
                  arg_index=1, introduces=True),
        Operation(ARG, "resolve", _t(present=("present",)),
                  arg_index=0, introduces=True),
        Operation(ARG, "resolve", _t(present=("present",)),
                  arg_index=1, introduces=True),
        Operation(ARG, "source_weight", _t(present=("present",)),
                  introduces=True),
        Operation(ARG, "set_source_weight", _t(present=("present",)),
                  introduces=True),
        Operation(ARG, "decrement_source", _t(present=("present",)),
                  introduces=True,
                  description="a weight-adjustment message for an "
                              "excised node must be dropped, not "
                              "applied"),
        Operation(ARG, "conflict_neighbors", _t(present=("present",)),
                  introduces=True),
    ),
    on_escape="ignore",
    description="created -> linked/read -> excised; no edge operation "
                "or estimator read after excision (the excision bump "
                "itself is RL002/RL010's contract)",
)

#: RL016 — checkpoint results: loaded, validated, merged exactly once.
CHECKPOINT_PROTOCOL = ProtocolSpec(
    name="checkpoint lifecycle",
    states=("loaded", "validated", "merged"),
    error_state="invalid",
    creators=(Creator("read_checkpoint", "loaded", result_index=1),),
    operations=(
        Operation(ARG, "_validate_checkpoint", _t(loaded=("validated",)),
                  arg_index=1,
                  description="fingerprint and task-key validation "
                              "must see freshly loaded results"),
        Operation(ARG, "update", _t(validated=("merged",)),
                  description="a task result set merges into the sweep "
                              "exactly once, after validation"),
    ),
    on_escape="ignore",
    description="read_checkpoint -> _validate_checkpoint -> merged "
                "into the done map exactly once",
)


# ---------------------------------------------------------------------------
# The rules
# ---------------------------------------------------------------------------

class TypestateRule(ProjectRule):
    """Shared driver: evaluate ``spec`` over the files in scope."""

    spec: ProtocolSpec

    def check_project(self, ctx: FileContext,
                      project: Project) -> Iterator[Violation]:
        for line, col, message in check_protocol(self.spec, project, ctx):
            yield Violation(self.rule_id, ctx.display, line, col, message)


@register_rule
class BatLifecycleRule(TypestateRule):
    rule_id = "RL013"
    summary = ("BAT lifecycle conformance (typestate): no commit after "
               "doom/abort, no double abort, grants only to waiting "
               "transactions, restart only from aborted")
    spec = BAT_PROTOCOL

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.in_dir("core/schedulers") or ctx.in_dir("faults")
                or ctx.is_module("repro/machine/control_node.py")
                or ctx.is_module("repro/machine/shard.py")
                or ctx.is_module("repro/machine/control_log.py"))


@register_rule
class EventLifecycleRule(TypestateRule):
    rule_id = "RL014"
    summary = ("engine Event lifecycle (typestate): trigger once via "
               "succeed()/fail(), defuse only triggered events, "
               "unschedule only scheduled ones")
    spec = EVENT_PROTOCOL

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir("engine")


@register_rule
class WtpgNodeLifecycleRule(TypestateRule):
    rule_id = "RL015"
    summary = ("WTPG node lifecycle (typestate): no edge operation or "
               "estimator read against an excised node")
    spec = WTPG_NODE_PROTOCOL

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.is_module("repro/core/wtpg.py")
                or ctx.is_module("repro/core/builder.py"))


@register_rule
class CheckpointLifecycleRule(TypestateRule):
    rule_id = "RL016"
    summary = ("checkpoint/sweep-task lifecycle (typestate): results "
               "merge once, only after fingerprint validation")
    spec = CHECKPOINT_PROTOCOL

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_module("repro/experiments/parallel.py")
