"""Intraprocedural control-flow graphs over ``ast`` function bodies.

The CFG is the substrate the flow-sensitive rules (RL002, RL006–RL008)
run on: one :class:`CFGNode` per simple statement or compound-statement
header, a distinguished ``entry``, a ``exit`` for normal completion
(every ``return`` and the fall-off-the-end path) and a ``raise`` exit
for exceptional completion.

Supported control flow and the modelling decisions behind it:

``if`` / ``for`` / ``while`` (with ``else``)
    Loop headers are the ``For``/``While`` node itself; the back edge
    goes body-end → header, ``continue`` → header, ``break`` → the
    point *after* the whole statement (bypassing ``else``, as in
    Python).  Loop bodies may execute zero times, so the header always
    has an edge to the ``else``/after part — including ``while True``
    (a deliberate, documented over-approximation).

``try`` / ``except`` / ``finally``
    Implicit exceptions are modelled *only* for statements lexically
    inside a ``try`` body or an ``except`` body — each such statement
    gets an edge to the innermost applicable propagation target
    (the handlers of the enclosing ``try``, or its exceptional
    ``finally`` copy, or the next try out, or the ``raise`` exit).
    Ordinary calls outside any ``try`` get no exception edges: modelling
    "anything can raise anywhere" drowns real leaks in noise, and the
    runtime treats an unexpected exception as a hard failure anyway.

    ``finally`` bodies are *duplicated*, once per continuation kind:
    one normal copy (fall-through and handler completion), one shared
    exceptional copy (implicit raises and ``raise`` statements), and
    one fresh copy per abrupt ``return``/``break``/``continue`` that
    crosses the ``try``.  Duplication keeps paths separate — a
    ``return`` inside ``try`` flows through the ``finally`` and then to
    ``exit``, never contaminating the fall-through path.

``with``
    The ``With`` header is an ordinary statement node; ``__exit__`` is
    *not* modelled as an implicit ``finally`` (no scheduler code relies
    on context managers for protocol cleanup — RL006 tracks explicit
    acquire/release calls).

``return`` / ``raise`` / ``break`` / ``continue``
    Abrupt statements terminate their path; pending ``finally`` bodies
    between the statement and its target are inlined innermost-first.
    A ``return`` inside a ``finally`` overrides the in-flight
    continuation, exactly as in Python.

Nodes carry the original ``ast`` statement (shared between ``finally``
copies), so transfer functions stay purely syntactic.  Labels — used by
the golden tests — are ``entry``/``exit``/``raise`` for the synthetic
nodes, ``L<line>:<Type>`` for statements, with ``#2``/``#3`` suffixes
distinguishing duplicated copies in node-creation order.
"""

from __future__ import annotations

import ast
from typing import (Dict, Iterator, List, Optional, Sequence, Set, Tuple,
                    Union)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Node kinds.  ``stmt`` nodes carry a real ``ast.stmt`` (or an
#: ``ast.ExceptHandler``); the rest are synthetic.
ENTRY = "entry"
EXIT = "exit"
RAISE = "raise"
STMT = "stmt"
JOIN = "join"


class CFGNode:
    """One vertex of the graph."""

    __slots__ = ("index", "kind", "stmt", "note", "succs", "preds")

    def __init__(self, index: int, kind: str,
                 stmt: Optional[ast.AST] = None,
                 note: str = "") -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt
        self.note = note
        self.succs: List[int] = []
        self.preds: List[int] = []

    def base_label(self) -> str:
        if self.kind in (ENTRY, EXIT, RAISE):
            return self.kind
        if self.kind == JOIN:
            return self.note
        assert self.stmt is not None
        line = getattr(self.stmt, "lineno", 0)
        return f"L{line}:{type(self.stmt).__name__}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CFGNode {self.index} {self.base_label()}>"


class CFG:
    """A built control-flow graph for one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[CFGNode] = []
        self.entry = self._new_node(ENTRY)
        self.exit = self._new_node(EXIT)
        self.raise_exit = self._new_node(RAISE)

    # -- construction ------------------------------------------------------

    def _new_node(self, kind: str, stmt: Optional[ast.AST] = None,
                  note: str = "") -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt, note)
        self.nodes.append(node)
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode) -> None:
        if dst.index not in src.succs:
            src.succs.append(dst.index)
            dst.preds.append(src.index)

    # -- queries -----------------------------------------------------------

    def successors(self, node: CFGNode) -> List[CFGNode]:
        return [self.nodes[i] for i in node.succs]

    def predecessors(self, node: CFGNode) -> List[CFGNode]:
        return [self.nodes[i] for i in node.preds]

    def stmt_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.kind == STMT]

    def labels(self) -> Dict[int, str]:
        """Stable display label per node index (``#k`` dedups copies)."""
        counts: Dict[str, int] = {}
        out: Dict[int, str] = {}
        for node in self.nodes:
            base = node.base_label()
            counts[base] = counts.get(base, 0) + 1
            out[node.index] = (base if counts[base] == 1
                               else f"{base}#{counts[base]}")
        return out

    def edges(self) -> List[Tuple[str, str]]:
        """Sorted labelled edge list — the golden-test representation."""
        labels = self.labels()
        pairs = {(labels[src.index], labels[dst])
                 for src in self.nodes for dst in src.succs}
        return sorted(pairs)

    def reachable(self) -> Set[int]:
        """Node indices reachable from entry (dead code is unreachable)."""
        seen: Set[int] = set()
        stack = [self.entry.index]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self.nodes[index].succs)
        return seen


class _LoopCtx:
    """Targets for break/continue plus the finally depth at loop entry."""

    __slots__ = ("header", "breaks", "finally_depth")

    def __init__(self, header: CFGNode, finally_depth: int) -> None:
        self.header = header
        self.breaks: List[CFGNode] = []
        self.finally_depth = finally_depth


class _FinallyCtx:
    """A pending ``finally`` body and the lexical context to build it in."""

    __slots__ = ("stmts", "exc_depth", "loop_depth")

    def __init__(self, stmts: List[ast.stmt], exc_depth: int,
                 loop_depth: int) -> None:
        self.stmts = stmts
        self.exc_depth = exc_depth
        self.loop_depth = loop_depth


Frontier = List[CFGNode]


class _Builder:
    def __init__(self, fn: FunctionNode) -> None:
        self.cfg = CFG(fn.name)
        self.loops: List[_LoopCtx] = []
        #: Innermost-last propagation targets for an implicit raise; each
        #: element is the list of nodes an exception at this lexical
        #: position flows to (handler nodes or an exceptional-finally
        #: entry).  Empty stack → no exception modelling (raise exit for
        #: explicit ``raise`` only).
        self.exc_stack: List[List[CFGNode]] = []
        self.finallies: List[_FinallyCtx] = []

    # -- top level ---------------------------------------------------------

    def build(self, fn: FunctionNode) -> CFG:
        frontier = self._body(fn.body, [self.cfg.entry])
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    # -- plumbing ----------------------------------------------------------

    def _connect(self, frontier: Frontier, target: CFGNode) -> None:
        for node in frontier:
            self.cfg.add_edge(node, target)

    def _exc_targets(self) -> List[CFGNode]:
        """Where an exception raised *here* flows (innermost region)."""
        if self.exc_stack:
            return self.exc_stack[-1]
        return [self.cfg.raise_exit]

    def _stmt_node(self, stmt: ast.AST, frontier: Frontier,
                   may_raise: bool = True) -> CFGNode:
        node = self.cfg._new_node(STMT, stmt)
        self._connect(frontier, node)
        # Implicit exception edges only inside a try region: the
        # enclosing handlers (or exceptional finally) may observe the
        # state at any statement of the guarded body.
        if may_raise and self.exc_stack:
            for target in self.exc_stack[-1]:
                self.cfg.add_edge(node, target)
        return node

    # -- statement dispatch ------------------------------------------------

    def _body(self, stmts: Sequence[ast.stmt],
              frontier: Frontier) -> Frontier:
        current = list(frontier)
        for stmt in stmts:
            if not current:
                break  # unreachable tail (after return/raise/…)
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, frontier)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, frontier)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, frontier)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, frontier)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested definitions are opaque single statements: their
            # bodies get their own CFGs if a rule asks for them.
            node = self._stmt_node(stmt, frontier)
            return [node]
        node = self._stmt_node(stmt, frontier)
        return [node]

    def _if(self, stmt: ast.If, frontier: Frontier) -> Frontier:
        head = self._stmt_node(stmt, frontier)
        then_out = self._body(stmt.body, [head])
        else_out = self._body(stmt.orelse, [head]) if stmt.orelse else [head]
        return then_out + else_out

    def _loop(self, stmt: Union[ast.For, ast.AsyncFor, ast.While],
              frontier: Frontier) -> Frontier:
        header = self._stmt_node(stmt, frontier)
        ctx = _LoopCtx(header, len(self.finallies))
        self.loops.append(ctx)
        body_out = self._body(stmt.body, [header])
        self._connect(body_out, header)  # back edge
        self.loops.pop()
        # Condition-false / iterator-exhausted: runs else, then falls out.
        after = self._body(stmt.orelse, [header]) if stmt.orelse else [header]
        return after + ctx.breaks

    def _with(self, stmt: Union[ast.With, ast.AsyncWith],
              frontier: Frontier) -> Frontier:
        head = self._stmt_node(stmt, frontier)
        return self._body(stmt.body, [head])

    def _try(self, stmt: ast.Try, frontier: Frontier) -> Frontier:
        outer_exc = self._exc_targets()

        # Shared exceptional finally copy: where uncaught exceptions (and
        # exceptions raised inside handlers) land before propagating out.
        if stmt.finalbody:
            line = stmt.finalbody[0].lineno
            exc_fin_entry = self.cfg._new_node(
                JOIN, note=f"finally@L{line}[exc]")
            exc_fin_out = self._body(stmt.finalbody, [exc_fin_entry])
            self._connect(exc_fin_out, outer_exc[0])
            for extra in outer_exc[1:]:
                self._connect(exc_fin_out, extra)
            propagate: List[CFGNode] = [exc_fin_entry]
        else:
            propagate = outer_exc

        # Handler entry nodes exist before the body is built so body
        # statements can point their implicit exception edges at them.
        handler_nodes = [self.cfg._new_node(STMT, handler)
                         for handler in stmt.handlers]

        if stmt.finalbody:
            self.finallies.append(_FinallyCtx(
                list(stmt.finalbody), len(self.exc_stack), len(self.loops)))

        # Body: exceptions go to the handlers if any, else straight to
        # the exceptional finally / outer propagation.  The pre-body
        # frontier also feeds the targets: an exception can fire before
        # the first statement's effect lands.
        body_targets = handler_nodes if handler_nodes else propagate
        for target in body_targets:
            self._connect(frontier, target)
        self.exc_stack.append(body_targets)
        body_out = self._body(stmt.body, frontier)
        self.exc_stack.pop()

        # Handlers: exceptions inside a handler propagate outward
        # (through this try's finally), never back into a sibling.
        handler_outs: Frontier = []
        for handler, node in zip(stmt.handlers, handler_nodes):
            self.exc_stack.append(propagate)
            handler_outs.extend(self._body(handler.body, [node]))
            self.exc_stack.pop()

        # else runs only when the body completed normally; its
        # exceptions are NOT caught by this try's handlers.
        if stmt.orelse:
            self.exc_stack.append(propagate)
            body_out = self._body(stmt.orelse, body_out)
            self.exc_stack.pop()

        if stmt.finalbody:
            self.finallies.pop()
            # Normal finally copy for fall-through + handler completion.
            normal_in = body_out + handler_outs
            if not normal_in:
                return []  # every path returned/raised/broke
            return self._body(stmt.finalbody, normal_in)
        return body_out + handler_outs

    # -- abrupt statements -------------------------------------------------

    def _inline_finallies(self, frontier: Frontier,
                          down_to: int) -> Frontier:
        """Duplicate pending finally bodies (innermost first) onto the
        path, restoring each one's lexical context while building it.
        Callers save and restore ``self.finallies`` around the call."""
        current = frontier
        while len(self.finallies) > down_to and current:
            ctx = self.finallies.pop()
            saved_exc, saved_loops = self.exc_stack, self.loops
            self.exc_stack = saved_exc[:ctx.exc_depth]
            self.loops = saved_loops[:ctx.loop_depth]
            current = self._body(ctx.stmts, current)
            self.exc_stack, self.loops = saved_exc, saved_loops
        return current

    def _return(self, stmt: ast.Return, frontier: Frontier) -> Frontier:
        node = self._stmt_node(stmt, frontier)
        saved = list(self.finallies)
        out = self._inline_finallies([node], 0)
        self.finallies = saved
        self._connect(out, self.cfg.exit)
        return []

    def _raise(self, stmt: ast.Raise, frontier: Frontier) -> Frontier:
        node = self.cfg._new_node(STMT, stmt)
        self._connect(frontier, node)
        # The exceptional-finally copies are already chained to the
        # right propagation target, so a raise just joins that path.
        for target in self._exc_targets():
            self.cfg.add_edge(node, target)
        return []

    def _break(self, stmt: ast.Break, frontier: Frontier) -> Frontier:
        node = self._stmt_node(stmt, frontier, may_raise=False)
        if not self.loops:
            return []  # syntactically invalid; ast.parse rejects it anyway
        ctx = self.loops[-1]
        saved = list(self.finallies)
        out = self._inline_finallies([node], ctx.finally_depth)
        self.finallies = saved
        ctx.breaks.extend(out)
        return []

    def _continue(self, stmt: ast.Continue, frontier: Frontier) -> Frontier:
        node = self._stmt_node(stmt, frontier, may_raise=False)
        if not self.loops:
            return []
        ctx = self.loops[-1]
        saved = list(self.finallies)
        out = self._inline_finallies([node], ctx.finally_depth)
        self.finallies = saved
        self._connect(out, ctx.header)
        return []


def build_cfg(fn: FunctionNode) -> CFG:
    """Build the CFG of one (non-nested) function definition."""
    return _Builder(fn).build(fn)


def header_exprs(stmt: ast.AST) -> Iterator[ast.AST]:
    """The sub-trees evaluated when *this* CFG node executes.

    A compound statement's node represents only its header — the test,
    the iterable, the context managers — while the nested body belongs
    to other nodes.  Transfer functions must walk these roots instead of
    the raw statement, or a ``for`` header would "execute" every call in
    its own loop body.  Simple statements yield themselves; nested
    function/class definitions are opaque apart from their decorators
    (their bodies run later, if at all).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.target
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
            if item.optional_vars is not None:
                yield item.optional_vars
    elif isinstance(stmt, ast.Try):
        return
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.type is not None:
            yield stmt.type
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        for decorator in stmt.decorator_list:
            yield decorator
    else:
        yield stmt


def functions_of(tree: ast.AST) -> List[FunctionNode]:
    """Every function/method definition in the tree, outermost first."""
    found: List[FunctionNode] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append(node)
    found.sort(key=lambda fn: (fn.lineno, fn.col_offset))
    return found
