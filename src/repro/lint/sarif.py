"""SARIF 2.1.0 output for repro-lint.

One run, one driver, one result per violation.  The emitted document is
the minimal valid subset GitHub code scanning consumes: driver metadata
with the rule catalogue (``ruleIndex`` back-references), one
``physicalLocation`` per result with a repo-relative artifact URI, and a
``partialFingerprints`` entry reusing the baseline fingerprint so alert
identity survives line drift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.baseline import fingerprints_for
from repro.lint.model import Rule, Violation

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro-lint"
TOOL_VERSION = "1.0.0"

#: partialFingerprints key; versioned so the hashing scheme can evolve.
FINGERPRINT_KEY = "reproLint/v1"


def artifact_uri(file: str, root: Optional[Path] = None) -> str:
    """Repo-relative posix URI for a violation's file, if possible."""
    path = Path(file)
    base = (root or Path.cwd()).resolve()
    try:
        return path.resolve().relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


def render_sarif(violations: Sequence[Violation], rules: Sequence[Rule],
                 root: Optional[Path] = None) -> str:
    """The SARIF 2.1.0 document for one lint run, as a JSON string."""
    rule_index: Dict[str, int] = {rule.rule_id: i
                                  for i, rule in enumerate(rules)}
    fingerprints = fingerprints_for(violations)
    results: List[Dict[str, object]] = []
    for violation, fingerprint in zip(violations, fingerprints):
        result: Dict[str, object] = {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": artifact_uri(violation.file, root),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": violation.line,
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": violation.col + 1,
                    },
                },
            }],
            "partialFingerprints": {FINGERPRINT_KEY: fingerprint},
        }
        if violation.rule_id in rule_index:
            result["ruleIndex"] = rule_index[violation.rule_id]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "rules": [{
                        "id": rule.rule_id,
                        "shortDescription": {"text": rule.summary},
                    } for rule in rules],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
