"""The flow-sensitive rules RL006–RL012, built on cfg + dataflow.

Where RL001–RL005 are single-pass AST matchers, these rules state *path*
properties: every rule builds the CFG of each function in scope
(:func:`repro.lint.cfg.build_cfg`), runs a forward may-analysis to a
fixpoint (:func:`repro.lint.dataflow.solve_forward`) and reports on what
survives to an exit.  RL006–RL008 are intraprocedural; RL009–RL012 are
:class:`~repro.lint.model.ProjectRule` subclasses consuming the
whole-program call graph and function summaries through the
:class:`~repro.lint.project.Project` the engine hands them.
``docs/lint.md`` has the full catalogue entry, threat model and known
over/under-approximations of each rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import (Dict, FrozenSet, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from repro.lint.callgraph import FunctionDecl, FunctionId
from repro.lint.cfg import CFG, CFGNode, FunctionNode, build_cfg, header_exprs
from repro.lint.dataflow import (ResourceFact, ResourceSpec, UnionLattice,
                                 method_name_of, resource_gen_kill,
                                 resource_transfer, solve_forward)
from repro.lint.model import (FileContext, ProjectRule, Rule, Violation,
                              register_rule)
from repro.lint.project import Project
from repro.lint.rules import WATCHED_ATTRS, _is_bump, _statement_mutations
from repro.lint.summaries import (SummaryTable, bind_args, stmt_has_yield,
                                  watched_mutations)

_LATTICE = UnionLattice()

#: Container methods that mutate their receiver in place — an attribute
#: load that only *receives* one of these is cache maintenance, not a
#: guarded read.
_INPLACE_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update",
})


def _functions_in_class(tree: ast.Module,
                        class_name: Optional[str] = None,
                        ) -> Iterator[FunctionNode]:
    """Direct methods of one class, or every function in the module."""
    if class_name is None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item


# ---------------------------------------------------------------------------
# RL006 — lock-declaration / resource lifecycle leaks
# ---------------------------------------------------------------------------

#: The protocol resources of the scheduler/machine layer.  ``register``
#: opens a lock-declaration registration in the LockTable; it is closed
#: by ``unregister`` (reject/abort), by ``builder.add_transaction`` /
#: ``builder.remove_transaction`` (ownership transfer into/out of the
#: WTPG admission path).  ``request``/``release`` is the engine's
#: SimPy-style Resource grant protocol (the control node's CPU token).
RL006_SPECS: Tuple[ResourceSpec, ...] = (
    ResourceSpec("lock-registration",
                 acquire=frozenset({"register"}),
                 release=frozenset({"unregister", "add_transaction",
                                    "remove_transaction"})),
    ResourceSpec("engine-resource",
                 acquire=frozenset({"request"}),
                 release=frozenset({"release"})),
)


@register_rule
class LockLifecycleRule(Rule):
    """RL006: a resource released on some paths must be released on all.

    In ``core/schedulers/``, ``core/locks.py`` and ``machine/``, a
    function that acquires a protocol resource (``register`` a
    declaration, ``request`` a CPU token) and releases it on *some* exit
    path must release it on *every* exit path — the abort/cascade/fault
    machinery of PR 3 multiplied the exits, and a registration that
    survives a reject path wedges the admission protocol.  Functions
    that never release intraprocedurally are exempt (2PL-style
    registrations intentionally persist until commit/abort elsewhere);
    this inconsistency heuristic is what keeps the rule's false-positive
    rate at zero on purpose-persistent protocols.  Exception edges are
    modelled inside ``try`` blocks and at explicit ``raise`` statements,
    so a ``finally`` release keeps a function clean.
    """

    rule_id = "RL006"
    summary = ("resources (register/request) released on some paths must "
               "be released on every path to a function exit")

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.in_dir("core/schedulers")
                or ctx.is_module("repro/core/locks.py")
                or ctx.in_dir("machine"))

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in _functions_in_class(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_function(self, ctx: FileContext,
                        fn: FunctionNode) -> Iterator[Violation]:
        # Inconsistency gate: only resource kinds this function releases
        # somewhere can leak; acquire-only functions persist by design.
        released: Set[str] = set()
        acquired = False
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.stmt):
                continue
            gens, kills = resource_gen_kill(stmt, RL006_SPECS)
            released.update(kills)
            acquired = acquired or bool(gens)
        if not acquired or not released:
            return
        cfg = build_cfg(fn)
        result = solve_forward(cfg, _LATTICE,
                               resource_transfer(RL006_SPECS), frozenset())
        leaked = (result.entering(cfg.exit)
                  | result.entering(cfg.raise_exit))
        seen: Set[Tuple[str, int, int]] = set()
        for fact in sorted(leaked,
                           key=lambda f: (f.line, f.col, f.spec)):  # type: ignore[union-attr]
            assert isinstance(fact, ResourceFact)
            if fact.spec not in released:
                continue
            key = (fact.spec, fact.line, fact.col)
            if key in seen:
                continue
            seen.add(key)
            spec = next(s for s in RL006_SPECS if s.name == fact.spec)
            names = "/".join(sorted(spec.release))
            yield Violation(
                self.rule_id, ctx.display, fact.line, fact.col,
                f"{fact.call}() in {fn.name} is released on some paths "
                f"but can reach a function exit still held: call "
                f"{names} on every path (including exception edges), "
                "or keep ownership past the function on all paths")


# ---------------------------------------------------------------------------
# RL007 — unguarded reads of generation-guarded caches
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheFamily:
    """One memo family: its cache fields and the guard that validates them.

    A *guard event* — calling one of ``guard_calls`` or touching one of
    ``guard_fields`` (comparing, testing or re-syncing the family's
    generation/flag) — certifies the family's fields until the next
    mutation.  Writing a cache field certifies that one field (a fresh
    recomputation is by definition current).
    """

    name: str
    fields: FrozenSet[str]
    guard_fields: FrozenSet[str]
    guard_calls: FrozenSet[str]


#: Guarded-memo families per module.  Fixtures impersonate these logical
#: paths to unit-test the rule.
RL007_FAMILIES: Dict[str, Tuple[CacheFamily, ...]] = {
    "repro/core/wtpg.py": (
        CacheFamily("topo-order",
                    fields=frozenset({"_topo_order", "_topo_pos"}),
                    guard_fields=frozenset({"_known_cyclic"}),
                    guard_calls=frozenset({"_ensure_topo"})),
        CacheFamily("closure",
                    fields=frozenset({"_anc_cache", "_desc_cache"}),
                    guard_fields=frozenset({"_closure_gen"}),
                    guard_calls=frozenset({"_closure_cache"})),
        CacheFamily("critical-path",
                    fields=frozenset({"_cp_dist", "_cp_value"}),
                    guard_fields=frozenset({"_cp_gen"}),
                    guard_calls=frozenset()),
    ),
    "repro/core/estimator.py": (
        CacheFamily("batch-base",
                    fields=frozenset({"_base_dist", "_base_cp",
                                      "_base_cyclic"}),
                    guard_fields=frozenset({"generation", "_generation"}),
                    guard_calls=frozenset({"_prime", "critical_path_length",
                                           "has_precedence_cycle"})),
    ),
    "repro/core/schedulers/kwtpg_scheduler.py": (
        CacheFamily("e-cache",
                    fields=frozenset({"_e_cache"}),
                    guard_fields=frozenset(),
                    guard_calls=frozenset({"stale", "_invalidate"})),
    ),
    "repro/core/schedulers/chain_scheduler.py": (
        CacheFamily("w-order",
                    fields=frozenset({"_w_order"}),
                    guard_fields=frozenset(),
                    guard_calls=frozenset({"_refresh_w", "_force_refresh_w",
                                           "stale"})),
    ),
}

#: Methods whose whole job is to *maintain* a cache under a documented
#: precondition, so raw access is their contract, not a violation.
RL007_EXEMPT_METHODS: Dict[str, FrozenSet[str]] = {
    # _pk_insert's precondition is "_known_cyclic is False" at every call
    # site; cache_violations is paranoia mode — it compares the raw
    # caches against fresh recomputation by design.
    "repro/core/wtpg.py": frozenset({"_pk_insert", "cache_violations"}),
}


def _exempt_attr_loads(stmt: ast.AST) -> Set[int]:
    """ids of attribute nodes whose load is maintenance, not a read:
    roots of assignment/delete targets and receivers of in-place
    container-method calls."""
    exempt: Set[int] = set()

    def mark_chain(node: ast.AST) -> None:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Attribute):
                exempt.add(id(node))
            node = node.value

    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Tuple):
                        for element in target.elts:
                            mark_chain(element)
                    else:
                        mark_chain(target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    mark_chain(target)
            elif isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in _INPLACE_METHODS):
                    mark_chain(node.func.value)
    return exempt


def _family_guards(stmt: ast.AST,
                   families: Sequence[CacheFamily]) -> Set[str]:
    """Names of the families a statement's guard events certify."""
    guarded: Set[str] = set()
    if isinstance(stmt, ast.stmt) and _is_bump(stmt):
        return guarded  # a generation bump invalidates, never certifies
    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                name = method_name_of(node)
                if name is None and isinstance(node.func, ast.Name):
                    name = node.func.id
                if name is not None:
                    for family in families:
                        if name in family.guard_calls:
                            guarded.add(family.name)
            elif isinstance(node, ast.Attribute):
                for family in families:
                    if node.attr in family.guard_fields:
                        guarded.add(family.name)
    return guarded


def _stored_fields(stmt: ast.AST,
                   families: Sequence[CacheFamily]) -> Set[str]:
    """Cache fields a statement (re)writes wholesale — fresh by definition."""
    stored: Set[str] = set()
    all_fields = {f for family in families for f in family.fields}
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr in all_fields:
                stored.add(target.attr)
    return stored


def _dirties(stmt: ast.AST) -> bool:
    """Does the statement invalidate derived state (mutation or bump)?"""
    if not isinstance(stmt, ast.stmt):
        return False
    return bool(_statement_mutations(stmt)) or _is_bump(stmt)


@register_rule
class UnguardedCacheReadRule(Rule):
    """RL007: memoized fields are read only behind their generation guard.

    Invariant 7's runtime check (:meth:`WTPG.cache_violations`) can only
    catch a stale cache *after* a bad read happened in a test run; this
    rule proves the protocol shape statically: on every path from a
    mutation (or from function entry — the graph may have changed in any
    earlier call) to a load of a memoized field, a guard event must
    intervene — calling the family's ensure/refresh helper, comparing or
    re-syncing its generation counter, or freshly writing the field.
    Stores and in-place maintenance calls on the cache containers are
    exempt; guard processing happens before read checks within one
    statement, so the idiomatic ``if self._gen == self._structure_gen
    and self._memo is not None`` is clean while the reversed form —
    reading the memo before comparing — is exactly what gets flagged.
    """

    rule_id = "RL007"
    summary = ("memoized WTPG/estimator/scheduler cache fields must not "
               "be read on a path without a generation-guard check")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.logical in RL007_FAMILIES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        families = RL007_FAMILIES[ctx.logical]
        exempt = RL007_EXEMPT_METHODS.get(ctx.logical, frozenset())
        for fn in _functions_in_class(ctx.tree):
            if fn.name in exempt:
                continue
            yield from self._check_function(ctx, fn, families)

    def _check_function(self, ctx: FileContext, fn: FunctionNode,
                        families: Sequence[CacheFamily],
                        ) -> Iterator[Violation]:
        by_name = {family.name: family for family in families}
        all_fields = frozenset(f for family in families
                               for f in family.fields)
        field_family = {f: family for family in families
                        for f in family.fields}

        def transfer(node: CFGNode,
                     dirty: FrozenSet[object]) -> FrozenSet[object]:
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                return dirty
            if _dirties(stmt):
                return all_fields
            for name in _family_guards(stmt, families):
                dirty = dirty - by_name[name].fields
            stored = _stored_fields(stmt, families)
            if stored:
                dirty = dirty - frozenset(stored)
            return dirty

        cfg = build_cfg(fn)
        result = solve_forward(cfg, _LATTICE, transfer, all_fields)
        reported: Set[Tuple[int, int, str]] = set()
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                continue
            dirty = result.entering(node)
            for name in _family_guards(stmt, families):
                dirty = dirty - by_name[name].fields
            if not dirty:
                continue
            exempt_ids = _exempt_attr_loads(stmt)
            for root in header_exprs(stmt):
                for sub in ast.walk(root):
                    if not isinstance(sub, ast.Attribute):
                        continue
                    if not isinstance(sub.ctx, ast.Load):
                        continue
                    if sub.attr not in all_fields or sub.attr not in dirty:
                        continue
                    if id(sub) in exempt_ids:
                        continue
                    key = (sub.lineno, sub.col_offset, sub.attr)
                    if key in reported:
                        continue
                    reported.add(key)
                    family = field_family[sub.attr]
                    yield Violation(
                        self.rule_id, ctx.display, sub.lineno,
                        sub.col_offset,
                        f"read of {sub.attr} ({family.name} memo) in "
                        f"{fn.name} on a path with no generation-guard "
                        "check since the last mutation: check the guard "
                        "(or refresh the memo) before reading — "
                        "invariant 7")


# ---------------------------------------------------------------------------
# RL008 — RNG streams must not escape their named-local discipline
# ---------------------------------------------------------------------------

_STREAMY = "stream"


def _is_stream_call(node: ast.AST) -> bool:
    """Syntactically a stream-producing expression: ``*.stream(...)`` or
    a ``RandomStreams(...)`` construction."""
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Attribute) and node.func.attr == "stream":
        return True
    func_name = (node.func.id if isinstance(node.func, ast.Name)
                 else node.func.attr if isinstance(node.func, ast.Attribute)
                 else "")
    return func_name == "RandomStreams"


def _tainted_param_names(fn: FunctionNode) -> Set[str]:
    names: Set[str] = set()
    args = fn.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        lowered = arg.arg.lower()
        if lowered == _STREAMY or lowered.endswith("_" + _STREAMY):
            names.add(arg.arg)
    return names


def _value_tainted(node: Optional[ast.AST],
                   tainted: FrozenSet[object]) -> bool:
    if node is None:
        return False
    if _is_stream_call(node):
        return True
    if isinstance(node, ast.Name) and node.id in tainted:
        return True
    return False


@register_rule
class StreamEscapeRule(Rule):
    """RL008: RNG streams stay in named locals / stream-named attributes.

    PR 3's bit-identical fault replay rests on the named-stream
    determinism contract: every ``random.Random`` lives in
    :class:`repro.engine.rng.RandomStreams` under a stable name, and
    consumers hold it only transiently.  A stream smuggled into module
    scope or an innocuously named attribute outside ``engine/`` +
    ``faults/`` becomes ambient randomness the replay machinery cannot
    see.  The rule tracks stream values through local assignments
    (may-analysis over the CFG) and flags: binding one at module scope,
    storing one in an attribute or attribute-rooted container whose name
    does not contain "stream", binding one to a ``global``, and
    returning one from a public function.
    """

    rule_id = "RL008"
    summary = ("RandomStreams streams must not escape to module scope or "
               "non-stream-named attributes outside engine/ and faults/")

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.in_dir("engine") and not ctx.in_dir("faults")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._check_module_scope(ctx)
        for fn in _functions_in_class(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_module_scope(self, ctx: FileContext) -> Iterator[Violation]:
        stmts: List[ast.stmt] = list(ctx.tree.body)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                stmts.extend(item for item in node.body
                             if isinstance(item, (ast.Assign, ast.AnnAssign)))
        for stmt in stmts:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is not None and _is_stream_call(value):
                yield self.violation(
                    ctx, stmt,
                    "RNG stream bound at module/class scope: streams are "
                    "per-run state owned by RandomStreams — create them "
                    "inside the consuming function")

    def _check_function(self, ctx: FileContext,
                        fn: FunctionNode) -> Iterator[Violation]:
        global_names: Set[str] = set()
        for stmt in fn.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    global_names.update(node.names)

        def transfer(node: CFGNode,
                     tainted: FrozenSet[object]) -> FrozenSet[object]:
            stmt = node.stmt
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                return tainted
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            is_stream = _value_tainted(stmt.value, tainted)
            for target in targets:
                if isinstance(target, ast.Name):
                    if is_stream:
                        tainted = tainted | {target.id}
                    else:
                        tainted = tainted - {target.id}
            return tainted

        entry = frozenset(_tainted_param_names(fn))
        cfg = build_cfg(fn)
        result = solve_forward(cfg, _LATTICE, transfer, entry)
        public = not fn.name.startswith("_")
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                continue
            tainted = result.entering(node)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                if not _value_tainted(stmt.value, tainted):
                    continue
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    yield from self._check_binding(ctx, fn, target,
                                                   global_names)
            elif isinstance(stmt, ast.Return) and public:
                if _value_tainted(stmt.value, tainted):
                    yield self.violation(
                        ctx, stmt,
                        f"public function {fn.name} returns an RNG stream: "
                        "streams escape the named-stream discipline through "
                        "public APIs — draw values here or make the helper "
                        "private")

    def _check_binding(self, ctx: FileContext, fn: FunctionNode,
                       target: ast.AST,
                       global_names: Set[str]) -> Iterator[Violation]:
        if isinstance(target, ast.Name) and target.id in global_names:
            yield self.violation(
                ctx, target,
                f"RNG stream assigned to global {target.id!r}: module-scope "
                "streams are invisible to the replay machinery — keep them "
                "local to the consuming function")
        elif isinstance(target, ast.Attribute):
            if _STREAMY not in target.attr.lower():
                yield self.violation(
                    ctx, target,
                    f"RNG stream stored in attribute {target.attr!r}: use a "
                    "name containing 'stream' so the determinism contract "
                    "stays auditable, or draw values instead of caching "
                    "the stream")
        elif isinstance(target, ast.Subscript):
            root = target.value
            while isinstance(root, ast.Subscript):
                root = root.value
            if (isinstance(root, ast.Attribute)
                    and _STREAMY not in root.attr.lower()):
                yield self.violation(
                    ctx, target,
                    f"RNG stream stored in container {root.attr!r}: use a "
                    "name containing 'stream' so the determinism contract "
                    "stays auditable")


# ---------------------------------------------------------------------------
# RL009–RL012 — interprocedural yield-point atomicity rules
# ---------------------------------------------------------------------------
#
# Every ``yield`` in the machine layer is a context switch of the
# discrete-event engine: the scheduler, the WTPG and every other node
# may run before the function resumes.  These rules consume the project
# call graph + summaries, so "a yield two calls deep" counts.  Calls the
# resolver cannot prove anything about are soundly silent — docs/lint.md
# records that limit.


def _node_is_yield_point(table: SummaryTable, fid: FunctionId,
                         stmt: ast.AST) -> bool:
    """A syntactic yield, or a resolved call into a may-yield function."""
    if stmt_has_yield(stmt):
        return True
    return any(table.call_may_yield(site)
               for site in table.node_calls(fid, stmt))


def _function_has_yield_point(table: SummaryTable,
                              decl: FunctionDecl) -> bool:
    if decl.has_yield:
        return True
    return any(table.call_may_yield(site)
               for site in table.graph.call_sites(decl.fid))


#: Attributes whose value is *shared mutable simulation state*: the
#: scheduler/WTPG handles and the cross-coroutine node fields.  A local
#: bound from one of these is a snapshot that a context switch can
#: invalidate.  Deliberately absent: immutable plumbing (``env``,
#: ``params``, ``history``) and one-shot event handles (``_wakeup``).
RL009_SHARED_ATTRS: FrozenSet[str] = frozenset({
    "scheduler", "wtpg", "active_transactions", "_running", "_doomed",
    "_grants", "_queue", "_current", "crashed", "busy_time",
    "objects_processed", "messages_sent", "_slow_factors",
}) | WATCHED_ATTRS

#: Reading one of these re-validates snapshots: the code is comparing or
#: re-syncing a generation counter, which is the sanctioned alternative
#: to a full re-read.
RL009_GUARD_ATTRS: FrozenSet[str] = frozenset({
    "generation", "_generation", "_structure_gen", "_closure_gen",
    "_cp_gen",
})

#: Calling one of these is likewise a freshness re-check.
RL009_GUARD_CALLS: FrozenSet[str] = frozenset({"stale"})


@dataclass(frozen=True)
class _SnapFact:
    """One local holding a snapshot of shared state: where it was bound,
    which shared attribute it came from, and whether a yield point has
    intervened since."""

    name: str
    line: int
    col: int
    attr: str
    stale: bool


def _shared_attrs_in(expr: ast.AST) -> List[str]:
    found: List[str] = []
    for node in ast.walk(expr):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in RL009_SHARED_ATTRS):
            found.append(node.attr)
    return found


def _target_names(target: ast.AST) -> List[str]:
    return [node.id for node in ast.walk(target)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Store)]


def _stmt_binds(stmt: ast.AST) -> List[Tuple[str, ast.AST]]:
    """``(local name, value expression)`` pairs this CFG node binds."""
    out: List[Tuple[str, ast.AST]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            out.extend((name, stmt.value)
                       for name in _target_names(target))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        out.extend((name, stmt.value)
                   for name in _target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        out.extend((name, stmt.iter)
                   for name in _target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                out.extend((name, item.context_expr)
                           for name in _target_names(item.optional_vars))
    # Walrus bindings live inside any header expression.
    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if (isinstance(node, ast.NamedExpr)
                    and isinstance(node.target, ast.Name)):
                out.append((node.target.id, node.value))
    return out


def _stmt_recertifies(stmt: ast.AST) -> bool:
    """Does this node perform a generation re-check (guard event)?"""
    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and node.attr in RL009_GUARD_ATTRS):
                return True
            if isinstance(node, ast.Call):
                name = method_name_of(node)
                if name is None and isinstance(node.func, ast.Name):
                    name = node.func.id
                if name in RL009_GUARD_CALLS:
                    return True
    return False


@register_rule
class StaleSnapshotRule(ProjectRule):
    """RL009: a shared-state snapshot must not be read across a yield.

    In ``machine/``, a local bound from scheduler/WTPG/node shared state
    (:data:`RL009_SHARED_ATTRS`) and read after a yield point — a
    syntactic ``yield``/``yield from`` or a resolved call into a
    may-yield function — is acting on a pre-switch snapshot: any other
    coroutine may have run in between.  The fix is to re-read the state,
    re-check a generation guard (:data:`RL009_GUARD_ATTRS`,
    :data:`RL009_GUARD_CALLS`), or rebind the local after the yield.
    One finding per snapshot (its textually first stale read), so a
    deliberate hold-across-yield needs exactly one justified
    suppression.  Calls into generator functions are treated as yield
    points even when the generator is only instantiated — conservative,
    but in this codebase generators are invoked via ``yield from`` or
    handed straight to ``env.process``.
    """

    rule_id = "RL009"
    summary = ("machine-layer locals snapshotting shared state must be "
               "re-read or generation-checked after a yield point")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir("machine")

    def check_project(self, ctx: FileContext,
                      project: Project) -> Iterator[Violation]:
        table = project.summaries
        for decl in project.functions_of(ctx.logical):
            if not _function_has_yield_point(table, decl):
                continue
            cfg = table.cfg(decl.fid)
            if cfg is not None:
                yield from self._check_function(ctx, decl, cfg, table)

    def _check_function(self, ctx: FileContext, decl: FunctionDecl,
                        cfg: CFG, table: SummaryTable,
                        ) -> Iterator[Violation]:
        fid = decl.fid

        def transfer(node: CFGNode,
                     facts: FrozenSet[object]) -> FrozenSet[object]:
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                return facts
            if _stmt_recertifies(stmt):
                facts = frozenset(replace(fact, stale=False)
                                  for fact in facts
                                  if isinstance(fact, _SnapFact))
            if _node_is_yield_point(table, fid, stmt):
                facts = frozenset(replace(fact, stale=True)
                                  for fact in facts
                                  if isinstance(fact, _SnapFact))
            binds = _stmt_binds(stmt)
            if binds:
                killed = {name for name, _ in binds}
                facts = frozenset(fact for fact in facts
                                  if isinstance(fact, _SnapFact)
                                  and fact.name not in killed)
                gens: Set[object] = set()
                for name, value in binds:
                    attrs = _shared_attrs_in(value)
                    if attrs:
                        gens.add(_SnapFact(name, stmt.lineno,
                                           stmt.col_offset,
                                           sorted(attrs)[0], False))
                facts = facts | frozenset(gens)
            return facts

        result = solve_forward(cfg, _LATTICE, transfer, frozenset())
        # One finding per snapshot: its textually first stale read.
        first_read: Dict[Tuple[str, int, int],
                         Tuple[int, int, _SnapFact]] = {}
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                continue
            facts = result.entering(node)
            if _stmt_recertifies(stmt):
                continue  # guards run before reads within one statement
            stale = {fact.name: fact for fact in facts
                     if isinstance(fact, _SnapFact) and fact.stale}
            if not stale:
                continue
            for root in header_exprs(stmt):
                for sub in ast.walk(root):
                    if (not isinstance(sub, ast.Name)
                            or not isinstance(sub.ctx, ast.Load)
                            or sub.id not in stale):
                        continue
                    fact = stale[sub.id]
                    key = (fact.name, fact.line, fact.col)
                    site = (sub.lineno, sub.col_offset, fact)
                    if key not in first_read or site < first_read[key]:
                        first_read[key] = site
        for line, col, fact in sorted(first_read.values()):
            yield Violation(
                self.rule_id, ctx.display, line, col,
                f"local {fact.name!r} in {decl.name} snapshots shared "
                f"state ({fact.attr}, bound at line {fact.line}) and is "
                "read here after a yield point: a context switch may "
                "have invalidated it — re-read the state or re-check a "
                "generation guard before acting on it")


@register_rule
class UnbumpedAcrossYieldRule(ProjectRule):
    """RL010: watched-state mutation must be bump-closed before a yield.

    The interprocedural lift of RL002/invariant 7: in ``core/`` and
    ``machine/``, a function containing yield points must not let a
    mutation of the watched graph containers
    (:data:`~repro.lint.rules.WATCHED_ATTRS`) — performed directly or
    through a call whose summary says *may-leave-unbumped* — reach a
    yield point before a generation bump.  At the switch, every other
    coroutine sees generation counters that still vouch for the
    pre-mutation structure.  Reported at the mutation (or call) site;
    calls to *must-bump* callees close the window like a direct bump.
    """

    rule_id = "RL010"
    summary = ("watched-container mutations (direct or via calls) must "
               "be generation-bumped before the next yield point")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir("core") or ctx.in_dir("machine")

    def check_project(self, ctx: FileContext,
                      project: Project) -> Iterator[Violation]:
        table = project.summaries
        for decl in project.functions_of(ctx.logical):
            if not _function_has_yield_point(table, decl):
                continue
            cfg = table.cfg(decl.fid)
            if cfg is not None:
                yield from self._check_function(ctx, decl, cfg, table)

    def _check_function(self, ctx: FileContext, decl: FunctionDecl,
                        cfg: CFG, table: SummaryTable,
                        ) -> Iterator[Violation]:
        fid = decl.fid

        def open_mutations(stmt: ast.AST) -> List[Tuple[int, int, str]]:
            gens = list(watched_mutations(stmt))
            for site in table.node_calls(fid, stmt):
                if (site.callee is not None
                        and table.summary(site.callee).may_leave_unbumped):
                    gens.append((site.line, site.col,
                                 f"{site.callee[1]}()"))
            return gens

        def transfer(node: CFGNode,
                     facts: FrozenSet[object]) -> FrozenSet[object]:
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                return facts
            if table.bumps_here(fid, stmt):
                facts = frozenset()
            gens = open_mutations(stmt)
            return facts | frozenset(gens) if gens else facts

        result = solve_forward(cfg, _LATTICE, transfer, frozenset())
        reported: Set[Tuple[int, int, str]] = set()
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                continue
            if not _node_is_yield_point(table, fid, stmt):
                continue
            facts = result.entering(node)
            if table.bumps_here(fid, stmt):
                continue  # bump-and-yield in one statement: closed
            for fact in sorted(fact for fact in facts
                               if isinstance(fact, tuple)):
                line, col, what = fact
                if (line, col, what) in reported:
                    continue
                reported.add((line, col, what))
                yield Violation(
                    self.rule_id, ctx.display, line, col,
                    f"mutation of watched state ({what}) in {decl.name} "
                    f"reaches the yield point at line {stmt.lineno} "
                    "without a generation bump: other coroutines resume "
                    "against counters that still vouch for the old "
                    "structure — bump (or call an invalidation helper) "
                    "before yielding")


@register_rule
class InterprocStreamEscapeRule(ProjectRule):
    """RL011: RNG-stream escape tracked across call boundaries.

    The interprocedural supersession of RL008 (which remains the
    intraprocedural fallback): using the function summaries, a call into
    a *returns-stream* function taints its result, and a tainted value
    handed to a parameter the callee's summary marks as *escaping*
    (stored into a non-stream attribute, global, or passed on to another
    escaping parameter) is reported at the call site.  To avoid
    double-reporting, sinks RL008 already sees — stores and returns of
    locally produced streams — are flagged here only when the taint
    arrived through a call; argument-escape findings are new and
    reported for every provenance.
    """

    rule_id = "RL011"
    summary = ("streams obtained or forwarded through calls must not "
               "escape to non-stream attributes, globals or public "
               "returns")

    _INTRA = "<intra>"
    _INTER = "<inter>"

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.in_dir("engine") and not ctx.in_dir("faults")

    def check_project(self, ctx: FileContext,
                      project: Project) -> Iterator[Violation]:
        yield from self._check_module_scope(ctx, project)
        table = project.summaries
        for decl in project.functions_of(ctx.logical):
            cfg = table.cfg(decl.fid)
            if cfg is not None:
                yield from self._check_function(ctx, decl, cfg, table)

    def _check_module_scope(self, ctx: FileContext,
                            project: Project) -> Iterator[Violation]:
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)):
                callee = project.callgraph.resolve_bare_name(
                    ctx.logical, value.func.id)
                if (callee is not None
                        and project.summary(callee).returns_stream):
                    yield self.violation(
                        ctx, stmt,
                        f"module-scope binding of a stream returned by "
                        f"{callee[1]}: streams are per-run state owned "
                        "by RandomStreams — create them inside the "
                        "consuming function")

    def _check_function(self, ctx: FileContext, decl: FunctionDecl,
                        cfg: CFG, table: SummaryTable,
                        ) -> Iterator[Violation]:
        fid = decl.fid
        global_names: Set[str] = set()
        for stmt in decl.node.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    global_names.update(node.names)

        def local_marks(name: str,
                        facts: FrozenSet[object]) -> Set[str]:
            return {fact[1] for fact in facts
                    if isinstance(fact, tuple) and fact[0] == name}

        def value_marks(expr: Optional[ast.AST],
                        facts: FrozenSet[object]) -> Set[str]:
            if expr is None:
                return set()
            if _is_stream_call(expr):
                return {self._INTRA}
            if isinstance(expr, ast.Name):
                return local_marks(expr.id, facts)
            if isinstance(expr, ast.Call):
                for site in table.node_calls(fid, expr):
                    if (site.call is expr and site.callee is not None
                            and table.summary(site.callee).returns_stream):
                        return {self._INTER}
            return set()

        def transfer(node: CFGNode,
                     facts: FrozenSet[object]) -> FrozenSet[object]:
            stmt = node.stmt
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                return facts
            marks = value_marks(stmt.value, facts)
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    facts = frozenset(
                        fact for fact in facts
                        if not (isinstance(fact, tuple)
                                and fact[0] == target.id))
                    facts = facts | frozenset(
                        (target.id, mark) for mark in marks)
            return facts

        entry = frozenset((name, self._INTRA)
                          for name in _tainted_param_names(decl.node))
        result = solve_forward(cfg, _LATTICE, transfer, entry)
        public = not decl.name.startswith("_")
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                continue
            facts = result.entering(node)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                marks = value_marks(stmt.value, facts)
                if self._INTER in marks:
                    targets = (stmt.targets if isinstance(stmt, ast.Assign)
                               else [stmt.target])
                    for target in targets:
                        yield from self._check_binding(ctx, decl, target,
                                                       global_names)
            elif isinstance(stmt, ast.Return) and public:
                if self._INTER in value_marks(stmt.value, facts):
                    yield self.violation(
                        ctx, stmt,
                        f"public function {decl.name} returns a stream "
                        "obtained through a call: streams escape the "
                        "named-stream discipline through public APIs — "
                        "draw values here or make the helper private")
            # Tainted argument to a callee with escaping parameters —
            # new ground RL008 cannot see, reported for any provenance.
            for site in table.node_calls(fid, stmt):
                if site.callee is None:
                    continue
                callee_summary = table.summary(site.callee)
                if not callee_summary.escaping_params:
                    continue
                callee_decl = table.graph.declaration(site.callee)
                if callee_decl is None:
                    continue
                for param, arg in bind_args(callee_decl, site.call):
                    if param not in callee_summary.escaping_params:
                        continue
                    if value_marks(arg, facts):
                        yield Violation(
                            self.rule_id, ctx.display, site.line,
                            site.col,
                            f"RNG stream passed to parameter {param!r} "
                            f"of {site.callee[1]}, which lets it escape "
                            "(non-stream attribute store or onward "
                            "hand-off): pass drawn values instead, or "
                            "store the stream under a 'stream' name")

    def _check_binding(self, ctx: FileContext, decl: FunctionDecl,
                       target: ast.AST,
                       global_names: Set[str]) -> Iterator[Violation]:
        if isinstance(target, ast.Name) and target.id in global_names:
            yield self.violation(
                ctx, target,
                f"stream obtained through a call assigned to global "
                f"{target.id!r}: module-scope streams are invisible to "
                "the replay machinery — keep them local")
        elif isinstance(target, ast.Attribute):
            if _STREAMY not in target.attr.lower():
                yield self.violation(
                    ctx, target,
                    f"stream obtained through a call stored in attribute "
                    f"{target.attr!r}: use a name containing 'stream' so "
                    "the determinism contract stays auditable, or draw "
                    "values instead of caching the stream")
        elif isinstance(target, ast.Subscript):
            root = target.value
            while isinstance(root, ast.Subscript):
                root = root.value
            if (isinstance(root, ast.Attribute)
                    and _STREAMY not in root.attr.lower()):
                yield self.violation(
                    ctx, target,
                    f"stream obtained through a call stored in container "
                    f"{root.attr!r}: use a name containing 'stream' so "
                    "the determinism contract stays auditable")


@register_rule
class SynchronousSchedulerRule(ProjectRule):
    """RL012: scheduler code never reaches a cooperative suspension.

    Every scheduler entry point (``admit``, ``request_lock``,
    ``abort_transaction``, …) runs inside one atomic step of the control
    node's event loop — the paper's admission protocol assumes the WTPG
    test-and-insert is indivisible.  Today ``core/schedulers/`` contains
    zero yields by convention; this rule makes it a contract: no
    function there may contain a ``yield`` or call (transitively,
    through the resolved call graph) a may-yield function.  Calls the
    resolver must treat as unknown are silent — the rule's teeth come
    from the project graph, not from guessing.
    """

    rule_id = "RL012"
    summary = ("core/schedulers/ must stay synchronous: no yield and no "
               "resolved call path into a may-yield function")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir("core/schedulers")

    def check_project(self, ctx: FileContext,
                      project: Project) -> Iterator[Violation]:
        table = project.summaries
        for decl in project.functions_of(ctx.logical):
            if decl.has_yield:
                node = self._first_yield(decl)
                yield Violation(
                    self.rule_id, ctx.display,
                    getattr(node, "lineno", decl.node.lineno),
                    getattr(node, "col_offset", decl.node.col_offset),
                    f"scheduler function {decl.name} contains a yield: "
                    "schedulers run inside one atomic step of the "
                    "control node — suspension here breaks admission "
                    "atomicity; hoist the wait into the machine layer")
            for site in project.callgraph.call_sites(decl.fid):
                if (site.callee is not None
                        and table.summary(site.callee).may_yield):
                    yield Violation(
                        self.rule_id, ctx.display, site.line, site.col,
                        f"call from scheduler function {decl.name} "
                        f"reaches may-yield {site.callee[1]}: schedulers "
                        "must stay synchronous — move the cooperative "
                        "wait out of core/schedulers/")

    @staticmethod
    def _first_yield(decl: FunctionDecl) -> ast.AST:
        for node in ast.walk(decl.node):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
        return decl.node
