"""Bottom-up function summaries over the project call graph.

Each function gets a :class:`FunctionSummary` of the facts the
interprocedural rules consume:

``may_yield``
    The body contains a ``yield``/``yield from``, or calls (through the
    resolved call graph) a function that may yield.  This is what makes
    a call a *context switch* for RL009/RL010 and what RL012 forbids
    reaching from ``core/schedulers/``.

``mutates_watched``
    The watched graph-defining containers of RL002
    (:data:`repro.lint.rules.WATCHED_ATTRS`) this function may mutate,
    directly or through a callee.

``may_leave_unbumped``
    Some path through the function performs a watched mutation and
    reaches a ``return``/the exit without a generation bump — the
    interprocedural lift of RL002's per-method fact, used by RL010 to
    treat such a *call* as an open mutation at the call site.

``must_bump``
    Every path from entry to the normal exit passes a generation bump
    (a direct bump statement, an invalidation helper, or a call to a
    ``must_bump`` callee) — the kill event of RL010's analysis.

``returns_stream`` / ``escaping_params``
    The RNG-taint lift of RL008: whether the function may return a
    live ``RandomStreams`` stream, and which of its parameters — if
    bound to a stream by the caller — end up stored in a non-stream
    attribute/global or handed on to another escaping parameter.
    RL011 turns these into call-site findings.

All summaries are computed as one whole-program fixpoint: per-function
facts are (re)derived from a CFG dataflow pass parameterised by the
current callee summaries, and the pass repeats until nothing changes.
Every component is monotone (booleans only flip ``False -> True``,
sets only grow), so mutual recursion converges; a hard round cap turns
an accidental non-monotone edit into a loud :class:`FixpointError`.
Unresolved calls contribute nothing — the summaries describe only what
the resolved project graph can prove, and the rules document that
limit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.callgraph import (CallGraph, CallSite, FunctionDecl,
                                  FunctionId)
from repro.lint.cfg import CFG, CFGNode, build_cfg, header_exprs
from repro.lint.dataflow import FixpointError, UnionLattice, solve_forward
from repro.lint.rules import BUMP_ATTRS, INVALIDATION_HELPERS, WATCHED_ATTRS

_LATTICE = UnionLattice()

#: Parameter names that arrive already carrying RNG-stream taint.
_STREAM_TOKEN = "stream"


@dataclass(frozen=True)
class FunctionSummary:
    """The interprocedural facts of one function (see module docstring)."""

    may_yield: bool = False
    mutates_watched: FrozenSet[str] = frozenset()
    may_leave_unbumped: bool = False
    must_bump: bool = False
    returns_stream: bool = False
    escaping_params: FrozenSet[str] = frozenset()


def _stream_param_names(fn: ast.AST) -> Set[str]:
    names: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is None:
        return names
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        lowered = arg.arg.lower()
        if lowered == _STREAM_TOKEN or lowered.endswith("_" + _STREAM_TOKEN):
            names.add(arg.arg)
    return names


def _param_names(fn: ast.AST) -> List[str]:
    args = getattr(fn, "args", None)
    if args is None:
        return []
    return [arg.arg for arg in (list(args.posonlyargs) + list(args.args)
                                + list(args.kwonlyargs))]


# ---------------------------------------------------------------------------
# Watched-state mutations and generation bumps, receiver-generalised
# ---------------------------------------------------------------------------
#
# RL002's helpers only recognise ``self.X`` roots (they police the WTPG
# class itself).  The interprocedural rules watch the same containers
# through *any* receiver — ``wtpg._pairs[k] = v`` in a machine-layer
# helper is the same incoherence hazard.

_MUTATOR_METHODS = frozenset({
    "add", "discard", "remove", "pop", "popitem", "clear", "update",
    "setdefault", "append", "extend", "insert",
})


def _watched_attr_of(node: ast.AST) -> Optional[str]:
    """The watched attr a target chain is rooted at, any receiver."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in WATCHED_ATTRS:
        return node.attr
    return None


def watched_mutations(stmt: ast.AST) -> List[Tuple[int, int, str]]:
    """``(line, col, attr)`` of watched-container mutations in one node."""
    found: List[Tuple[int, int, str]] = []
    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = _watched_attr_of(target)
                    if attr is not None:
                        found.append((node.lineno, node.col_offset, attr))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _watched_attr_of(target)
                    if attr is not None:
                        found.append((node.lineno, node.col_offset, attr))
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_METHODS):
                    attr = _watched_attr_of(func.value)
                    if attr is not None:
                        found.append((node.lineno, node.col_offset, attr))
    return found


def is_bump_stmt(stmt: ast.AST) -> bool:
    """A generation bump through any receiver, incl. invalidation helpers."""
    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and target.attr in BUMP_ATTRS):
                        return True
            elif isinstance(node, ast.Call):
                func = node.func
                name = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else "")
                if name in INVALIDATION_HELPERS:
                    return True
    return False


# ---------------------------------------------------------------------------
# Yield points
# ---------------------------------------------------------------------------

def stmt_has_yield(stmt: ast.AST) -> bool:
    """Does this CFG node's own header contain a yield expression?"""
    stack: List[ast.AST] = list(header_exprs(stmt))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # a nested def's yields are not this node's
        stack.extend(ast.iter_child_nodes(node))
    return False


def _is_stream_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Attribute) and node.func.attr == "stream":
        return True
    func_name = (node.func.id if isinstance(node.func, ast.Name)
                 else node.func.attr if isinstance(node.func, ast.Attribute)
                 else "")
    return func_name == "RandomStreams"


# ---------------------------------------------------------------------------
# The whole-program fixpoint
# ---------------------------------------------------------------------------

class SummaryTable:
    """Summaries for every function of a call graph, plus shared CFGs."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[FunctionId, FunctionSummary] = {}
        #: CFGs are rebuilt nowhere else — the rules reuse these.
        self._cfgs: Dict[FunctionId, CFG] = {}
        self._site_index: Dict[FunctionId, Dict[int, CallSite]] = {}
        self._compute()

    def summary(self, fid: FunctionId) -> FunctionSummary:
        return self.summaries.get(fid, FunctionSummary())

    def cfg(self, fid: FunctionId) -> Optional[CFG]:
        return self._cfgs.get(fid)

    def call_may_yield(self, site: CallSite) -> bool:
        """Does this (resolved) call target a may-yield function?"""
        if site.callee is None:
            return False
        return self.summary(site.callee).may_yield

    # -- computation -------------------------------------------------------

    def _compute(self) -> None:
        graph = self.graph
        for fid, decl in graph.functions.items():
            self._cfgs[fid] = build_cfg(decl.node)
            self.summaries[fid] = FunctionSummary(
                may_yield=decl.has_yield)
        # Reverse edges: when a callee's summary changes, only its
        # callers can change in response.
        callers: Dict[FunctionId, Set[FunctionId]] = {}
        for fid in graph.functions:
            for callee in graph.callees(fid):
                callers.setdefault(callee, set()).add(fid)
        # Initial pass in declaration order, then a worklist to a
        # fixpoint.  Every summary component is monotone (booleans flip
        # only False->True, sets only grow), so mutual recursion
        # converges; the cap catches a non-monotone edit loudly.
        worklist = list(graph.functions)
        queued = set(worklist)
        budget = max(64, 16 * len(graph.functions))
        while worklist:
            budget -= 1
            if budget < 0:
                raise FixpointError(
                    "function summaries did not converge: a summary "
                    "component is not monotone")
            fid = worklist.pop(0)
            queued.discard(fid)
            decl = graph.functions[fid]
            updated = self._summarise(fid, decl)
            if updated != self.summaries[fid]:
                self.summaries[fid] = updated
                for caller in sorted(callers.get(fid, ())):
                    if caller not in queued:
                        worklist.append(caller)
                        queued.add(caller)

    def _summarise(self, fid: FunctionId,
                   decl: FunctionDecl) -> FunctionSummary:
        graph = self.graph
        sites = graph.call_sites(fid)
        may_yield = decl.has_yield or any(
            self.summary(site.callee).may_yield
            for site in sites if site.callee is not None)

        mutates: Set[str] = set()
        for stmt in ast.walk(decl.node):
            if isinstance(stmt, ast.stmt):
                for _, _, attr in watched_mutations(stmt):
                    mutates.add(attr)
        for site in sites:
            if site.callee is not None:
                mutates.update(self.summary(site.callee).mutates_watched)

        cfg = self._cfgs[fid]
        must_bump = self._must_bump(fid, decl, cfg)
        may_leave_unbumped = (bool(mutates)
                              and self._may_leave_unbumped(fid, decl, cfg))
        returns_stream, escaping = self._stream_facts(fid, decl, cfg)
        return FunctionSummary(
            may_yield=may_yield,
            mutates_watched=frozenset(mutates),
            may_leave_unbumped=may_leave_unbumped,
            must_bump=must_bump,
            returns_stream=returns_stream,
            escaping_params=escaping,
        )

    # Calls at one CFG node, resolved against the graph.  CallSites are
    # matched by identity of the ast.Call object.
    def _sites_by_call(self, fid: FunctionId) -> Dict[int, CallSite]:
        cached = self._site_index.get(fid)
        if cached is None:
            cached = {id(site.call): site
                      for site in self.graph.call_sites(fid)}
            self._site_index[fid] = cached
        return cached

    def node_calls(self, fid: FunctionId,
                    stmt: ast.AST) -> List[CallSite]:
        by_id = self._sites_by_call(fid)
        out: List[CallSite] = []
        for root in header_exprs(stmt):
            for node in ast.walk(root):
                if isinstance(node, ast.Call) and id(node) in by_id:
                    out.append(by_id[id(node)])
        return out

    def bumps_here(self, fid: FunctionId, stmt: ast.AST) -> bool:
        if is_bump_stmt(stmt):
            return True
        for site in self.node_calls(fid, stmt):
            if (site.callee is not None
                    and self.summary(site.callee).must_bump):
                return True
        return False

    def _must_bump(self, fid: FunctionId, decl: FunctionDecl,
                   cfg: CFG) -> bool:
        """True iff every entry->exit path passes a bump.

        Implemented as a may-analysis of the *absence* of a bump: seed
        a token at entry, kill it at bump statements; if the token can
        reach the normal exit (or a return), some path never bumped.
        """
        token = frozenset({"no-bump-yet"})

        def transfer(node: CFGNode,
                     value: FrozenSet[object]) -> FrozenSet[object]:
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                return value
            if self.bumps_here(fid, stmt):
                return frozenset()
            return value

        result = solve_forward(cfg, _LATTICE, transfer, token)
        if result.entering(cfg.exit):
            return False
        for node in cfg.stmt_nodes():
            if (isinstance(node.stmt, ast.Return)
                    and result.entering(node)):
                return False
        return True

    def _may_leave_unbumped(self, fid: FunctionId, decl: FunctionDecl,
                            cfg: CFG) -> bool:
        """Some path mutates watched state and exits without a bump."""

        def transfer(node: CFGNode,
                     value: FrozenSet[object]) -> FrozenSet[object]:
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                return value
            if self.bumps_here(fid, stmt):
                value = frozenset()
            gens: List[object] = [
                (line, col, attr)
                for line, col, attr in watched_mutations(stmt)]
            for site in self.node_calls(fid, stmt):
                if (site.callee is not None
                        and self.summary(site.callee).may_leave_unbumped):
                    gens.append((site.line, site.col, "<call>"))
            return value | frozenset(gens) if gens else value

        result = solve_forward(cfg, _LATTICE, transfer, frozenset())
        if result.entering(cfg.exit):
            return True
        return any(isinstance(node.stmt, ast.Return)
                   and result.entering(node)
                   for node in cfg.stmt_nodes())

    def _stream_facts(self, fid: FunctionId, decl: FunctionDecl,
                      cfg: CFG) -> Tuple[bool, FrozenSet[str]]:
        """(returns a stream?, params whose stream taint escapes).

        One taint pass per function: stream-producing expressions taint
        with the anonymous mark, parameters taint with their own name,
        and both propagate through local assignments and through calls
        to ``returns_stream`` callees.  A sink (non-stream attribute or
        global store, argument position feeding a callee's escaping
        parameter) reached by a parameter's mark puts that parameter in
        ``escaping_params``; a return reached by any mark sets
        ``returns_stream``.
        """
        params = _param_names(decl.node)
        param_set = frozenset(params)
        anon = "<stream>"

        # Taint facts are ``(local name, mark)`` pairs; marks are the
        # anonymous stream mark or an originating parameter name.
        def local_marks(name: str,
                        tainted: FrozenSet[object]) -> FrozenSet[object]:
            out: Set[object] = set()
            for fact in tainted:
                if isinstance(fact, tuple) and fact[0] == name:
                    out.add(fact[1])
            return frozenset(out)

        sites_by_call = self._sites_by_call(fid)

        def value_marks(expr: Optional[ast.AST],
                        tainted: FrozenSet[object]) -> FrozenSet[object]:
            if expr is None:
                return frozenset()
            if _is_stream_call(expr):
                return frozenset({anon})
            if isinstance(expr, ast.Name):
                return local_marks(expr.id, tainted)
            if isinstance(expr, ast.Call):
                site = sites_by_call.get(id(expr))
                if (site is not None and site.callee is not None
                        and self.summary(site.callee).returns_stream):
                    return frozenset({anon})
            return frozenset()

        def transfer(node: CFGNode,
                     tainted: FrozenSet[object]) -> FrozenSet[object]:
            stmt = node.stmt
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                return tainted
            marks = value_marks(stmt.value, tainted)
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    tainted = frozenset(
                        fact for fact in tainted
                        if not (isinstance(fact, tuple)
                                and fact[0] == target.id))
                    tainted = tainted | frozenset(
                        (target.id, mark) for mark in marks)
            return tainted

        stream_params = _stream_param_names(decl.node)
        entry = frozenset((name, name) for name in stream_params)
        result = solve_forward(cfg, _LATTICE, transfer, entry)

        returns_stream = False
        escaping: Set[str] = set()
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                continue
            tainted = result.entering(node)
            if isinstance(stmt, ast.Return):
                if value_marks(stmt.value, tainted):
                    returns_stream = True
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                marks = value_marks(stmt.value, tainted)
                if marks:
                    targets = (stmt.targets if isinstance(stmt, ast.Assign)
                               else [stmt.target])
                    for target in targets:
                        if self._is_escape_target(target):
                            escaping.update(m for m in marks
                                            if isinstance(m, str)
                                            and m in param_set)
            # Tainted argument handed to a callee's escaping parameter.
            for site in self.node_calls(fid, stmt):
                if site.callee is None:
                    continue
                callee_summary = self.summary(site.callee)
                if not callee_summary.escaping_params:
                    continue
                callee_decl = self.graph.declaration(site.callee)
                if callee_decl is None:
                    continue
                for param, arg in bind_args(callee_decl, site.call):
                    if param not in callee_summary.escaping_params:
                        continue
                    marks = value_marks(arg, tainted)
                    escaping.update(m for m in marks
                                    if isinstance(m, str)
                                    and m in param_set)
        return returns_stream, frozenset(escaping)

    @staticmethod
    def _is_escape_target(target: ast.AST) -> bool:
        """A store that takes a stream out of the local discipline."""
        if isinstance(target, ast.Attribute):
            return _STREAM_TOKEN not in target.attr.lower()
        if isinstance(target, ast.Subscript):
            root = target.value
            while isinstance(root, ast.Subscript):
                root = root.value
            if isinstance(root, ast.Attribute):
                return _STREAM_TOKEN not in root.attr.lower()
        return False


def bind_args(decl: FunctionDecl,
               call: ast.Call) -> List[Tuple[str, ast.AST]]:
    """Match call arguments to callee parameter names (best effort).

    Positional arguments map in order (skipping ``self``/``cls`` for
    methods), keywords by name; ``*args``/``**kwargs`` and starred
    arguments are ignored — the summaries only need the plain calls the
    codebase actually uses.
    """
    params = _param_names(decl.node)
    if decl.class_name is not None and params and params[0] in ("self",
                                                                "cls"):
        params = params[1:]
    out: List[Tuple[str, ast.AST]] = []
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            out.append((params[index], arg))
    for keyword in call.keywords:
        if keyword.arg is not None:
            out.append((keyword.arg, keyword.value))
    return out


def compute_summaries(graph: CallGraph) -> SummaryTable:
    """Build the summary table for one call graph."""
    return SummaryTable(graph)
