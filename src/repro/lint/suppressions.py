"""Suppression comments: ``# repro-lint: disable=RL001 -- justification``.

A suppression silences the named rule(s) on its own line only.  The
justification after ``--`` is mandatory: an unjustified suppression is
an RL000 violation, so every escape hatch in the tree documents *why*
the contract does not apply there.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.lint.model import Violation

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]*?)"
    r"(?:\s*--\s*(?P<why>.*?))?\s*$")


@dataclass(frozen=True)
class Suppression:
    """One parsed directive: which rules it silences and its rationale."""

    line: int
    rule_ids: FrozenSet[str]
    justification: str

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """All suppression directives of a file, keyed by 1-based line."""
    out: Dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rule_ids = frozenset(
            part.strip().upper()
            for part in match.group("rules").split(",") if part.strip())
        out[lineno] = Suppression(lineno, rule_ids, match.group("why") or "")
    return out


def apply_suppressions(
        violations: List[Violation],
        table: Dict[int, Suppression]) -> Tuple[List[Violation], List[Suppression]]:
    """Drop suppressed violations; also return the directives actually used."""
    kept: List[Violation] = []
    used: List[Suppression] = []
    for violation in violations:
        directive = table.get(violation.line)
        if directive is not None and violation.rule_id in directive.rule_ids:
            if directive not in used:
                used.append(directive)
            continue
        kept.append(violation)
    return kept, used
