"""Data model of the lint pass: violations, file context, rule registry.

A :class:`Rule` sees one parsed file at a time through a
:class:`FileContext` and yields :class:`Violation` objects.  Rules decide
their own applicability from the file's *logical path* (its path inside
the ``repro`` package), so fixture files in the test suite can
impersonate any real module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.lint.project import Project

#: Attribute stashed on every AST node pointing at its parent node, so
#: rules can look outward (e.g. "is this comprehension fed to sorted()?").
PARENT_ATTR = "_repro_lint_parent"


@dataclass(frozen=True)
class Violation:
    """One finding of one rule at one source location."""

    rule_id: str
    file: str          # path as given on the command line (for humans)
    line: int          # 1-based
    col: int           # 0-based, as in the ast module
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """One source file, parsed and located inside the package.

    ``logical`` is the package-relative posix path (``repro/core/wtpg.py``)
    used for rule applicability and allowlists; ``display`` is the path
    reported to the user.  They differ for test fixtures, which pass an
    explicit ``logical`` to impersonate a production module.
    """

    display: str
    logical: str
    source: str
    tree: ast.Module = field(repr=False)

    def __post_init__(self) -> None:
        # Parent links let rules inspect enclosing nodes without keeping
        # their own stacks.
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                setattr(child, PARENT_ATTR, parent)

    def parent(self, node: ast.AST) -> ast.AST:
        return getattr(node, PARENT_ATTR, self.tree)

    def in_dir(self, package_dir: str) -> bool:
        """True if the file lives under ``repro/<package_dir>/``."""
        return self.logical.startswith(f"repro/{package_dir}/")

    def is_module(self, logical_path: str) -> bool:
        return self.logical == logical_path


class Rule:
    """Base class for lint rules; subclasses register themselves."""

    #: Stable identifier, e.g. ``"RL001"``; used in output and suppressions.
    rule_id: str = ""
    #: One-line summary shown by ``--list-rules``.
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(self.rule_id, ctx.display,
                         getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0), message)


class ProjectRule(Rule):
    """A rule that needs whole-program context.

    The engine parses every file of the run first, builds one
    :class:`repro.lint.project.Project` (call graph + function
    summaries), and calls :meth:`check_project` once per file with it.
    Single-file entry points get a one-file project, so fixtures work
    unchanged.  ``check`` exists only to satisfy the base API.
    """

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        empty: List[Violation] = []
        return iter(empty)

    def check_project(self, ctx: FileContext,
                      project: "Project") -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: List[Type[Rule]] = []


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if any(existing.rule_id == cls.rule_id for existing in _REGISTRY):
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [cls() for cls in sorted(_REGISTRY, key=lambda c: c.rule_id)]


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, or "" if not a plain chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
