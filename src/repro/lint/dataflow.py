"""Worklist fixpoint solver and resource-fact layer for the lint CFGs.

The solver is deliberately tiny and generic: a forward dataflow problem
is a :class:`Lattice` (bottom + join), a transfer function mapping
``(node, in_value) -> out_value``, and an entry value.  Rules bring
their own lattices; this module ships the two everyone needs —
:class:`UnionLattice` (may-analysis over ``frozenset`` facts) and
:class:`IntersectionLattice` (must-analysis) — plus a small "resource"
facts layer that turns method-call patterns into gen/kill sets, which is
how RL006 (lock lifecycle) and the migrated RL002 (generation bumps)
describe their problems.

Termination: the solver requires a monotone transfer function over a
finite-height lattice (true for both shipped lattices: facts are drawn
from the finitely many acquire sites of one function).  A hard iteration
cap turns an accidental non-monotone transfer into a loud
:class:`FixpointError` instead of a hang.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, Generic, Iterator, List,
                    Optional, Sequence, Tuple, TypeVar)

from repro.lint.cfg import CFG, CFGNode, header_exprs

T = TypeVar("T")


class FixpointError(RuntimeError):
    """The solver failed to converge — the transfer is not monotone."""


class Lattice(Generic[T]):
    """A join-semilattice: ``bottom`` plus a commutative ``join``."""

    def bottom(self) -> T:
        raise NotImplementedError

    def join(self, left: T, right: T) -> T:
        raise NotImplementedError


class UnionLattice(Lattice[FrozenSet[object]]):
    """May-analysis: a fact holds if it holds on *some* path."""

    def bottom(self) -> FrozenSet[object]:
        return frozenset()

    def join(self, left: FrozenSet[object],
             right: FrozenSet[object]) -> FrozenSet[object]:
        return left | right


#: Sentinel for the intersection lattice's bottom: "no path reaches this
#: point yet", which must be the identity of intersection.
TOP = "<top>"


class IntersectionLattice(Lattice[object]):
    """Must-analysis: a fact holds only if it holds on *every* path."""

    def bottom(self) -> object:
        return TOP

    def join(self, left: object, right: object) -> object:
        if left is TOP:
            return right
        if right is TOP:
            return left
        assert isinstance(left, frozenset) and isinstance(right, frozenset)
        return left & right


Transfer = Callable[[CFGNode, T], T]


@dataclass
class DataflowResult(Generic[T]):
    """Per-node in/out values of a converged forward analysis."""

    cfg: CFG
    values_in: Dict[int, T]
    values_out: Dict[int, T]

    def entering(self, node: CFGNode) -> T:
        return self.values_in[node.index]

    def leaving(self, node: CFGNode) -> T:
        return self.values_out[node.index]


def solve_forward(cfg: CFG, lattice: Lattice[T], transfer: Transfer[T],
                  entry_value: T,
                  max_passes: int = 100) -> DataflowResult[T]:
    """Run a forward worklist fixpoint over the CFG.

    ``max_passes`` bounds how often any single node may be reprocessed;
    with a monotone transfer the bound is never reached (the lattice
    height of one function's fact space is tiny).
    """
    values_in: Dict[int, T] = {n.index: lattice.bottom() for n in cfg.nodes}
    values_out: Dict[int, T] = {n.index: lattice.bottom() for n in cfg.nodes}
    values_in[cfg.entry.index] = entry_value
    values_out[cfg.entry.index] = transfer(cfg.entry, entry_value)

    worklist = deque(node.index for node in cfg.nodes)
    queued = set(worklist)
    visits: Dict[int, int] = {}
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        node = cfg.nodes[index]
        visits[index] = visits.get(index, 0) + 1
        if visits[index] > max_passes:
            raise FixpointError(
                f"dataflow did not converge at node {node.base_label()} "
                f"of {cfg.name!r}: non-monotone transfer function?")
        if node is cfg.entry:
            in_value = entry_value
        else:
            in_value = lattice.bottom()
            for pred in node.preds:
                in_value = lattice.join(in_value, values_out[pred])
        out_value = transfer(node, in_value)
        values_in[index] = in_value
        if out_value != values_out[index]:
            values_out[index] = out_value
            for succ in node.succs:
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return DataflowResult(cfg, values_in, values_out)


# ---------------------------------------------------------------------------
# Resource facts: gen/kill from method-call patterns
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ResourceSpec:
    """One protocol resource: what opens it and what closes it.

    Both sets are *method names* matched against attribute calls
    (``anything.<name>(...)``).  Receiver identity is deliberately not
    tracked — in this codebase each function works with one lock table /
    one WTPG, so a release of the right *kind* closes every open
    resource of that kind.  The limitation is documented in
    docs/lint.md.
    """

    name: str
    acquire: FrozenSet[str]
    release: FrozenSet[str]


@dataclass(frozen=True)
class ResourceFact:
    """One open resource, keyed by its acquire site."""

    spec: str
    line: int
    col: int
    call: str  # the method name that opened it, for messages


def calls_of(stmt: ast.AST) -> Iterator[ast.Call]:
    """Every call this statement's own CFG node evaluates.

    Restricted to :func:`~repro.lint.cfg.header_exprs`: a compound
    statement's node contributes only its header calls — the nested body
    is covered by the body statements' own nodes.
    """
    for root in header_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                yield node


def method_name_of(call: ast.Call) -> Optional[str]:
    """``name`` for an ``<expr>.name(...)`` call, else None."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def resource_gen_kill(stmt: ast.AST, specs: Sequence[ResourceSpec],
                      ) -> Tuple[List[ResourceFact], FrozenSet[str]]:
    """The resources a statement opens and the spec names it closes."""
    gens: List[ResourceFact] = []
    kills: List[str] = []
    for call in calls_of(stmt):
        name = method_name_of(call)
        if name is None:
            continue
        for spec in specs:
            if name in spec.acquire:
                gens.append(ResourceFact(spec.name, call.lineno,
                                         call.col_offset, name))
            if name in spec.release:
                kills.append(spec.name)
    return gens, frozenset(kills)


def resource_transfer(specs: Sequence[ResourceSpec],
                      ) -> Transfer[FrozenSet[object]]:
    """Standard transfer for open-resource tracking: kill, then gen.

    Kills run first so a statement that closes and re-opens the same
    resource kind ends the statement with only the fresh fact open.
    """
    def transfer(node: CFGNode,
                 value: FrozenSet[object]) -> FrozenSet[object]:
        if node.stmt is None or not isinstance(node.stmt, ast.stmt):
            return value
        gens, kills = resource_gen_kill(node.stmt, specs)
        if kills:
            value = frozenset(f for f in value
                              if not (isinstance(f, ResourceFact)
                                      and f.spec in kills))
        if gens:
            value = value | frozenset(gens)
        return value
    return transfer
