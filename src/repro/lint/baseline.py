"""Committed-baseline mechanism: grandfather old findings, fail on new.

A baseline is a JSON file of content fingerprints.  Each violation
hashes ``rule id + repo-relative path + stripped source line text +
occurrence index`` — deliberately *not* the line number, so unrelated
edits that shift a grandfathered finding up or down do not break the
build, while any change to the offending line itself (or a genuinely
new finding) surfaces as new.  The occurrence index disambiguates
repeated identical lines in one file.

The acceptance bar for this repo is an *empty* baseline — every
violation the flow rules surfaced was actually fixed — but the
mechanism is what lets future rules land before their fix sweep is
complete.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.model import Violation

BASELINE_VERSION = 1


def _relative(file: str, root: Optional[Path] = None) -> str:
    path = Path(file)
    base = (root or Path.cwd()).resolve()
    try:
        return path.resolve().relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


def _line_text(violation: Violation,
               sources: Dict[str, List[str]]) -> str:
    """The stripped source line a violation points at ('' if unknown)."""
    if violation.file not in sources:
        try:
            text = Path(violation.file).read_text(encoding="utf-8")
            sources[violation.file] = text.splitlines()
        except OSError:
            sources[violation.file] = []
    lines = sources[violation.file]
    if 1 <= violation.line <= len(lines):
        return lines[violation.line - 1].strip()
    return ""


def fingerprint(rule_id: str, rel_path: str, line_text: str,
                occurrence: int) -> str:
    payload = f"{rule_id}\x1f{rel_path}\x1f{line_text}\x1f{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprints_for(violations: Sequence[Violation],
                     root: Optional[Path] = None) -> List[str]:
    """One fingerprint per violation, in input order."""
    sources: Dict[str, List[str]] = {}
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[str] = []
    for violation in violations:
        rel = _relative(violation.file, root)
        text = _line_text(violation, sources)
        key = (violation.rule_id, rel, text)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out.append(fingerprint(violation.rule_id, rel, text, occurrence))
    return out


def write_baseline(path: Path, violations: Sequence[Violation],
                   root: Optional[Path] = None) -> None:
    payload = {
        "tool": "repro-lint",
        "version": BASELINE_VERSION,
        "fingerprints": sorted(fingerprints_for(violations, root)),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Set[str]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("tool") != "repro-lint":
        raise ValueError(f"{path} is not a repro-lint baseline")
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {payload.get('version')!r}")
    return set(payload.get("fingerprints", []))


def filter_new(violations: Sequence[Violation], baseline: Set[str],
               root: Optional[Path] = None,
               ) -> Tuple[List[Violation], int]:
    """(violations not in the baseline, count of grandfathered ones)."""
    fresh: List[Violation] = []
    matched = 0
    for violation, print_ in zip(violations,
                                 fingerprints_for(violations, root)):
        if print_ in baseline:
            matched += 1
        else:
            fresh.append(violation)
    return fresh, matched
