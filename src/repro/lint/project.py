"""Whole-program context shared by the interprocedural rules.

A :class:`Project` bundles every parsed file of one lint invocation with
the call graph (:mod:`repro.lint.callgraph`) and the bottom-up function
summaries (:mod:`repro.lint.summaries`) built over them.  The engine
constructs exactly one per run — single-file entry points
(``check_source``) get a one-file project, so fixture tests exercise the
interprocedural rules without a tree on disk — and hands it to every
:class:`~repro.lint.model.ProjectRule` alongside the per-file context.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.lint.callgraph import (CallGraph, FunctionDecl, FunctionId,
                                  build_call_graph)
from repro.lint.model import FileContext
from repro.lint.summaries import (FunctionSummary, SummaryTable,
                                  compute_summaries)


class Project:
    """All files of one lint run, plus call graph and summaries."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts: Dict[str, FileContext] = {
            ctx.logical: ctx for ctx in contexts}
        self.callgraph: CallGraph = build_call_graph(
            [(ctx.logical, ctx.tree) for ctx in contexts])
        self.summaries: SummaryTable = compute_summaries(self.callgraph)
        #: Scratch memo shared by whole-program analyses that are too
        #: rule-specific for :class:`SummaryTable` (the typestate layer
        #: caches per-``(spec, function, param)`` transition relations
        #: here).  Keyed by arbitrary hashable tuples; lives exactly as
        #: long as the project, so parallel workers each fill their own.
        self.analysis_cache: Dict[Hashable, object] = {}

    def functions_of(self, logical: str) -> List[FunctionDecl]:
        """Declarations of one module, in source order."""
        decls = self.callgraph.functions_of_module(logical)
        decls.sort(key=lambda d: (d.node.lineno, d.node.col_offset))
        return decls

    def summary(self, fid: FunctionId) -> FunctionSummary:
        return self.summaries.summary(fid)

    def declaration(self, fid: FunctionId) -> Optional[FunctionDecl]:
        return self.callgraph.declaration(fid)
