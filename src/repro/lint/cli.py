"""Command-line entry point: ``repro-lint`` / ``python -m repro.lint``.

Exit codes: 0 clean, 1 violations found, 2 usage error (e.g. a path that
does not exist, or an unreadable baseline).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.lint.baseline import filter_new, load_baseline, write_baseline
from repro.lint.engine import lint_paths, render_json, render_text
from repro.lint.model import all_rules
from repro.lint.sarif import render_sarif
from repro.lint.typestate import render_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the WTPG core "
                    "(rules RL001-RL016; see docs/lint.md).")
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report instead of text")
    parser.add_argument(
        "--sarif", nargs="?", const="-", default=None, metavar="FILE",
        help="emit a SARIF 2.1.0 report to FILE (or stdout when no "
             "FILE is given) instead of text")
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="record the current violations as the committed baseline "
             "and exit 0")
    parser.add_argument(
        "--check-baseline", metavar="FILE", default=None,
        help="suppress violations recorded in FILE; only new ones fail")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (e.g. RL009,RL012); "
             "default: every registered rule")
    parser.add_argument(
        "--ignore", metavar="RULES", default=None,
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="lint with N worker processes; output is identical to a "
             "serial run regardless of scheduling (default: 1)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print one rule's catalogue entry — and, for the typestate "
             "rules RL013-RL016, the protocol's state-machine table — "
             "then exit")
    parser.add_argument(
        "--changed-only", action="store_true",
        help="report violations only in files git sees as modified "
             "(staged, unstaged or untracked); the analysis itself "
             "stays whole-program, so interprocedural rules still see "
             "every file under PATH")
    return parser


def _git_changed_files() -> Optional[Set[Path]]:
    """Files ``git status`` reports as touched, as resolved paths.

    Returns None (usage error) outside a git work tree.  Renames report
    their new name; deleted files resolve to nothing reportable, which
    is exactly right — there is no line left to point at.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=all"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    changed: Set[Path] = set()
    for line in out.splitlines():
        if len(line) < 4:
            continue
        name = line[3:]
        if " -> " in name:
            name = name.split(" -> ", 1)[1]
        name = name.strip().strip('"')
        changed.add(Path(name).resolve())
    return changed


def _parse_rule_list(raw: str, known: Sequence[str],
                     flag: str) -> Optional[List[str]]:
    """A comma-separated rule-id list, or None (with stderr) on junk."""
    ids = [part.strip().upper() for part in raw.split(",") if part.strip()]
    unknown = sorted(set(ids) - set(known))
    if unknown:
        print(f"repro-lint: {flag} names unknown rule"
              f"{'s' if len(unknown) != 1 else ''}: {', '.join(unknown)} "
              f"(known: {', '.join(known)})", file=sys.stderr)
        return None
    if not ids:
        print(f"repro-lint: {flag} needs at least one rule id",
              file=sys.stderr)
        return None
    return ids


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    if args.explain is not None:
        wanted = args.explain.strip().upper()
        for rule in rules:
            if rule.rule_id == wanted:
                print(f"{rule.rule_id}  {rule.summary}")
                spec = getattr(rule, "spec", None)
                if spec is not None:
                    print()
                    print(render_table(spec))
                return 0
        print(f"repro-lint: --explain names an unknown rule: {wanted} "
              f"(known: {', '.join(r.rule_id for r in rules)})",
              file=sys.stderr)
        return 2

    known = [rule.rule_id for rule in rules]
    if args.select is not None:
        selected = _parse_rule_list(args.select, known, "--select")
        if selected is None:
            return 2
        rules = [rule for rule in rules if rule.rule_id in selected]
    if args.ignore is not None:
        ignored = _parse_rule_list(args.ignore, known, "--ignore")
        if ignored is None:
            return 2
        rules = [rule for rule in rules if rule.rule_id not in ignored]
    if args.jobs < 1:
        print(f"repro-lint: --jobs must be >= 1 (got {args.jobs})",
              file=sys.stderr)
        return 2

    if args.sarif not in (None, "-") and Path(args.sarif).suffix not in (
            ".sarif", ".json"):
        # Guards against `--sarif <path-to-lint>` eating a positional
        # path and overwriting a source file with the report.
        print(f"repro-lint: --sarif target must end .sarif or .json "
              f"(got {args.sarif!r})", file=sys.stderr)
        return 2

    paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"repro-lint: path does not exist: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    changed: Optional[Set[Path]] = None
    if args.changed_only:
        if args.write_baseline is not None:
            # A baseline recorded from a slice of the tree would
            # grandfather only what happened to be dirty at the time.
            print("repro-lint: --changed-only cannot combine with "
                  "--write-baseline", file=sys.stderr)
            return 2
        changed = _git_changed_files()
        if changed is None:
            print("repro-lint: --changed-only requires git and a work "
                  "tree", file=sys.stderr)
            return 2

    violations, runner = lint_paths(paths, rules, jobs=args.jobs)

    elided = 0
    if changed is not None:
        before = len(violations)
        violations = [v for v in violations
                      if Path(v.file).resolve() in changed]
        elided = before - len(violations)

    if args.write_baseline is not None:
        write_baseline(Path(args.write_baseline), violations)
        print(f"repro-lint: wrote baseline with {len(violations)} "
              f"fingerprint{'s' if len(violations) != 1 else ''} to "
              f"{args.write_baseline}")
        return 0

    grandfathered = 0
    if args.check_baseline is not None:
        baseline_path = Path(args.check_baseline)
        if not baseline_path.exists():
            print(f"repro-lint: baseline does not exist: {baseline_path}",
                  file=sys.stderr)
            return 2
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        violations, grandfathered = filter_new(violations, baseline)

    if args.sarif is not None:
        report = render_sarif(violations, rules)
        if args.sarif == "-":
            print(report)
        else:
            Path(args.sarif).write_text(report + "\n", encoding="utf-8")
    elif args.as_json:
        print(render_json(violations, runner.files_checked, rules))
    else:
        text = render_text(violations, runner.files_checked)
        if grandfathered:
            text += (f"\nrepro-lint: {grandfathered} baselined violation"
                     f"{'s' if grandfathered != 1 else ''} suppressed")
        if elided:
            text += (f"\nrepro-lint: {elided} violation"
                     f"{'s' if elided != 1 else ''} in unchanged files "
                     "not shown (--changed-only)")
        print(text)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
