"""Command-line entry point: ``repro-lint`` / ``python -m repro.lint``.

Exit codes: 0 clean, 1 violations found, 2 usage error (e.g. a path that
does not exist).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import (LintRunner, render_json, render_text)
from repro.lint.model import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the WTPG core "
                    "(rules RL001-RL005; see docs/lint.md).")
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report instead of text")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"repro-lint: path does not exist: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    runner = LintRunner(rules)
    violations = runner.check_paths(paths)
    if args.as_json:
        print(render_json(violations, runner.files_checked, rules))
    else:
        print(render_text(violations, runner.files_checked))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
