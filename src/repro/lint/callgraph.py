"""Project-wide call graph over the ``repro`` package.

The interprocedural rules (RL009–RL012) need one fact the per-file CFGs
cannot provide: *which function does this call reach?*  This module
builds a whole-program call graph from the already-parsed
:class:`~repro.lint.model.FileContext` set:

* **functions** are indexed by :data:`FunctionId` — ``(logical path,
  qualified name)``, e.g. ``("repro/machine/control_node.py",
  "ControlNode.transaction_process")``.  Every ``def`` in the tree is
  indexed, including nested ones (qualname ``outer.<locals>.inner``),
  so a summary exists for every body that can contain a ``yield``.
* **resolution** is deliberately name-based and conservative:

  - ``name(...)`` resolves through, in order: a local single-assignment
    alias (``f = helper`` … ``f()``), a function of the same module, an
    imported name (followed transitively through package ``__init__``
    re-exports), a class of the project (the call then targets its
    ``__init__``).
  - ``self.m(...)`` / ``cls.m(...)`` resolve to a method of the
    enclosing class, walking project base classes in declaration order.
  - ``ClassName.m(...)`` and ``ClassName(...).m(...)`` resolve through
    the class index, ``mod.f(...)`` through an ``import repro.x as
    mod`` binding.
  - Everything else — calls on arbitrary receivers (``obj.m()``),
    re-assigned aliases, ``getattr`` dispatch, calls through
    containers — is **unknown**: recorded with ``callee=None`` so rules
    can choose their own policy (RL012 stays silent on unknowns, the
    summaries treat them as having no effect).

* **decorators are transparent**: a decorated ``def`` keeps its name in
  the index, so a ``functools.wraps``-wrapped generator still counts as
  a generator at its call sites.  (The wrapper-factory body itself is
  indexed separately and resolved like any other function.)

The graph is purely syntactic — no imports are executed — and shared by
every interprocedural rule through :class:`repro.lint.engine.Project`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.cfg import FunctionNode

#: ``(logical module path, qualified function name)``.
FunctionId = Tuple[str, str]


@dataclass
class FunctionDecl:
    """One ``def`` in the project, with enough context to resolve calls."""

    fid: FunctionId
    node: FunctionNode
    class_name: Optional[str]   # immediately enclosing class, if any
    has_yield: bool             # a syntactic yield/yield from of its own

    @property
    def module(self) -> str:
        return self.fid[0]

    @property
    def qualname(self) -> str:
        return self.fid[1]

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassDecl:
    """One ``class`` in the project: its methods and base-class names."""

    module: str
    name: str
    methods: Dict[str, FunctionId] = field(default_factory=dict)
    #: Base expressions as dotted names (unresolved — resolution happens
    #: against the import tables at query time).
    bases: List[str] = field(default_factory=list)


@dataclass
class CallSite:
    """One call expression inside one function."""

    caller: FunctionId
    call: ast.Call
    callee: Optional[FunctionId]    # None = soundly unknown

    @property
    def line(self) -> int:
        return self.call.lineno

    @property
    def col(self) -> int:
        return self.call.col_offset


def module_name_of(logical: str) -> str:
    """``repro/engine/__init__.py`` -> ``repro.engine`` etc."""
    trimmed = logical[:-3] if logical.endswith(".py") else logical
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return trimmed.replace("/", ".")


def _own_yield(fn: FunctionNode) -> bool:
    """Does this function's own body contain a yield (nested defs excluded)?"""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # a nested def's yields belong to the nested def
        stack.extend(ast.iter_child_nodes(node))
    return False


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _ModuleIndex:
    """Per-module symbol tables: functions, classes, import bindings."""

    def __init__(self, logical: str) -> None:
        self.logical = logical
        self.module = module_name_of(logical)
        #: top-level (and nested) functions by qualname; top-level only
        #: by bare name for call resolution.
        self.functions: Dict[str, FunctionId] = {}
        self.classes: Dict[str, ClassDecl] = {}
        #: imported name -> (source module name, original name).  For
        #: ``import a.b as m`` the original name is "" (module binding).
        self.imports: Dict[str, Tuple[str, str]] = {}


class CallGraph:
    """The assembled graph: declarations, class index and call edges."""

    def __init__(self) -> None:
        self.functions: Dict[FunctionId, FunctionDecl] = {}
        self.calls: Dict[FunctionId, List[CallSite]] = {}
        self._modules: Dict[str, _ModuleIndex] = {}
        #: module name ("repro.core.wtpg") -> logical path, for imports.
        self._by_module_name: Dict[str, str] = {}

    # -- queries -----------------------------------------------------------

    def declaration(self, fid: FunctionId) -> Optional[FunctionDecl]:
        return self.functions.get(fid)

    def callees(self, fid: FunctionId) -> Iterator[FunctionId]:
        """Resolved callees of one function (unknown calls skipped)."""
        for site in self.calls.get(fid, ()):
            if site.callee is not None:
                yield site.callee

    def call_sites(self, fid: FunctionId) -> List[CallSite]:
        return self.calls.get(fid, [])

    def functions_of_module(self, logical: str) -> List[FunctionDecl]:
        return [decl for fid, decl in self.functions.items()
                if fid[0] == logical]

    def resolve_bare_name(self, logical: str,
                          name: str) -> Optional[FunctionId]:
        """Resolve ``name(...)`` as written at module scope of ``logical``.

        The per-function call-site index only covers calls inside
        ``def`` bodies; rules use this for module-level expressions.
        """
        return self._resolve_name_callable(logical, name)

    def resolve_method(self, module: str, class_name: str,
                       method: str) -> Optional[FunctionId]:
        """``class_name.method`` in ``module``, walking project bases."""
        seen: Set[Tuple[str, str]] = set()
        stack: List[Tuple[str, str]] = [(module, class_name)]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            index = self._modules.get(key[0])
            decl = index.classes.get(key[1]) if index is not None else None
            if decl is None:
                continue
            if method in decl.methods:
                return decl.methods[method]
            for base in decl.bases:
                resolved = self._resolve_class_name(key[0], base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    # -- construction ------------------------------------------------------

    def _resolve_class_name(self, module: str,
                            dotted: str) -> Optional[Tuple[str, str]]:
        """A (possibly dotted) class reference -> (module, class name)."""
        index = self._modules.get(module)
        if index is None:
            return None
        head, _, rest = dotted.partition(".")
        if not rest:
            if head in index.classes:
                return (module, head)
            target = self._follow_import(module, head, depth=0)
            if target is not None:
                t_module, t_name = target
                t_index = self._modules.get(t_module)
                if t_index is not None and t_name in t_index.classes:
                    return (t_module, t_name)
            return None
        # ``mod.Class`` through a module binding.
        if head in index.imports and index.imports[head][1] == "":
            source = index.imports[head][0]
            source_logical = self._by_module_name.get(source)
            if source_logical is not None:
                return self._resolve_class_name(source_logical, rest)
        return None

    def _follow_import(self, module: str, name: str,
                       depth: int) -> Optional[Tuple[str, str]]:
        """Where does imported ``name`` in ``module`` actually live?

        Follows ``from a import b`` chains through package ``__init__``
        re-exports, bounded to keep import cycles finite.  Returns a
        ``(logical module, original name)`` pair, or None.
        """
        if depth > 8:
            return None
        index = self._modules.get(module)
        if index is None or name not in index.imports:
            return None
        source, original = index.imports[name]
        if original == "":
            return None  # a module binding, not a symbol
        source_logical = self._by_module_name.get(source)
        if source_logical is None:
            # ``from a.b import c`` can also name a *module* c.
            as_module = self._by_module_name.get(f"{source}.{name}")
            if as_module is not None:
                return None
            return None
        source_index = self._modules[source_logical]
        if (original in source_index.functions
                or original in source_index.classes):
            return (source_logical, original)
        return self._follow_import(source_logical, original, depth + 1)

    def _resolve_name_callable(self, module: str,
                               name: str) -> Optional[FunctionId]:
        """A bare ``name(...)`` call in ``module``'s scope."""
        index = self._modules.get(module)
        if index is None:
            return None
        if name in index.functions:
            return index.functions[name]
        if name in index.classes:
            return index.classes[name].methods.get("__init__")
        target = self._follow_import(module, name, depth=0)
        if target is not None:
            t_module, t_name = target
            t_index = self._modules[t_module]
            if t_name in t_index.functions:
                return t_index.functions[t_name]
            if t_name in t_index.classes:
                return t_index.classes[t_name].methods.get("__init__")
        return None


def _index_module(cg: CallGraph, logical: str,
                  tree: ast.Module) -> _ModuleIndex:
    index = _ModuleIndex(logical)
    cg._modules[logical] = index
    cg._by_module_name[index.module] = logical

    def walk_body(body: Sequence[ast.stmt], qual: str,
                  class_name: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{qual}{stmt.name}"
                fid = (logical, qualname)
                decl = FunctionDecl(fid, stmt, class_name,
                                    _own_yield(stmt))
                cg.functions[fid] = decl
                if class_name is None and qual == "":
                    index.functions.setdefault(stmt.name, fid)
                elif class_name is not None and "." not in qual[:-1]:
                    pass  # methods are indexed on their ClassDecl below
                if class_name is not None:
                    owner = index.classes.get(class_name)
                    if owner is not None and qual == f"{class_name}.":
                        owner.methods.setdefault(stmt.name, fid)
                walk_body(stmt.body, f"{qualname}.<locals>.", None)
            elif isinstance(stmt, ast.ClassDef):
                if qual == "":
                    decl_cls = ClassDecl(logical, stmt.name)
                    decl_cls.bases = [_dotted(base) for base in stmt.bases
                                      if _dotted(base)]
                    index.classes[stmt.name] = decl_cls
                    walk_body(stmt.body, f"{stmt.name}.", stmt.name)
                else:
                    # Nested classes: index their defs for summaries but
                    # keep them out of name resolution.
                    walk_body(stmt.body, f"{qual}{stmt.name}.", stmt.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    index.imports[bound] = (alias.name, "")
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module is not None and stmt.level == 0:
                    for alias in stmt.names:
                        bound = alias.asname or alias.name
                        index.imports[bound] = (stmt.module, alias.name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # TYPE_CHECKING imports / guarded defs still bind names.
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, ast.stmt):
                        walk_body([inner], qual, class_name)

    walk_body(tree.body, "", None)
    return index


def _local_aliases(cg: CallGraph, module: str,
                   fn: FunctionNode) -> Dict[str, FunctionId]:
    """Single-assignment local aliases of resolvable callables.

    ``f = helper`` makes ``f(...)`` resolve to ``helper`` — but only
    when ``f`` is bound exactly once in the function from a plain
    callable reference.  A name rebound anywhere (including loop
    targets or from a non-reference expression) is ambiguous and
    resolves to unknown; that keeps the alias map sound.
    """
    bindings: Dict[str, List[Optional[FunctionId]]] = {}
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                resolved: Optional[FunctionId] = None
                if isinstance(node.value, ast.Name):
                    resolved = cg._resolve_name_callable(
                        module, node.value.id)
                bindings.setdefault(target.id, []).append(resolved)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target_node = node.target
            if isinstance(target_node, ast.Name):
                bindings.setdefault(target_node.id, []).append(None)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    bindings.setdefault(name_node.id, []).append(None)
        stack.extend(ast.iter_child_nodes(node))
    aliases: Dict[str, FunctionId] = {}
    for name, bound in bindings.items():
        if len(bound) == 1 and bound[0] is not None:
            aliases[name] = bound[0]
    return aliases


def _resolve_call(cg: CallGraph, decl: FunctionDecl,
                  aliases: Dict[str, FunctionId],
                  call: ast.Call) -> Optional[FunctionId]:
    func = call.func
    module = decl.module
    if isinstance(func, ast.Name):
        if func.id in aliases:
            return aliases[func.id]
        return cg._resolve_name_callable(module, func.id)
    if isinstance(func, ast.Attribute):
        receiver = func.value
        method = func.attr
        # self.m(...) / cls.m(...) inside a method.
        if (isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and decl.class_name is not None):
            return cg.resolve_method(module, decl.class_name, method)
        # ClassName.m(...) — unbound method through the class.
        if isinstance(receiver, ast.Name):
            resolved_cls = cg._resolve_class_name(module, receiver.id)
            if resolved_cls is not None:
                return cg.resolve_method(resolved_cls[0],
                                            resolved_cls[1], method)
            index = cg._modules.get(module)
            if (index is not None and receiver.id in index.imports
                    and index.imports[receiver.id][1] == ""):
                # mod.f(...) through ``import repro.x as mod``.
                source = index.imports[receiver.id][0]
                source_logical = cg._by_module_name.get(source)
                if source_logical is not None:
                    return cg._resolve_name_callable(source_logical,
                                                        method)
            return None
        # ClassName(...).m(...) — method on a fresh instance.
        if isinstance(receiver, ast.Call) and isinstance(receiver.func,
                                                         ast.Name):
            resolved_cls = cg._resolve_class_name(module,
                                                     receiver.func.id)
            if resolved_cls is not None:
                return cg.resolve_method(resolved_cls[0],
                                            resolved_cls[1], method)
        return None
    return None


def _calls_in(fn: FunctionNode) -> Iterator[ast.Call]:
    """Call expressions of one function body, nested defs excluded."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            for decorator in getattr(node, "decorator_list", []):
                stack.append(decorator)
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def build_call_graph(modules: Sequence[Tuple[str, ast.Module]]) -> CallGraph:
    """Build the graph from ``(logical path, parsed tree)`` pairs."""
    cg = CallGraph()
    for logical, tree in modules:
        _index_module(cg, logical, tree)
    for fid, decl in cg.functions.items():
        aliases = _local_aliases(cg, decl.module, decl.node)
        sites: List[CallSite] = []
        for call in _calls_in(decl.node):
            callee = _resolve_call(cg, decl, aliases, call)
            sites.append(CallSite(fid, call, callee))
        sites.sort(key=lambda s: (s.line, s.col))
        cg.calls[fid] = sites
    return cg
