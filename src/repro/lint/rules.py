"""The project-specific rules RL001–RL005.

Each rule encodes a contract the runtime invariant suite or reviewer
discipline used to carry alone; ``docs/lint.md`` ties every rule to the
paper / PR-1 design decision it protects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.cfg import CFGNode, build_cfg
from repro.lint.dataflow import UnionLattice, solve_forward
from repro.lint.model import (FileContext, Rule, Violation, dotted_name,
                              register_rule)

# ---------------------------------------------------------------------------
# RL001 — determinism
# ---------------------------------------------------------------------------

#: The only module allowed to touch ambient randomness: it derives named,
#: seeded substreams for everything else.
RNG_MODULES = frozenset({"repro/engine/rng.py"})

#: Importing these modules is the gateway to nondeterminism.
_BANNED_IMPORTS = frozenset({"random", "secrets"})

#: Wall-clock / entropy calls that make a run irreproducible.  Matched as
#: dotted-name suffixes, so ``datetime.datetime.now`` is caught too.
_BANNED_CALLS = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
)

#: Consumers whose result does not depend on iteration order; a set-typed
#: comprehension feeding one of these is deterministic by construction.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "sum", "max", "min", "set", "frozenset", "any", "all",
    "len", "heapify",
})

_SET_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference", "keys",
})


def _is_unordered_expr(node: ast.AST) -> bool:
    """Syntactically certain to produce a hash-ordered container."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        # Only certain when an operand is itself visibly a set; a bare
        # ``a | b`` of two names could be integers.
        return _is_unordered_expr(node.left) or _is_unordered_expr(node.right)
    return False


@register_rule
class DeterminismRule(Rule):
    """RL001: randomness/clocks only via engine/rng.py; ordered iteration.

    The simulator's claim to bit-reproducibility (same seed, same
    schedule — the property every PR-1 equivalence test rests on) holds
    only while (a) every random draw flows through the named streams of
    :mod:`repro.engine.rng` and (b) no scheduling decision consumes a
    hash-ordered iteration.  The iteration check is syntactic and
    conservative: it flags loops whose iterable is *visibly* a set
    expression, in ``core/`` and ``engine/`` only, and exempts
    comprehensions consumed by order-insensitive reducers.
    """

    rule_id = "RL001"
    summary = ("no ambient randomness/clocks outside engine/rng.py; "
               "no unordered-set iteration in core/ and engine/")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.logical not in RNG_MODULES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        check_iteration = ctx.in_dir("core") or ctx.in_dir("engine")
        for node in ast.walk(ctx.tree):
            yield from self._check_imports(ctx, node)
            yield from self._check_calls(ctx, node)
            if check_iteration:
                yield from self._check_iteration(ctx, node)

    def _check_imports(self, ctx: FileContext,
                       node: ast.AST) -> Iterator[Violation]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_IMPORTS:
                    yield self.violation(
                        ctx, node,
                        f"import of {alias.name!r}: draw randomness from "
                        "repro.engine.rng.RandomStreams instead")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _BANNED_IMPORTS:
                yield self.violation(
                    ctx, node,
                    f"import from {node.module!r}: draw randomness from "
                    "repro.engine.rng.RandomStreams instead")

    def _check_calls(self, ctx: FileContext,
                     node: ast.AST) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        dotted = dotted_name(node.func)
        if not dotted:
            return
        for banned in _BANNED_CALLS:
            if dotted == banned or dotted.endswith("." + banned):
                yield self.violation(
                    ctx, node,
                    f"call to {dotted}(): wall-clock/entropy breaks "
                    "seeded reproducibility — use simulation time or a "
                    "named RandomStreams stream")
                return

    def _check_iteration(self, ctx: FileContext,
                         node: ast.AST) -> Iterator[Violation]:
        if isinstance(node, ast.For):
            if _is_unordered_expr(node.iter):
                yield self.violation(
                    ctx, node.iter,
                    "iteration over an unordered set expression: wrap in "
                    "sorted() or keep an insertion-ordered index "
                    "(dict-as-ordered-set)")
        elif isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            parent = ctx.parent(node)
            if (isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _ORDER_INSENSITIVE):
                return
            for comp in node.generators:
                if _is_unordered_expr(comp.iter):
                    yield self.violation(
                        ctx, comp.iter,
                        "comprehension over an unordered set expression "
                        "feeds an order-sensitive consumer: wrap in sorted()")


# ---------------------------------------------------------------------------
# RL002 — generation-counter coherence (static invariant 7)
# ---------------------------------------------------------------------------

#: The graph-defining containers of WTPG.  Anything else (``_cp_dist``,
#: ``_topo_order``, the closure caches…) is *derived* state guarded by
#: the generations these mutations must bump.
WATCHED_ATTRS = frozenset({
    "_source", "_sink", "_pairs", "_neighbors", "_succ", "_pred",
    "_unresolved",
})

#: Statements that count as invalidation: bumping a generation counter or
#: calling a helper that does.
BUMP_ATTRS = frozenset({"_generation", "_structure_gen"})
INVALIDATION_HELPERS = frozenset({"_note_edge_weight", "_invalidate_caches"})

_MUTATOR_METHODS = frozenset({
    "add", "discard", "remove", "pop", "popitem", "clear", "update",
    "setdefault", "append", "extend", "insert",
})


def _watched_root(node: ast.AST) -> Optional[str]:
    """The watched ``self.X`` a subscript/attribute chain is rooted at."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in WATCHED_ATTRS):
        return node.attr
    return None


def _statement_mutations(stmt: ast.stmt) -> List[Tuple[ast.stmt, str]]:
    """Watched-container mutations performed directly by one statement."""
    found: List[Tuple[ast.stmt, str]] = []
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, ast.Subscript):
                attr = _watched_root(target)
                if attr:
                    found.append((stmt, attr))
            elif isinstance(target, ast.Attribute):
                attr = _watched_root(target)
                if attr:
                    found.append((stmt, attr))
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            attr = _watched_root(target)
            if attr:
                found.append((stmt, attr))
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            attr = _watched_root(func.value)
            if attr:
                found.append((stmt, attr))
    return found


def _is_bump(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in BUMP_ATTRS):
                return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in INVALIDATION_HELPERS):
            return True
    return False


@dataclass(frozen=True)
class _MutFact:
    """One un-bumped mutation of a watched container, keyed by its site."""

    line: int
    col: int
    attr: str


@register_rule
class CacheCoherenceRule(Rule):
    """RL002: WTPG mutations must bump a generation counter on every path.

    This is the static counterpart of runtime invariant 7
    (:meth:`repro.core.wtpg.WTPG.cache_violations`): the incremental
    topological order, closure memos and critical-path dist cache are
    only allowed to trust their generation guards because *every*
    mutation of the graph-defining containers bumps ``_generation`` /
    ``_structure_gen`` (directly or via an invalidation helper).  The
    rule runs a may-analysis over each method's CFG
    (:mod:`repro.lint.cfg` + :mod:`repro.lint.dataflow`): the facts are
    open mutations, a bump statement kills them all, and a fact entering
    a ``return`` node or the normal function exit is a violation.
    (Paths into the ``raise`` exit are exempt — an exception
    mid-mutation is already a hard failure.)
    """

    rule_id = "RL002"
    summary = ("WTPG methods mutating graph containers must bump the "
               "generation counter on every path")

    #: Methods that build rather than mutate: ``__init__`` creates the
    #: containers, so there is no pre-existing derived state to guard.
    EXEMPT_METHODS = frozenset({"__init__"})

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_module("repro/core/wtpg.py")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name != "WTPG":
                continue
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name not in self.EXEMPT_METHODS):
                    yield from self._check_method(ctx, item)

    @staticmethod
    def _transfer(node: CFGNode,
                  facts: FrozenSet[object]) -> FrozenSet[object]:
        stmt = node.stmt
        if stmt is None or not isinstance(stmt, ast.stmt):
            return facts
        if _is_bump(stmt):
            return frozenset()
        if isinstance(stmt, ast.Return):
            # Facts entering a return are reported there; clearing them
            # keeps an inlined ``finally`` on the return path from
            # re-reporting the same mutation at the function exit.
            return frozenset()
        new = [_MutFact(site.lineno, site.col_offset, attr)
               for site, attr in _statement_mutations(stmt)]
        return facts | frozenset(new) if new else facts

    def _check_method(self, ctx: FileContext,
                      func: ast.FunctionDef) -> Iterator[Violation]:
        cfg = build_cfg(func)
        result = solve_forward(cfg, UnionLattice(), self._transfer,
                               frozenset())
        # Return statements inside a finally body are duplicated across
        # the CFG's continuation copies; dedup on (return site, fact).
        reported: Set[Tuple[int, int, _MutFact]] = set()
        for node in cfg.stmt_nodes():
            if not isinstance(node.stmt, ast.Return):
                continue
            for fact in sorted(result.entering(node),
                               key=lambda f: (f.line, f.col, f.attr)):
                assert isinstance(fact, _MutFact)
                key = (node.stmt.lineno, node.stmt.col_offset, fact)
                if key in reported:
                    continue
                reported.add(key)
                yield self.violation(
                    ctx, node.stmt,
                    f"WTPG.{func.name} returns after mutating "
                    f"self.{fact.attr} without bumping the generation "
                    "counter")
        for fact in sorted(result.entering(cfg.exit),
                           key=lambda f: (f.line, f.col, f.attr)):
            assert isinstance(fact, _MutFact)
            yield Violation(
                self.rule_id, ctx.display, fact.line, fact.col,
                f"WTPG.{func.name} mutates self.{fact.attr} on a path that "
                "never bumps the generation counter "
                "(self._generation / self._structure_gen or an "
                "invalidation helper)")


# ---------------------------------------------------------------------------
# RL003 — WTPG encapsulation
# ---------------------------------------------------------------------------

#: Friend-module allowlist.  The overlay estimator reads (never writes)
#: exactly these private structures for its copy-free delta evaluation;
#: each entry is justified in docs/lint.md.
RL003_ATTR_ALLOWLIST: Dict[str, FrozenSet[str]] = {
    "repro/core/estimator.py": frozenset({
        "_cp_dist",   # cached base dist table primed via critical_path_length
        "_succ",      # live precedence adjacency (read-only overlay base)
        "_pred",
        "_source",    # node weights for the affected-suffix dist DP
        "_sink",
        "_pairs",     # edge weights for the dist DP
    }),
}

#: Private names importable from repro.core.wtpg, per friend module.
RL003_IMPORT_ALLOWLIST: Dict[str, FrozenSet[str]] = {
    "repro/core/estimator.py": frozenset({"_pair"}),
}


def _is_wtpg_expr(node: ast.AST) -> bool:
    """Does this expression (very likely) evaluate to a WTPG?

    Matches the naming conventions of the codebase: local/param names
    ``wtpg``/``*_wtpg``/``graph`` and attribute chains ending ``.wtpg``.
    """
    if isinstance(node, ast.Name):
        name = node.id.lower()
        return name == "wtpg" or name.endswith("_wtpg") or name == "graph"
    if isinstance(node, ast.Attribute):
        return node.attr == "wtpg"
    return False


@register_rule
class EncapsulationRule(Rule):
    """RL003: WTPG private state stays inside core/wtpg.py.

    PR 1 made every ``_``-prefixed WTPG structure a cache-coherence
    liability: external readers bypass the generation guards, and
    external *writers* would corrupt them silently.  The only sanctioned
    exception is the estimator's friend-module overlay (read-only,
    allowlisted attribute by attribute).
    """

    rule_id = "RL003"
    summary = ("no wtpg._* access outside core/wtpg.py "
               "(explicit allowlist for the estimator overlay)")

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_module("repro/core/wtpg.py")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        allowed_attrs = RL003_ATTR_ALLOWLIST.get(ctx.logical, frozenset())
        allowed_imports = RL003_IMPORT_ALLOWLIST.get(ctx.logical, frozenset())
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if (node.attr.startswith("_")
                        and not node.attr.startswith("__")
                        and _is_wtpg_expr(node.value)
                        and node.attr not in allowed_attrs):
                    yield self.violation(
                        ctx, node,
                        f"access to WTPG private attribute {node.attr!r} "
                        "outside core/wtpg.py: use the public API or extend "
                        "the RL003 allowlist with a documented rationale")
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").endswith("core.wtpg"):
                    for alias in node.names:
                        if (alias.name.startswith("_")
                                and alias.name not in allowed_imports):
                            yield self.violation(
                                ctx, node,
                                f"import of private {alias.name!r} from "
                                "repro.core.wtpg: use the public API or "
                                "extend the RL003 allowlist")


# ---------------------------------------------------------------------------
# RL004 — float equality in scheduler code
# ---------------------------------------------------------------------------

#: snake_case tokens marking an identifier as a critical-path/weight float.
_FLOAT_TOKENS = frozenset({
    "cost", "costs", "weight", "weights", "dist", "crit", "critical",
    "peak", "due", "dues", "cp", "contention",
})

#: ``e``, ``e_q``, ``e_rival`` — the paper's estimator values.
_E_NAME = re.compile(r"^e(_[a-z0-9]+)?$")

#: Calls whose result is a critical-path/weight float.
_FLOAT_FUNCS = frozenset({
    "critical_path_length", "estimate", "estimate_contention",
    "source_weight", "weight_to", "due", "actual_due",
    "chain_critical_path",
})

#: Comparisons against the IEEE infinity sentinel are exact and sanctioned.
_INF_NAMES = frozenset({"INFINITE_CONTENTION", "inf"})


def _float_identifier(name: str) -> bool:
    lowered = name.lower()
    if _E_NAME.match(lowered):
        return True
    return any(token in _FLOAT_TOKENS for token in lowered.split("_"))


def _is_float_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return _float_identifier(node.id)
    if isinstance(node, ast.Attribute):
        return _float_identifier(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        terminal = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else "")
        return terminal in _FLOAT_FUNCS
    return False


def _is_inf_sentinel(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id in _INF_NAMES:
        return True
    if isinstance(node, ast.Attribute) and node.attr in _INF_NAMES:
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "float" and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "inf"):
        return True
    return False


@register_rule
class FloatEqualityRule(Rule):
    """RL004: no ``==``/``!=`` between weight/critical-path floats.

    The exact-float equivalence of the overlay and reference estimators
    is a *tested contract* (tests/core/test_estimator_equivalence.py),
    not a licence for ad-hoc equality in scheduler decisions: two E
    values that should tie can differ in the last ulp if one was computed
    incrementally, silently flipping a grant.  Compare with ``<``/``<=``
    (the grant rule needs only an order) or against the infinity
    sentinel, which is exempt because IEEE infinity is exact.
    """

    rule_id = "RL004"
    summary = ("no ==/!= on critical-path/weight floats in "
               "core/schedulers/ (infinity sentinel exempt)")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir("core/schedulers")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_inf_sentinel(left) or _is_inf_sentinel(right):
                    continue
                if _is_float_expr(left) or _is_float_expr(right):
                    yield self.violation(
                        ctx, node,
                        "==/!= between critical-path/weight floats: use an "
                        "ordering comparison, math.isclose, or the "
                        "INFINITE_CONTENTION sentinel")


# ---------------------------------------------------------------------------
# RL005 — exception hygiene
# ---------------------------------------------------------------------------

_BLIND_TYPES = frozenset({"Exception", "BaseException"})


def _names_blind_type(node: Optional[ast.expr]) -> bool:
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BLIND_TYPES
    if isinstance(node, ast.Attribute):
        return node.attr in _BLIND_TYPES
    if isinstance(node, ast.Tuple):
        return any(_names_blind_type(item) for item in node.elts)
    return False


@register_rule
class ExceptionHygieneRule(Rule):
    """RL005: no bare excepts; no silent broad-exception swallows.

    The exception hierarchy in :mod:`repro.errors` exists so callers can
    catch precisely; a bare/blind except hides WTPG inconsistencies
    (:class:`SchedulerError` and friends) that the invariant suite is
    designed to surface loudly.
    """

    rule_id = "RL005"
    summary = "no bare excepts; no 'except Exception: pass' swallows"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx, node,
                    "bare except: catch a class from repro.errors (or at "
                    "minimum Exception) and handle or re-raise it")
            elif (_names_blind_type(node.type)
                  and len(node.body) == 1
                  and isinstance(node.body[0], ast.Pass)):
                yield self.violation(
                    ctx, node,
                    "except Exception: pass silently swallows library "
                    "errors: narrow the type or handle the failure")
