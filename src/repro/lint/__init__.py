"""repro-lint — project-specific static analysis for the WTPG core.

The reproduction's correctness rests on conventions a general-purpose
linter cannot know: all randomness flows through
:mod:`repro.engine.rng`, every mutation of the WTPG's derived-state
containers bumps a generation counter (runtime invariant 7 of
:mod:`repro.core.invariants`), the estimator is the *only* friend module
allowed inside :class:`~repro.core.wtpg.WTPG`'s private state, and
critical-path floats are never compared with ``==`` in scheduler code.
This package turns those conventions into machine-checked rules so a
regression is caught at lint time instead of as a silently wrong
schedule.  Single-pass AST matchers handle the per-node contracts; the
*path* contracts (RL002, RL006–RL008) run on an intraprocedural CFG
(:mod:`repro.lint.cfg`) with a worklist fixpoint solver
(:mod:`repro.lint.dataflow`); the *atomicity* contracts (RL009–RL012)
additionally consult a whole-program call graph
(:mod:`repro.lint.callgraph`) and bottom-up function summaries
(:mod:`repro.lint.summaries`), so a yield point hidden behind a helper
call is still a yield point.

Usage::

    PYTHONPATH=src python -m repro.lint src/          # or: repro-lint src/
    repro-lint --json src/                            # machine-readable
    repro-lint --sarif report.sarif src/              # SARIF 2.1.0
    repro-lint --write-baseline lint-baseline.json src/
    repro-lint --check-baseline lint-baseline.json src/
    repro-lint --list-rules                           # rule catalogue

Rules (see ``docs/lint.md`` for the full catalogue and rationale):

========  ==============================================================
RL001     determinism: no ambient randomness/clocks outside engine/rng.py;
          no iteration over unordered set expressions in core/ and engine/
RL002     cache coherence: WTPG methods that mutate graph containers must
          bump the generation counter on every path (static invariant 7)
RL003     encapsulation: no ``wtpg._*`` access outside core/wtpg.py
          (explicit friend-module allowlist for the estimator overlay)
RL004     float equality: no ``==``/``!=`` on critical-path/weight floats
          in core/schedulers/ (the infinity sentinel is exempt)
RL005     exception hygiene: no bare excepts; no blind ``except Exception:
          pass`` swallows
RL006     lock lifecycle: a resource (register/request) released on some
          paths must be released on every path to a function exit
RL007     guarded caches: memoized fields are read only behind their
          generation-guard check (the static face of invariant 7's reads)
RL008     stream escape: RNG streams stay in named locals / stream-named
          attributes outside engine/ and faults/
RL009     stale snapshot: a machine/ local holding shared simulation
          state is not read again after a yield point (direct or via a
          may-yield callee) without re-reading or a generation guard
RL010     unbumped across yield: a watched-container mutation (direct or
          through a callee that may leave it unbumped) must bump the
          generation before the next yield point
RL011     interprocedural stream escape: RL008's sinks, reached through
          calls — stream-returning callees and escaping parameters
RL012     synchronous schedulers: nothing in core/schedulers/ yields or
          (transitively) calls a function that may yield
RL000     lint hygiene: unparseable files and suppression comments
          without a justification
========  ==============================================================

Suppressions: append ``# repro-lint: disable=RL001 -- <justification>``
to the offending line.  The justification text after ``--`` is
mandatory; a suppression without one is itself an RL000 violation.
Findings that predate a rule can be grandfathered in a committed
baseline (``--write-baseline`` / ``--check-baseline``); this repo's
baseline is empty by design.
"""

from repro.lint.engine import LintRunner, lint_paths
from repro.lint.model import FileContext, Rule, Violation, all_rules

__all__ = [
    "FileContext",
    "LintRunner",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
]
