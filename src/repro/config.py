"""Simulation parameters — Table 1 of the paper.

Values stated explicitly in the paper's text:

* ``ObjTime = 1000`` ms (1 second; "scanning about 60 tracks / 2.5 MB per
  disk in FDS-R") — time to process one object at a data node;
* ``keeptime = 5000`` ms — the control-saving period of Section 3.4;
* ``NumNodes = 8`` data-processing nodes;
* simulation horizon 2,000,000 clocks at 1 clock = 1 ms, multiprogramming
  level infinity.

Values present in Table 1 but illegible in the scanned figure are given
era-plausible defaults, documented per field; the control-time parameters
were "determined by instruction counts of the control programs" on a
``CPUspeed``-MIPS control node, so we size them to tens of thousands of
instructions on a ~1-MIPS processor.  Sensitivity to these knobs is small
because they are 1-5 % of ``ObjTime`` (see DESIGN.md and the ablation
benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SimulationParameters:
    """Every knob of the simulated shared-nothing machine."""

    # -- machine shape -----------------------------------------------------
    num_nodes: int = 8
    """Number of data-processing nodes (paper: NumNodes = 8)."""

    num_partitions: int = 16
    """Total partitions; placed at node = partition_id mod num_nodes."""

    num_control_nodes: int = 1
    """Control-plane shards.  1 (the paper's machine) runs the single
    centralized CN; >1 shards the lock table + WTPG across that many CNs
    (partition p is controlled by CN p mod num_control_nodes) with
    cross-shard transactions coordinated by 2PC among the CNs."""

    # -- timing (all in clocks; 1 clock = 1 ms) -----------------------------
    obj_time: float = 1000.0
    """Time to bulk-process one object at a data node (paper: 1 s)."""

    startup_time: float = 20.0
    """CN coordinator work to start a transaction (2PC initiation)."""

    commit_time: float = 50.0
    """CN coordinator work to commit (two-phase commitment)."""

    dd_time: float = 5.0
    """One deadlock-prediction test on the precedence graph (C2PL)."""

    chain_time: float = 20.0
    """One full SR-order optimisation (CHAIN, Table 1 'chaintime')."""

    kwtpg_time: float = 10.0
    """One E(q) evaluation (K-WTPG, Table 1 'kwtpgtime')."""

    keep_time: float = 5000.0
    """Control-saving period (paper: 5000 ms)."""

    admission_time: float = 5.0
    """One admission test (ASL preclaim scan, chain-form DFS, K-count)."""

    retry_delay: float = 500.0
    """Fixed delay before re-submitting a delayed/aborted request."""

    retry_policy: str = "fixed"
    """Restart backoff for *aborted* transactions: 'fixed' (retry_delay),
    'immediate' (re-submit in the same instant) or 'exponential'
    (retry_delay doubling per attempt, clamped at retry_backoff_cap).
    A fault plan's own retry policy, when given, overrides this."""

    retry_backoff_cap: float = 0.0
    """Upper bound for exponential restart backoff; 0 means unbounded."""

    # -- workload / run ------------------------------------------------------
    arrival_rate_tps: float = 0.5
    """Mean transaction arrival rate, transactions per second (Poisson)."""

    sim_clocks: float = 2_000_000.0
    """Run length (paper: 2,000,000 clocks)."""

    warmup_clocks: float = 0.0
    """Clocks to discard from statistics (paper uses none)."""

    seed: int = 1
    """Master seed for all random streams."""

    # -- scheduler ------------------------------------------------------------
    scheduler: str = "C2PL"
    """Scheduler name, resolved via repro.core.schedulers.make_scheduler."""

    k_conflicts: int = 2
    """K of the K-conflict constraint (paper evaluates K = 2)."""

    estimator_mode: str = "overlay"
    """K-WTPG E(q) evaluation: 'overlay' (copy-free, fast) or 'reference'
    (legacy deep-copy, kept for differential testing)."""

    # -- engine ----------------------------------------------------------------
    node_mode: str = "batched"
    """Data-node server loop: 'batched' (arithmetic quantum batching, one
    engine timeout per uninterrupted window) or 'reference' (one timeout
    per object quantum).  Bit-identical results; 'reference' is kept for
    differential testing."""

    trace_sample_rate: float = 1.0
    """Fraction of transactions whose lifecycle events an attached Tracer
    records (deterministic per-tid choice; machine-level events are always
    kept).  1.0 records everything — identical to an unsampled tracer."""

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        if self.num_control_nodes < 1:
            raise ConfigurationError("num_control_nodes must be >= 1")
        if self.obj_time <= 0:
            raise ConfigurationError("obj_time must be positive")
        if self.arrival_rate_tps <= 0:
            raise ConfigurationError("arrival_rate_tps must be positive")
        if self.sim_clocks <= 0:
            raise ConfigurationError("sim_clocks must be positive")
        if not 0 <= self.warmup_clocks < self.sim_clocks:
            raise ConfigurationError(
                "warmup_clocks must lie inside the simulation horizon")
        for name in ("startup_time", "commit_time", "dd_time", "chain_time",
                     "kwtpg_time", "keep_time", "admission_time"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.retry_delay <= 0:
            # Zero would make a blocked transaction re-request forever at
            # one instant: the simulation clock could never advance.
            raise ConfigurationError("retry_delay must be positive")
        if self.retry_policy not in ("fixed", "immediate", "exponential"):
            raise ConfigurationError(
                "retry_policy must be 'fixed', 'immediate' or 'exponential'")
        if self.retry_backoff_cap < 0:
            raise ConfigurationError("retry_backoff_cap must be non-negative")
        if self.k_conflicts < 0:
            raise ConfigurationError("k_conflicts must be non-negative")
        if self.estimator_mode not in ("overlay", "reference"):
            raise ConfigurationError(
                "estimator_mode must be 'overlay' or 'reference'")
        if self.node_mode not in ("batched", "reference"):
            raise ConfigurationError(
                "node_mode must be 'batched' or 'reference'")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigurationError(
                "trace_sample_rate must lie in [0, 1]")

    @property
    def mean_interarrival_clocks(self) -> float:
        """Mean time between arrivals in clocks (1000 / TPS)."""
        return 1000.0 / self.arrival_rate_tps

    def node_of_partition(self, partition: int) -> int:
        """The paper's placement rule: node = partition mod NumNodes."""
        if not 0 <= partition < self.num_partitions:
            raise ConfigurationError(
                f"partition {partition} outside [0, {self.num_partitions})")
        return partition % self.num_nodes

    def with_overrides(self, **kwargs) -> "SimulationParameters":
        """A copy with some fields replaced (dataclasses.replace)."""
        return replace(self, **kwargs)

    def to_json(self) -> str:
        """Serialise every field as JSON (for experiment manifests)."""
        import json
        from dataclasses import asdict
        return json.dumps(asdict(self), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SimulationParameters":
        """Parse parameters from :meth:`to_json` output (validating)."""
        import json
        raw = json.loads(text)
        if not isinstance(raw, dict):
            raise ConfigurationError("parameter JSON must be an object")
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"unknown parameter fields: {sorted(unknown)}")
        return cls(**raw)

    def scheduler_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for the configured scheduler."""
        name = self.scheduler.upper()
        if name == "CHAIN":
            return {"chaintime": self.chain_time, "keeptime": self.keep_time,
                    "admission_time": self.admission_time}
        if name in ("K2", "KWTPG"):
            kwargs = {"kwtpgtime": self.kwtpg_time,
                      "keeptime": self.keep_time,
                      "admission_time": self.admission_time,
                      "estimator_mode": self.estimator_mode}
            if name == "KWTPG":
                kwargs["k"] = self.k_conflicts
            return kwargs
        if name in ("C2PL", "CHAIN-C2PL", "K2-C2PL"):
            return {"ddtime": self.dd_time,
                    "admission_time": self.admission_time}
        if name in ("2PL", "WAIT-DIE"):
            return {"ddtime": self.dd_time}
        if name == "ASL":
            return {"admission_time": self.admission_time}
        return {}

    def table1(self) -> Dict[str, str]:
        """The parameter listing in the shape of the paper's Table 1."""
        return {
            "NumNodes": str(self.num_nodes),
            "NumParts": str(self.num_partitions),
            "ObjTime": f"{self.obj_time:g} ms",
            "CPUspeed": "~1 MIPS (implied by control times)",
            "startuptime": f"{self.startup_time:g} ms",
            "committime": f"{self.commit_time:g} ms",
            "ddtime": f"{self.dd_time:g} ms",
            "chaintime": f"{self.chain_time:g} ms",
            "kwtpgtime": f"{self.kwtpg_time:g} ms",
            "keeptime (period of control-saving)": f"{self.keep_time:g} ms",
            "retry delay": f"{self.retry_delay:g} ms",
            "arrival rate": f"{self.arrival_rate_tps:g} TPS (exponential)",
            "simulation length": f"{self.sim_clocks:g} clocks (1 clock = 1 ms)",
            "multiprogramming level": "infinity",
        }
