"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Submodules add
their own, more specific subclasses here rather than defining them locally:
keeping the hierarchy in one file makes the public failure surface easy to
audit.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency was detected inside the discrete-event engine."""


class EngineStateError(SimulationError):
    """An engine object was used in a state that does not permit it.

    Examples: triggering an event twice, running an environment that has
    already finished, or waiting on an event from a foreign environment.
    """


class SchedulerError(ReproError):
    """A concurrency-control scheduler reached an inconsistent state."""


class LockTableError(SchedulerError):
    """The partition lock table was driven through an illegal transition."""


class WTPGError(SchedulerError):
    """The weighted transaction precedence graph is inconsistent."""


class NotChainFormError(WTPGError):
    """A WTPG expected to be chain-form (Definition 2 of the paper) is not."""


class SerializationViolationError(SchedulerError):
    """The produced schedule violates conflict serializability.

    This is raised by the validation layer (``repro.core.history``) and by
    scheduler self-checks; a correct scheduler never triggers it, so seeing
    one in tests means a bug in the scheduler under test (or, for NODC,
    expected behaviour — NODC intentionally ignores conflicts).
    """


class FaultError(SimulationError):
    """An injected fault hit a transaction's in-flight work.

    Raised through the engine when a data node crashes under a dispatched
    step, or when a transaction is cancelled (cascade abort, explicit
    injection).  ``kind`` names the fault class — ``"crash"``,
    ``"cascade"`` or ``"injected"`` — and becomes the abort cause in the
    metrics and trace.
    """

    def __init__(self, message: str, kind: str = "injected") -> None:
        super().__init__(message)
        self.kind = kind


class ConfigurationError(ReproError):
    """Simulation or experiment parameters are invalid or inconsistent."""


class FaultPlanError(ConfigurationError):
    """A fault-injection plan is malformed or inconsistent."""


class WorkloadError(ReproError):
    """A workload pattern or generator was specified incorrectly."""


class ExperimentError(ReproError):
    """An experiment run could not be completed or analysed."""


class CheckpointError(ExperimentError):
    """A sweep checkpoint file is corrupt, stale or inconsistent.

    Raised when a checkpoint's fingerprint does not match the sweep or
    code that is trying to resume it, or when a non-final line fails to
    parse.  A stale checkpoint is never silently ignored: delete the
    file (or change ``checkpoint`` paths) to start the sweep afresh.
    """


class SweepInterrupted(ExperimentError):
    """A sweep stopped before completing every task.

    Every finished task was already appended to the checkpoint, so
    re-running the same sweep against the same checkpoint path resumes
    exactly where this run stopped.  Raised by the task-budget hook
    (used by tests and the CI resume smoke to simulate a kill).
    """
