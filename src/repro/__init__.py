"""repro — WTPG concurrency control for Bulk Access Transactions.

A faithful, self-contained reproduction of:

    Ohmori, Kitsuregawa, Tanaka.  "Concurrency Control of Bulk Access
    Transactions on Shared Nothing Parallel Database Machines."
    ICDE 1990.

The package provides:

* the Weighted Transaction Precedence Graph and both WTPG schedulers
  (CHAIN and K-WTPG) plus all baselines (:mod:`repro.core`);
* a discrete-event simulator of the paper's shared-nothing machine
  (:mod:`repro.engine`, :mod:`repro.machine`);
* the paper's workloads, metrics and all four experiments
  (:mod:`repro.workloads`, :mod:`repro.metrics`, :mod:`repro.experiments`).

Quickstart::

    from repro import SimulationParameters, run_simulation
    from repro.workloads import pattern1, pattern1_catalog

    params = SimulationParameters(scheduler="K2", arrival_rate_tps=0.5,
                                  sim_clocks=200_000)
    result = run_simulation(params, pattern1(), catalog=pattern1_catalog())
    print(result.metrics.throughput_tps, result.metrics.mean_response_time)
"""

from repro.config import SimulationParameters
from repro.core import (LockMode, LockTable, Step, TransactionRuntime,
                        TransactionSpec, WTPG)
from repro.core.schedulers import (AtomicStaticLock, CautiousTwoPhaseLock,
                                   ChainC2PL, ChainScheduler,
                                   KConflictC2PL, KWTPGScheduler,
                                   NoDataContention, make_scheduler)
from repro.machine import Catalog, Cluster, Partition, run_simulation

__version__ = "1.0.0"

__all__ = [
    "AtomicStaticLock",
    "Catalog",
    "CautiousTwoPhaseLock",
    "ChainC2PL",
    "ChainScheduler",
    "Cluster",
    "KConflictC2PL",
    "KWTPGScheduler",
    "LockMode",
    "LockTable",
    "NoDataContention",
    "Partition",
    "SimulationParameters",
    "Step",
    "TransactionRuntime",
    "TransactionSpec",
    "WTPG",
    "make_scheduler",
    "run_simulation",
    "__version__",
]
