"""Cluster wiring: control plane, N data nodes, Poisson arrivals.

:func:`run_simulation` is the main entry point of the machine layer: give
it parameters and a workload generator, get back a
:class:`SimulationResult` with the paper's metrics.

With ``num_control_nodes == 1`` and no planned control-node crashes the
machine is exactly the paper's: one centralized
:class:`~repro.machine.control_node.ControlNode` — the legacy code path,
untouched, so single-CN runs stay bit-identical with earlier versions.
Otherwise the cluster assembles a sharded
:class:`~repro.machine.shard.ControlPlane`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from repro.config import SimulationParameters
from repro.core.history import History
from repro.core.schedulers import make_scheduler
from repro.core.schedulers.base import Scheduler
from repro.core.transaction import TransactionRuntime, TransactionSpec
from repro.engine import Environment, Event, RandomStreams
from repro.faults import FaultInjector, FaultPlan
from repro.machine.control_node import ControlNode
from repro.machine.data_node import DataNode
from repro.machine.partition import Catalog
from repro.machine.shard import ControlPlane
from repro.machine.trace import Tracer
from repro.metrics.collector import MetricsCollector, RunMetrics

# A workload generator maps (tid, RandomStreams) to the next transaction.
WorkloadFn = Callable[[int, RandomStreams], TransactionSpec]


@dataclass
class SimulationResult:
    """Everything a run produced: metrics plus optional history/trace.

    ``scheduler`` is the centralized scheduler for single-CN runs; for
    sharded runs it is shard 0's scheduler (or None while that shard is
    down) and ``control_plane`` carries the full per-shard state.
    """

    metrics: RunMetrics
    history: Optional[History]
    scheduler: Optional[Scheduler]
    tracer: Optional[Tracer] = None
    control_plane: Optional[ControlPlane] = None

    @property
    def throughput_tps(self) -> float:
        return self.metrics.throughput_tps

    @property
    def mean_response_time(self) -> float:
        return self.metrics.mean_response_time

    def validate(self) -> None:
        """Run every applicable correctness check on this run.

        * lock exclusion + conflict serializability, when a history was
          recorded (note: NODC legitimately fails this — it is the
          no-concurrency-control upper bound);
        * trace lifecycle well-formedness, when a tracer was attached;
        * lock-table/WTPG consistency of the scheduler's final state —
          for sharded runs, of every shard still (or back) alive.
        """
        if self.history is not None:
            self.history.check_lock_exclusion()
            self.history.check_serializable()
        if self.tracer is not None:
            from repro.machine.trace import validate_trace
            validate_trace(self.tracer)
        schedulers = []
        if self.control_plane is not None:
            schedulers = [shard.scheduler
                          for shard in self.control_plane.shards
                          if shard.scheduler is not None]
        elif self.scheduler is not None:
            schedulers = [self.scheduler]
        for scheduler in schedulers:
            table = getattr(scheduler, "table", None)
            wtpg = getattr(scheduler, "wtpg", None)
            if table is not None and wtpg is not None:
                from repro.core.invariants import check_consistency
                check_consistency(table, wtpg)


class Cluster:
    """The assembled machine, ready to run one simulation."""

    def __init__(self, params: SimulationParameters, workload: WorkloadFn,
                 catalog: Optional[Catalog] = None,
                 scheduler: Optional[Scheduler] = None,
                 record_history: bool = False,
                 tracer: Optional["Tracer"] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 scheduler_factory: Optional[Callable[[], Scheduler]] = None,
                 ) -> None:
        self.params = params
        self.workload = workload
        self.env = Environment()
        self.streams = RandomStreams(params.seed)
        self.catalog = catalog or Catalog.uniform(
            params.num_partitions, size_objects=5.0,
            num_nodes=params.num_nodes)
        if scheduler_factory is None:
            scheduler_factory = lambda: make_scheduler(  # noqa: E731
                params.scheduler, **params.scheduler_kwargs())
        self.scheduler_factory = scheduler_factory
        self.metrics = MetricsCollector(warmup_clocks=params.warmup_clocks)
        self.history = History() if record_history else None
        self.data_nodes = [
            DataNode(self.env, node_id, params.obj_time,
                     on_objects=self._on_objects,
                     on_objects_batch=self._on_objects_batch,
                     mode=params.node_mode)
            for node_id in range(params.num_nodes)]
        if tracer is not None and params.trace_sample_rate < 1.0:
            tracer.sample_rate = params.trace_sample_rate
        self.tracer = tracer
        # An absent or empty plan builds no injector at all: no extra
        # random draws, no extra engine processes — the run is
        # bit-identical to a machine without the fault subsystem.
        self.fault_plan = fault_plan
        self.injector = (FaultInjector(fault_plan, self.streams)
                         if fault_plan is not None and not fault_plan.empty()
                         else None)
        # Single-CN fault-free-of-CN-crashes runs take the legacy
        # centralized path verbatim: same objects, same event order,
        # bit-identical metrics and traces.
        sharded = params.num_control_nodes > 1 or (
            fault_plan is not None and bool(fault_plan.control_crashes))
        self.control_node: Optional[ControlNode] = None
        self.control_plane: Optional[ControlPlane] = None
        if sharded:
            self.scheduler: Optional[Scheduler] = None
            self.control_plane = ControlPlane(
                self.env, params, scheduler_factory,  # repro-lint: disable=RL009 -- __init__ runs before the event loop starts (no concurrency yet), and the factory is a constructor closure, not shared mutable state: each recovery call builds a fresh scheduler
                self.catalog,
                self.data_nodes, self.metrics, history=self.history,
                tracer=tracer, injector=self.injector)
            self._scheduler_name = self.control_plane.shards[0].live.name
        else:
            self.scheduler = scheduler or scheduler_factory()
            self.control_node = ControlNode(
                self.env, params, self.scheduler, self.catalog,
                self.data_nodes, self.metrics, history=self.history,
                tracer=tracer, injector=self.injector)
            self._scheduler_name = self.scheduler.name
        self._spawned = 0

    def _on_objects(self, txn: TransactionRuntime, objects: float) -> None:
        """A data node finished ``objects`` of a step: weight-adjust."""
        if self.control_plane is not None:
            self.control_plane.note_objects(txn, objects)
        else:
            assert self.scheduler is not None
            self.scheduler.object_processed(txn, objects)

    def _on_objects_batch(self, txn: TransactionRuntime,
                          full_quanta: int) -> None:
        """Coalesced weight adjustment for a batched run of whole quanta."""
        if self.control_plane is not None:
            self.control_plane.note_objects_batch(txn, full_quanta)
        else:
            assert self.scheduler is not None
            self.scheduler.object_processed_batch(txn, full_quanta)

    def _arrival_process(self) -> Generator[Event, Any, None]:
        """Poisson arrivals; each arrival spawns a transaction process."""
        env = self.env
        mean = self.params.mean_interarrival_clocks
        if self.control_plane is not None:
            coordinator = self.control_plane.transaction_process
        else:
            assert self.control_node is not None
            coordinator = self.control_node.transaction_process
        while True:
            yield env.timeout(self.streams.exponential("arrivals", mean))
            self._spawned += 1
            spec = self.workload(self._spawned, self.streams)
            if self.injector is not None:
                spec = self.injector.distort(spec)
            txn = TransactionRuntime(spec, arrival_time=env.now)
            self.metrics.record_arrival(env.now)
            env.process(coordinator(txn))

    def _scheduler_stats(self) -> Dict[str, float]:
        """Observational counters: per-shard sums for sharded runs."""
        if self.control_plane is None:
            assert self.scheduler is not None
            return self.scheduler.stats.as_dict()
        totals: Dict[str, float] = {}
        for shard in self.control_plane.shards:
            if shard.scheduler is None:
                continue  # a shard down at end of run lost its counters
            for key, value in shard.scheduler.stats.as_dict().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def run(self) -> SimulationResult:
        """Run for ``sim_clocks`` and summarise."""
        if self.injector is not None:
            self.injector.install(self.env, self.data_nodes, self.catalog,
                                  metrics=self.metrics, tracer=self.tracer)
            if self.control_plane is not None:
                self.injector.install_control(self.env, self.control_plane)
        self.env.process(self._arrival_process())
        self.env.run(until=self.params.sim_clocks)
        elapsed = self.params.sim_clocks
        dn_utilization = (sum(dn.utilization(elapsed)
                              for dn in self.data_nodes)
                          / len(self.data_nodes))
        if self.control_plane is not None:
            cn_utilizations = self.control_plane.utilizations(elapsed)
            cn_utilization = sum(cn_utilizations) / len(cn_utilizations)
            scheduler = self.control_plane.shards[0].scheduler
        else:
            assert self.control_node is not None
            cn_utilizations = None
            cn_utilization = self.control_node.utilization(elapsed)
            scheduler = self.scheduler
        metrics = self.metrics.summarise(
            scheduler=self._scheduler_name,
            arrival_rate_tps=self.params.arrival_rate_tps,
            sim_clocks=elapsed,
            dn_utilization=dn_utilization,
            cn_utilization=cn_utilization,
            weight_messages=sum(dn.messages_sent for dn in self.data_nodes),
            scheduler_stats=self._scheduler_stats(),
            cn_utilizations=cn_utilizations,
        )
        return SimulationResult(metrics=metrics, history=self.history,
                                scheduler=scheduler,
                                tracer=self.tracer,
                                control_plane=self.control_plane)


def run_simulation(params: SimulationParameters, workload: WorkloadFn,
                   catalog: Optional[Catalog] = None,
                   scheduler: Optional[Scheduler] = None,
                   record_history: bool = False,
                   fault_plan: Optional[FaultPlan] = None) -> SimulationResult:
    """Build a cluster and run one simulation — the one-call entry point."""
    cluster = Cluster(params, workload, catalog=catalog, scheduler=scheduler,
                      record_history=record_history, fault_plan=fault_plan)
    return cluster.run()
