"""Cluster wiring: one control node, N data nodes, Poisson arrivals.

:func:`run_simulation` is the main entry point of the machine layer: give
it parameters and a workload generator, get back a
:class:`SimulationResult` with the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.config import SimulationParameters
from repro.core.history import History
from repro.core.schedulers import make_scheduler
from repro.core.schedulers.base import Scheduler
from repro.core.transaction import TransactionRuntime, TransactionSpec
from repro.engine import Environment, Event, RandomStreams
from repro.faults import FaultInjector, FaultPlan
from repro.machine.control_node import ControlNode
from repro.machine.data_node import DataNode
from repro.machine.partition import Catalog
from repro.machine.trace import Tracer
from repro.metrics.collector import MetricsCollector, RunMetrics

# A workload generator maps (tid, RandomStreams) to the next transaction.
WorkloadFn = Callable[[int, RandomStreams], TransactionSpec]


@dataclass
class SimulationResult:
    """Everything a run produced: metrics plus optional history/trace."""

    metrics: RunMetrics
    history: Optional[History]
    scheduler: Scheduler
    tracer: Optional[Tracer] = None

    @property
    def throughput_tps(self) -> float:
        return self.metrics.throughput_tps

    @property
    def mean_response_time(self) -> float:
        return self.metrics.mean_response_time

    def validate(self) -> None:
        """Run every applicable correctness check on this run.

        * lock exclusion + conflict serializability, when a history was
          recorded (note: NODC legitimately fails this — it is the
          no-concurrency-control upper bound);
        * trace lifecycle well-formedness, when a tracer was attached;
        * lock-table/WTPG consistency of the scheduler's final state.
        """
        if self.history is not None:
            self.history.check_lock_exclusion()
            self.history.check_serializable()
        if self.tracer is not None:
            from repro.machine.trace import validate_trace
            validate_trace(self.tracer)
        table = getattr(self.scheduler, "table", None)
        wtpg = getattr(self.scheduler, "wtpg", None)
        if table is not None and wtpg is not None:
            from repro.core.invariants import check_consistency
            check_consistency(table, wtpg)


class Cluster:
    """The assembled machine, ready to run one simulation."""

    def __init__(self, params: SimulationParameters, workload: WorkloadFn,
                 catalog: Optional[Catalog] = None,
                 scheduler: Optional[Scheduler] = None,
                 record_history: bool = False,
                 tracer: Optional["Tracer"] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.params = params
        self.workload = workload
        self.env = Environment()
        self.streams = RandomStreams(params.seed)
        self.catalog = catalog or Catalog.uniform(
            params.num_partitions, size_objects=5.0,
            num_nodes=params.num_nodes)
        self.scheduler = scheduler or make_scheduler(
            params.scheduler, **params.scheduler_kwargs())
        self.metrics = MetricsCollector(warmup_clocks=params.warmup_clocks)
        self.history = History() if record_history else None
        self.data_nodes = [
            DataNode(self.env, node_id, params.obj_time,
                     on_objects=self._on_objects,
                     on_objects_batch=self._on_objects_batch,
                     mode=params.node_mode)
            for node_id in range(params.num_nodes)]
        if tracer is not None and params.trace_sample_rate < 1.0:
            tracer.sample_rate = params.trace_sample_rate
        self.tracer = tracer
        # An absent or empty plan builds no injector at all: no extra
        # random draws, no extra engine processes — the run is
        # bit-identical to a machine without the fault subsystem.
        self.fault_plan = fault_plan
        self.injector = (FaultInjector(fault_plan, self.streams)
                         if fault_plan is not None and not fault_plan.empty()
                         else None)
        self.control_node = ControlNode(
            self.env, params, self.scheduler, self.catalog, self.data_nodes,
            self.metrics, history=self.history, tracer=tracer,
            injector=self.injector)
        self._spawned = 0

    def _on_objects(self, txn: TransactionRuntime, objects: float) -> None:
        """A data node finished ``objects`` of a step: weight-adjust."""
        self.scheduler.object_processed(txn, objects)

    def _on_objects_batch(self, txn: TransactionRuntime,
                          full_quanta: int) -> None:
        """Coalesced weight adjustment for a batched run of whole quanta."""
        self.scheduler.object_processed_batch(txn, full_quanta)

    def _arrival_process(self) -> Generator[Event, Any, None]:
        """Poisson arrivals; each arrival spawns a transaction process."""
        env = self.env
        mean = self.params.mean_interarrival_clocks
        while True:
            yield env.timeout(self.streams.exponential("arrivals", mean))
            self._spawned += 1
            spec = self.workload(self._spawned, self.streams)
            if self.injector is not None:
                spec = self.injector.distort(spec)
            txn = TransactionRuntime(spec, arrival_time=env.now)
            self.metrics.record_arrival(env.now)
            env.process(self.control_node.transaction_process(txn))

    def run(self) -> SimulationResult:
        """Run for ``sim_clocks`` and summarise."""
        if self.injector is not None:
            self.injector.install(self.env, self.data_nodes, self.catalog,
                                  metrics=self.metrics, tracer=self.tracer)
        self.env.process(self._arrival_process())
        self.env.run(until=self.params.sim_clocks)
        elapsed = self.params.sim_clocks
        dn_utilization = (sum(dn.utilization(elapsed)
                              for dn in self.data_nodes)
                          / len(self.data_nodes))
        metrics = self.metrics.summarise(
            scheduler=self.scheduler.name,
            arrival_rate_tps=self.params.arrival_rate_tps,
            sim_clocks=elapsed,
            dn_utilization=dn_utilization,
            cn_utilization=self.control_node.utilization(elapsed),
            weight_messages=sum(dn.messages_sent for dn in self.data_nodes),
            scheduler_stats=self.scheduler.stats.as_dict(),
        )
        return SimulationResult(metrics=metrics, history=self.history,
                                scheduler=self.scheduler,
                                tracer=self.tracer)


def run_simulation(params: SimulationParameters, workload: WorkloadFn,
                   catalog: Optional[Catalog] = None,
                   scheduler: Optional[Scheduler] = None,
                   record_history: bool = False,
                   fault_plan: Optional[FaultPlan] = None) -> SimulationResult:
    """Build a cluster and run one simulation — the one-call entry point."""
    cluster = Cluster(params, workload, catalog=catalog, scheduler=scheduler,
                      record_history=record_history, fault_plan=fault_plan)
    return cluster.run()
