"""The centralized control node (CN).

The CN owns the scheduler (lock table + WTPG) and coordinates every
transaction's lifecycle as the two-phase-commit coordinator:

* start: ``startuptime`` of CPU, then the scheduler's admission test —
  a rejected transaction (ASL preclaim failure, chain-form or K-conflict
  violation) is re-submitted after the fixed retry delay;
* per step: a lock request costed by the scheduler (``ddtime`` /
  ``chaintime`` / ``kwtpgtime``); BLOCK/DELAY responses are re-submitted
  after the retry delay; a granted step ships the transaction to the data
  node holding the partition;
* commit: ``committime`` of CPU, locks released, WTPG node dropped.

The CN's CPU is a single FIFO server, so heavy control traffic queues —
the paper deliberately overstates control cost relative to ``ObjTime`` to
show the schedulers survive it.

Aborts — deadlock victims (2PL/WAIT-DIE) and injected faults
(:mod:`repro.faults`) — funnel into one restart path: the scheduler
releases the victim's locks and WTPG node, the metrics record the abort
by cause, and the transaction is re-submitted from admission under the
configured retry policy.  When the fault plan enables cascades, the
victim's direct precedence successors are doomed too
(:meth:`ControlNode.request_abort`), each of which repeats the same
path when its process next runs.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.config import SimulationParameters
from repro.core.history import History
from repro.core.schedulers.base import Decision, Scheduler
from repro.core.transaction import LockMode, TransactionRuntime
from repro.engine import Environment, Event, Resource
from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import RetryPolicy
from repro.machine.data_node import DataNode
from repro.machine.partition import Catalog
from repro.machine.trace import EventType, Tracer
from repro.metrics.collector import MetricsCollector

# The abort cause of the pre-fault machine; traces keep their legacy
# shape for it (no explicit cause key) so fault-free runs stay
# bit-identical with historical traces.
_LEGACY_CAUSE = "deadlock"


def declustered_shares(cost: float, n: int) -> List[float]:
    """Split ``cost`` into ``n`` near-equal shares summing to exactly ``cost``.

    Telescoping prefix differences: share ``i`` is ``cost*(i+1)/n -
    cost*i/n``, with the last share computed as ``cost - prefix``
    directly, so the shares sum to ``cost`` *exactly* (the intermediate
    bounds cancel pairwise) while each stays within a few ulps of the
    ideal ``cost / n``.  Plain ``cost / n`` copies do not conserve: ``n``
    repetitions of the rounded quotient drift from the dispatched total,
    so the per-node object counts stop adding up to the step cost.
    """
    shares: List[float] = []
    prev = 0.0
    for i in range(1, n):
        bound = cost * i / n
        shares.append(bound - prev)
        prev = bound
    shares.append(cost - prev)
    return shares


class ControlNode:
    """CN: admission, locking, dispatch and commitment of every BAT."""

    def __init__(self, env: Environment, params: SimulationParameters,
                 scheduler: Scheduler, catalog: Catalog,
                 data_nodes: List[DataNode], metrics: MetricsCollector,
                 history: Optional[History] = None,
                 tracer: Optional[Tracer] = None,
                 injector: Optional[FaultInjector] = None) -> None:
        self.env = env
        self.params = params
        self.scheduler = scheduler
        self.catalog = catalog
        self.data_nodes = data_nodes
        self.metrics = metrics
        self.history = history
        self.tracer = tracer
        self.injector = injector
        self.cpu = Resource(env, capacity=1)
        self.active_transactions = 0
        # Grant bookkeeping for history validation: tid -> list of
        # (partition, mode, grant time).
        self._grants: Dict[int, List[Tuple[int, LockMode, float]]] = {}
        # Fault bookkeeping: admitted-but-uncommitted tids, and tids
        # condemned by request_abort with the condemning cause.
        self._running: Set[int] = set()
        self._doomed: Dict[int, str] = {}
        plan = injector.plan if injector is not None else None
        self._cascade = plan.cascade if plan is not None else False
        if plan is not None and plan.retry is not None:
            self.retry_policy = plan.retry
        else:
            self.retry_policy = RetryPolicy(
                kind=params.retry_policy,
                cap=params.retry_backoff_cap or None)

    # -- CPU ------------------------------------------------------------------

    def _cpu_work(self, cost: float) -> Generator[Event, Any, None]:
        """Occupy the CN CPU for ``cost`` clocks (FIFO queueing)."""
        if cost <= 0:
            return
        request = self.cpu.request()
        yield request
        try:
            yield self.env.timeout(cost)
        finally:
            self.cpu.release(request)

    # -- fault plumbing --------------------------------------------------------

    def request_abort(self, tid: int, cause: str) -> bool:
        """Doom a running transaction (cascade abort).

        The victim's resident bulk work is cancelled immediately; its
        coordinator process observes the doom at its next decision point
        and runs the shared abort/restart path.  Returns False when the
        transaction is not currently running (already committed, already
        doomed, or between attempts) — such cascades are void and counted
        in :attr:`~repro.metrics.collector.RunMetrics.void_cascades`.
        """
        if tid not in self._running or tid in self._doomed:
            self.metrics.record_void_cascade()
            return False
        self._doomed[tid] = cause
        for node in self.data_nodes:
            node.cancel(tid, kind=cause)
        return True

    def _doom_cause(self, txn: TransactionRuntime,
                    planned_abort: Optional[int]) -> Optional[str]:
        cause = self._doomed.get(txn.tid)
        if cause is not None:
            return cause
        if planned_abort is not None and txn.current_step == planned_abort:
            return "injected"
        return None

    def _retry_delay(self, txn: TransactionRuntime) -> float:
        return self.retry_policy.delay_for(txn.attempts,
                                           self.params.retry_delay)

    # -- transaction lifecycle ----------------------------------------------------

    def transaction_process(self, txn: TransactionRuntime,
                            ) -> Generator[Event, Any, None]:
        """The full life of one BAT; run as an engine process.

        The outer loop exists for restarts: 2PL deadlock victims and
        fault-aborted transactions re-enter from admission with all
        their previous work wasted.  The paper's own schedulers never
        abort by choice, but injected faults can abort any of them.
        """
        env = self.env
        params = self.params
        self._trace(EventType.ARRIVAL, txn)
        restarting = False

        while True:  # one iteration per execution attempt
            # Admission loop: Step 0 aborts are re-submitted after a fixed
            # delay.  Each attempt costs only the scheduler's admission
            # test; startuptime (the 2PC start coordination) is spent once
            # when the transaction actually starts.
            while True:
                response = self.scheduler.admit(txn, env.now)
                yield from self._cpu_work(response.cpu_cost)
                if response.admitted:  # repro-lint: disable=RL009 -- the admission decision is made atomically inside admit() and is binding; the CPU yield models the cost of computing it, not a revalidation window
                    break
                self._trace(EventType.ADMISSION_REJECTED, txn,
                            reason=response.reason)
                txn.reset_for_retry()  # repro-lint: disable=RL013 -- an admission-rejected BAT never started: this re-arms the attempt counter for resubmission; "restart only from aborted" governs BATs that actually ran
                yield env.timeout(params.retry_delay)
            # Admitted: the scheduler now holds state for this tid, so a
            # cascade doom must be able to land from this instant on —
            # before the startup CPU window below, during which a doomed
            # predecessor's abort may already fan out to us.
            self._running.add(txn.tid)
            yield from self._cpu_work(params.startup_time)
            txn.start_time = env.now
            self.active_transactions += 1
            if restarting:
                restarting = False
                self.metrics.record_restart()
            self._trace(EventType.ADMITTED, txn, attempts=txn.attempts + 1)
            if self.history is not None:
                self._grants[txn.tid] = []
            planned_abort = (self.injector.plan_abort(txn)
                             if self.injector is not None else None)

            aborted = False
            abort_cause = _LEGACY_CAUSE
            while not txn.finished_all_steps:
                cause = self._doom_cause(txn, planned_abort)
                if cause is not None:
                    aborted, abort_cause = True, cause
                    break
                granted = False
                while True:
                    response = self.scheduler.request_lock(txn, env.now)
                    yield from self._cpu_work(response.cpu_cost)
                    if response.granted:  # repro-lint: disable=RL009 -- the grant decision is made atomically inside request_lock() and is binding; the CPU yield models the cost of computing it, not a revalidation window
                        granted = True
                        break
                    if response.decision is Decision.ABORT:
                        break
                    kind = (EventType.LOCK_BLOCKED
                            if response.decision is Decision.BLOCK
                            else EventType.LOCK_DELAYED)
                    self._trace(kind, txn, step=txn.current_step,
                                reason=response.reason)
                    self.metrics.record_lock_retry()
                    yield env.timeout(params.retry_delay)
                    cause = self._doom_cause(txn, planned_abort)
                    if cause is not None:
                        break
                if not granted:
                    aborted = True
                    if cause is not None:
                        abort_cause = cause
                    break
                step = txn.step()
                self._trace(EventType.LOCK_GRANTED, txn,
                            step=txn.current_step,
                            partition=step.partition, mode=str(step.mode))
                if self.history is not None:
                    self._grants[txn.tid].append(
                        (step.partition, step.mode, env.now))
                partition = self.catalog.partition(step.partition)
                try:
                    if partition.declustered and len(self.data_nodes) > 1:
                        # Intra-transaction parallelism: the bulk operation
                        # runs on every node at once, in near-equal shares
                        # that sum to exactly step.cost.
                        shares = declustered_shares(step.cost,
                                                    len(self.data_nodes))
                        self._trace(EventType.STEP_DISPATCHED, txn,
                                    step=txn.current_step, node=-1,
                                    objects=step.cost)
                        done = [node.submit(txn, share)
                                for node, share in zip(self.data_nodes,
                                                       shares)]
                        yield self.env.all_of(done)
                    else:
                        node = self.data_nodes[partition.node]
                        self._trace(EventType.STEP_DISPATCHED, txn,
                                    step=txn.current_step, node=node.node_id,
                                    objects=step.cost)
                        yield node.submit(txn, step.cost)
                except FaultError as fault:
                    aborted, abort_cause = True, fault.kind
                    break
                self._trace(EventType.STEP_COMPLETED, txn,
                            step=txn.current_step)
                txn.advance_step()

            if not aborted:
                # An injection point equal to the step count means
                # "between the last step and the commit"; a doom arriving
                # during the final step lands here too.
                if (planned_abort is not None
                        and planned_abort >= len(txn.spec.steps)):
                    aborted, abort_cause = True, "injected"
                else:
                    cause = self._doomed.get(txn.tid)
                    if cause is not None:
                        aborted, abort_cause = True, cause

            if aborted:
                # Every object processed so far is wasted — exactly why
                # the paper's schedulers never abort a BAT by choice.
                successors = self.scheduler.abort_transaction(txn, env.now)
                self._running.discard(txn.tid)
                self._doomed.pop(txn.tid, None)
                for node in self.data_nodes:
                    node.cancel(txn.tid, kind=abort_cause)  # reap leftovers
                self.metrics.record_abort(txn, cause=abort_cause,
                                          now=env.now)
                if abort_cause == _LEGACY_CAUSE:
                    self._trace(EventType.ABORTED, txn,
                                step=txn.current_step,
                                wasted_objects=txn.objects_done)
                else:
                    self._trace(EventType.ABORTED, txn,
                                step=txn.current_step,
                                wasted_objects=txn.objects_done,
                                cause=abort_cause)
                self.active_transactions -= 1
                if self.history is not None:
                    self._grants.pop(txn.tid, None)
                txn.reset_for_retry()
                if self._cascade and successors:
                    for successor in successors:
                        self.request_abort(successor, "cascade")
                restarting = True
                yield env.timeout(self._retry_delay(txn))
                continue

            # Commitment (two-phase commit coordination on the CN).
            yield from self._cpu_work(params.commit_time)
            self.scheduler.commit(txn, env.now)
            txn.commit_time = env.now
            self.active_transactions -= 1
            self._running.discard(txn.tid)
            # A doom that lands during the commit_time CPU window above
            # loses the race (commit wins), but its _doomed entry must
            # not outlive the transaction: it would accumulate forever
            # in cascade-heavy faulty runs.
            self._doomed.pop(txn.tid, None)
            if self.history is not None:
                for partition, mode, granted_at in self._grants.pop(txn.tid):
                    self.history.record(txn.tid, partition, mode,
                                        granted_at, env.now)
            self._trace(EventType.COMMITTED, txn,
                        response_time=txn.response_time())
            self.metrics.record_commit(txn, env.now)
            return

    def _trace(self, kind: EventType, txn: TransactionRuntime,
               **detail: object) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, txn.tid, **detail)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` during which the CN CPU was busy."""
        if elapsed <= 0:
            return 0.0
        return self.cpu.busy_time() / elapsed
