"""The centralized control node (CN).

The CN owns the scheduler (lock table + WTPG) and coordinates every
transaction's lifecycle as the two-phase-commit coordinator:

* start: ``startuptime`` of CPU, then the scheduler's admission test —
  a rejected transaction (ASL preclaim failure, chain-form or K-conflict
  violation) is re-submitted after the fixed retry delay;
* per step: a lock request costed by the scheduler (``ddtime`` /
  ``chaintime`` / ``kwtpgtime``); BLOCK/DELAY responses are re-submitted
  after the retry delay; a granted step ships the transaction to the data
  node holding the partition;
* commit: ``committime`` of CPU, locks released, WTPG node dropped.

The CN's CPU is a single FIFO server, so heavy control traffic queues —
the paper deliberately overstates control cost relative to ``ObjTime`` to
show the schedulers survive it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import SimulationParameters
from repro.core.history import History
from repro.core.schedulers.base import Decision, Scheduler
from repro.core.transaction import LockMode, TransactionRuntime
from repro.engine import Environment, Resource
from repro.machine.data_node import DataNode
from repro.machine.partition import Catalog
from repro.machine.trace import EventType, Tracer
from repro.metrics.collector import MetricsCollector


class ControlNode:
    """CN: admission, locking, dispatch and commitment of every BAT."""

    def __init__(self, env: Environment, params: SimulationParameters,
                 scheduler: Scheduler, catalog: Catalog,
                 data_nodes: List[DataNode], metrics: MetricsCollector,
                 history: Optional[History] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.env = env
        self.params = params
        self.scheduler = scheduler
        self.catalog = catalog
        self.data_nodes = data_nodes
        self.metrics = metrics
        self.history = history
        self.tracer = tracer
        self.cpu = Resource(env, capacity=1)
        self.active_transactions = 0
        # Grant bookkeeping for history validation: tid -> list of
        # (partition, mode, grant time).
        self._grants: Dict[int, List[Tuple[int, LockMode, float]]] = {}

    # -- CPU ------------------------------------------------------------------

    def _cpu_work(self, cost: float):
        """Occupy the CN CPU for ``cost`` clocks (FIFO queueing)."""
        if cost <= 0:
            return
        request = self.cpu.request()
        yield request
        try:
            yield self.env.timeout(cost)
        finally:
            self.cpu.release(request)

    # -- transaction lifecycle ----------------------------------------------------

    def transaction_process(self, txn: TransactionRuntime):
        """The full life of one BAT; run as an engine process.

        The outer loop exists for schedulers that abort deadlock victims
        (2PL): an aborted transaction restarts from admission with all
        its previous work wasted.  The paper's own schedulers never take
        that branch.
        """
        env = self.env
        params = self.params
        self._trace(EventType.ARRIVAL, txn)

        while True:  # one iteration per execution attempt
            # Admission loop: Step 0 aborts are re-submitted after a fixed
            # delay.  Each attempt costs only the scheduler's admission
            # test; startuptime (the 2PC start coordination) is spent once
            # when the transaction actually starts.
            while True:
                response = self.scheduler.admit(txn, env.now)
                yield from self._cpu_work(response.cpu_cost)
                if response.admitted:
                    break
                self._trace(EventType.ADMISSION_REJECTED, txn,
                            reason=response.reason)
                txn.reset_for_retry()
                yield env.timeout(params.retry_delay)
            yield from self._cpu_work(params.startup_time)
            txn.start_time = env.now
            self.active_transactions += 1
            self._trace(EventType.ADMITTED, txn, attempts=txn.attempts + 1)
            if self.history is not None:
                self._grants[txn.tid] = []

            aborted = False
            while not txn.finished_all_steps:
                while True:
                    response = self.scheduler.request_lock(txn, env.now)
                    yield from self._cpu_work(response.cpu_cost)
                    if (response.granted
                            or response.decision is Decision.ABORT):
                        break
                    kind = (EventType.LOCK_BLOCKED
                            if response.decision is Decision.BLOCK
                            else EventType.LOCK_DELAYED)
                    self._trace(kind, txn, step=txn.current_step,
                                reason=response.reason)
                    self.metrics.record_lock_retry()
                    yield env.timeout(params.retry_delay)
                if response.decision is Decision.ABORT:
                    aborted = True
                    break
                step = txn.step()
                self._trace(EventType.LOCK_GRANTED, txn,
                            step=txn.current_step,
                            partition=step.partition, mode=str(step.mode))
                if self.history is not None:
                    self._grants[txn.tid].append(
                        (step.partition, step.mode, env.now))
                partition = self.catalog.partition(step.partition)
                if partition.declustered and len(self.data_nodes) > 1:
                    # Intra-transaction parallelism: the bulk operation
                    # runs on every node at once, in equal shares.
                    share = step.cost / len(self.data_nodes)
                    self._trace(EventType.STEP_DISPATCHED, txn,
                                step=txn.current_step, node=-1,
                                objects=step.cost)
                    done = [node.submit(txn, share)
                            for node in self.data_nodes]
                    yield self.env.all_of(done)
                else:
                    node = self.data_nodes[partition.node]
                    self._trace(EventType.STEP_DISPATCHED, txn,
                                step=txn.current_step, node=node.node_id,
                                objects=step.cost)
                    yield node.submit(txn, step.cost)
                self._trace(EventType.STEP_COMPLETED, txn,
                            step=txn.current_step)
                txn.advance_step()

            if aborted:
                # Deadlock victim: every object processed so far is
                # wasted — exactly why the paper's schedulers never abort
                # a BAT.  Locks were released by the scheduler.
                self.scheduler.abort_transaction(txn, env.now)
                self.metrics.record_abort(txn)
                self._trace(EventType.ABORTED, txn, step=txn.current_step,
                            wasted_objects=txn.objects_done)
                self.active_transactions -= 1
                if self.history is not None:
                    self._grants.pop(txn.tid, None)
                txn.reset_for_retry()
                yield env.timeout(params.retry_delay)
                continue

            # Commitment (two-phase commit coordination on the CN).
            yield from self._cpu_work(params.commit_time)
            self.scheduler.commit(txn, env.now)
            txn.commit_time = env.now
            self.active_transactions -= 1
            if self.history is not None:
                for partition, mode, granted_at in self._grants.pop(txn.tid):
                    self.history.record(txn.tid, partition, mode,
                                        granted_at, env.now)
            self._trace(EventType.COMMITTED, txn,
                        response_time=txn.response_time())
            self.metrics.record_commit(txn, env.now)
            return

    def _trace(self, kind: EventType, txn: TransactionRuntime,
               **detail) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, txn.tid, **detail)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` during which the CN CPU was busy."""
        if elapsed <= 0:
            return 0.0
        return self.cpu.busy_time() / elapsed
