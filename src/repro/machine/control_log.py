"""Per-control-node dependency logging and log replay.

Each control-plane shard appends one :class:`LogRecord` per
state-changing scheduler operation it performs: the *admission* of a
BAT's shard-local sub-declaration, every lock *grant* (with the
precedence *edges* the grant resolved), and the *commit* or *abort* that
excises the BAT again.  Blocked/delayed requests are deliberately absent
— they do not mutate scheduler state, so a log of only the
state-changing operations, replayed in append order, reconstructs the
shard's lock table and WTPG exactly (dependency logging in the sense of
"Scaling Distributed Transaction Processing and Recovery based on
Dependency Logging": the log persists *outcomes* — the dependencies —
not the decision procedure that produced them, so replay never re-runs
an admission constraint or a grant rule).

One deliberate omission, documented in ``docs/control_plane.md``: the
per-object weight-adjustment messages are *not* logged (they would grow
the log with the bulk data volume rather than with the decision count).
A replayed WTPG therefore carries the conservative *declared* source
weights.  That is safe: weights only bias scheduling decisions
(``E(q)``/``W`` ordering), never correctness, and every WTPG invariant —
weight >= due, weight <= declared total, acyclicity, cache consistency —
holds at the declared upper bound.

:meth:`DependencyLog.replay` rebuilds a fresh scheduler from the log and
*proves* consistency before handing it back: ``cache_violations()`` must
be empty and :func:`repro.core.invariants.check_consistency` must pass,
otherwise recovery fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core import builder
from repro.core.invariants import check_consistency
from repro.core.schedulers.base import Scheduler
from repro.core.transaction import LockMode, Step, TransactionSpec
from repro.errors import LockTableError, SchedulerError

# Record kinds, in the only order they can legally appear per (tid,
# attempt): ADMIT, then GRANT/EDGE interleaved, then COMMIT or ABORT.
ADMIT = "admit"
GRANT = "grant"
EDGE = "edge"
COMMIT = "commit"
ABORT = "abort"


@dataclass(frozen=True)
class LogRecord:
    """One append-only dependency-log entry.

    ``steps`` is only populated for ADMIT records (the shard-local
    sub-declaration: partition, mode value, actual cost, declared cost);
    ``step`` only for GRANT records (the shard-local step index);
    ``predecessor``/``successor`` only for EDGE records.
    """

    kind: str
    tid: int
    time: float
    steps: Tuple[Tuple[int, str, float, float], ...] = ()
    step: int = -1
    predecessor: int = -1
    successor: int = -1


class DependencyLog:
    """Append-only dependency log of one control-plane shard.

    The log models the shard's *durable* medium: it survives the shard's
    crash, and — one modelling simplification — surviving coordinators
    may still append ABORT records for transactions they abort while the
    shard is down, so that replay excises them in order.
    """

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.records: List[LogRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    # -- appends ---------------------------------------------------------------

    def append_admit(self, spec: TransactionSpec, now: float) -> None:
        steps = tuple(
            (step.partition, step.mode.value, step.cost,
             step.declared_cost if step.declared_cost is not None
             else step.cost)
            for step in spec.steps)
        self.records.append(LogRecord(ADMIT, spec.tid, now, steps=steps))

    def append_grant(self, tid: int, step_index: int, now: float,
                     resolved: Tuple[Tuple[int, int], ...] = ()) -> None:
        self.records.append(LogRecord(GRANT, tid, now, step=step_index))
        for predecessor, successor in resolved:
            self.records.append(LogRecord(EDGE, tid, now,
                                          predecessor=predecessor,
                                          successor=successor))

    def append_commit(self, tid: int, now: float) -> None:
        self.records.append(LogRecord(COMMIT, tid, now))

    def append_abort(self, tid: int, now: float) -> None:
        self.records.append(LogRecord(ABORT, tid, now))

    # -- replay ----------------------------------------------------------------

    def replay(self, scheduler_factory: Callable[[], Scheduler],
               upto: Optional[int] = None) -> Tuple[Scheduler, int]:
        """Rebuild a fresh scheduler from the log's first ``upto`` records.

        Applies each structural record directly to the new scheduler's
        lock table and WTPG — replay applies logged *outcomes*, it never
        re-decides — and then proves the result consistent
        (``cache_violations()`` empty plus the full invariant suite).
        Returns ``(scheduler, records_replayed)``.
        """
        scheduler = scheduler_factory()
        # Duck-typed (not isinstance) so the factory may hand back a
        # delegating wrapper around a WTPG scheduler — the property
        # harness's invariant-checking proxy does exactly that.
        table = getattr(scheduler, "table", None)
        wtpg = getattr(scheduler, "wtpg", None)
        if table is None or wtpg is None:
            raise SchedulerError(
                f"dependency-log replay requires a WTPG scheduler, got "
                f"{type(scheduler).__name__}")
        replayed = 0
        for record in (self.records if upto is None
                       else self.records[:upto]):
            replayed += 1
            if record.kind == ADMIT:
                spec = TransactionSpec(record.tid, [
                    Step(partition, LockMode(mode), cost,
                         declared_cost=declared)
                    for partition, mode, cost, declared in record.steps])
                table.register(spec)
                builder.add_transaction(wtpg, table, spec)
            elif record.kind == GRANT:
                try:
                    table.grant(record.tid, record.step)
                except LockTableError:
                    # Re-access of an already-held lock whose declaration
                    # an earlier grant consumed — the live path swallows
                    # this too (WTPGScheduler._consume_if_pending).
                    pass
            elif record.kind == EDGE:
                wtpg.resolve(record.predecessor, record.successor)
            elif record.kind == COMMIT:
                builder.remove_transaction(wtpg, table, record.tid)
            elif record.kind == ABORT:
                if record.tid in wtpg:
                    builder.remove_transaction(wtpg, table, record.tid)
                elif table.is_registered(record.tid):
                    table.unregister(record.tid)
            else:
                raise SchedulerError(
                    f"unknown dependency-log record kind {record.kind!r}")
        violations = wtpg.cache_violations()
        if violations:
            raise SchedulerError(
                f"replayed WTPG of CN {self.shard_id} is inconsistent: "
                f"{violations}")
        check_consistency(table, wtpg)
        return scheduler, replayed
