"""Partitions and the catalog of the simulated database.

A *partition* is the locking granule (Section 2.2): one horizontal range
of a relation, sized in objects.  Every 8 consecutive partition ids form
one range-partitioned relation across the 8 nodes; the experiments only
need sizes and placement, so the catalog stores exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Partition:
    """One partition: the unit of locking and of placement.

    A *declustered* partition is spread over every node instead of
    living at one: a bulk operation on it executes on all nodes in
    parallel (intra-transaction parallelism — the alternative placement
    the paper's conclusion points at; it trades higher BAT parallelism
    for the message overhead that hurts short-transaction processing).
    """

    pid: int
    size_objects: float
    node: int
    hot: bool = False
    read_only: bool = False
    declustered: bool = False

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ConfigurationError(f"partition id must be >= 0: {self.pid}")
        if self.size_objects <= 0:
            raise ConfigurationError(
                f"partition P{self.pid} must have positive size")


class Catalog:
    """All partitions of the database plus placement helpers."""

    def __init__(self, partitions: Sequence[Partition]) -> None:
        if not partitions:
            raise ConfigurationError("catalog needs at least one partition")
        self._partitions: Dict[int, Partition] = {}
        for partition in partitions:
            if partition.pid in self._partitions:
                raise ConfigurationError(
                    f"duplicate partition id {partition.pid}")
            self._partitions[partition.pid] = partition

    @classmethod
    def uniform(cls, num_partitions: int, size_objects: float,
                num_nodes: int, declustered: bool = False) -> "Catalog":
        """``num_partitions`` equal partitions placed pid mod num_nodes.

        With ``declustered=True`` every partition is instead spread over
        all nodes (its ``node`` remains the home node for bookkeeping).
        """
        return cls([Partition(pid, size_objects, pid % num_nodes,
                              declustered=declustered)
                    for pid in range(num_partitions)])

    @classmethod
    def hot_set(cls, num_hots: int, hot_size: float, num_readonly: int,
                readonly_size: float, num_nodes: int) -> "Catalog":
        """The Experiment 2/3 layout.

        ``num_readonly`` read-only partitions come first (ids 0..), one
        per node; the following ``num_hots`` ids are the hot set.
        """
        partitions = [
            Partition(pid, readonly_size, pid % num_nodes, read_only=True)
            for pid in range(num_readonly)]
        partitions += [
            Partition(pid, hot_size, pid % num_nodes, hot=True)
            for pid in range(num_readonly, num_readonly + num_hots)]
        return cls(partitions)

    def __len__(self) -> int:
        return len(self._partitions)

    def __contains__(self, pid: int) -> bool:
        return pid in self._partitions

    def partition(self, pid: int) -> Partition:
        try:
            return self._partitions[pid]
        except KeyError:
            raise ConfigurationError(f"unknown partition P{pid}") from None

    def node_of(self, pid: int) -> int:
        return self.partition(pid).node

    def size_of(self, pid: int) -> float:
        return self.partition(pid).size_objects

    @property
    def pids(self) -> List[int]:
        return sorted(self._partitions)

    @property
    def hot_pids(self) -> List[int]:
        return sorted(p.pid for p in self._partitions.values() if p.hot)

    @property
    def read_only_pids(self) -> List[int]:
        return sorted(p.pid for p in self._partitions.values() if p.read_only)

    def partitions_on_node(self, node: int) -> List[Partition]:
        return sorted((p for p in self._partitions.values() if p.node == node),
                      key=lambda p: p.pid)

    def max_node(self) -> int:
        return max(p.node for p in self._partitions.values())
