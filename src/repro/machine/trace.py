"""Structured event tracing for simulation runs.

A :class:`Tracer` records every lifecycle event of every transaction
(arrival, admission attempts, lock requests with their outcomes, step
dispatch/completion, commitment) with its simulation timestamp.  Traces
serve three purposes:

* debugging — ``tracer.timeline(tid)`` shows one transaction's life;
* validation — :func:`validate_trace` checks lifecycle well-formedness
  (used by the integration tests);
* persistence — JSON-lines export/import for offline analysis.

Tracing is off by default (it allocates one record per event); enable it
with ``Cluster(..., tracer=Tracer())``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import SimulationError


class EventType(enum.Enum):
    """Every kind of lifecycle event the machine can emit."""

    ARRIVAL = "arrival"
    ADMISSION_REJECTED = "admission_rejected"
    ADMITTED = "admitted"
    LOCK_GRANTED = "lock_granted"
    LOCK_BLOCKED = "lock_blocked"
    LOCK_DELAYED = "lock_delayed"
    STEP_DISPATCHED = "step_dispatched"
    STEP_COMPLETED = "step_completed"
    ABORTED = "aborted"            # restart: deadlock victim or fault
    COMMITTED = "committed"
    NODE_CRASHED = "node_crashed"      # machine fault; tid is -1
    NODE_RECOVERED = "node_recovered"  # machine fault; tid is -1
    CN_CRASHED = "cn_crashed"          # control-node fault; tid is -1
    CN_RECOVERED = "cn_recovered"      # log replay finished; tid is -1


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped lifecycle event of one transaction."""

    time: float
    kind: EventType
    tid: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"time": self.time, "kind": self.kind.value,
                           "tid": self.tid, "detail": self.detail},
                          sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        raw = json.loads(line)
        return cls(time=float(raw["time"]), kind=EventType(raw["kind"]),
                   tid=int(raw["tid"]), detail=dict(raw.get("detail", {})))


class Tracer:
    """Collects :class:`TraceEvent` records during a run.

    ``sample_rate`` keeps only a deterministic per-transaction subset of
    the lifecycle records: a transaction is either fully traced or fully
    skipped, decided by a hash of its tid (no ambient randomness, so runs
    stay reproducible), and machine-level events (``tid < 0``) are always
    kept.  At the default rate 1.0 the tracer is bit-identical to an
    unsampled one.  ``counters_only`` drops the per-event records
    entirely and keeps only per-kind counts — the cheapest observability
    mode for million-transaction runs (:meth:`summary` still works;
    record queries return nothing).
    """

    #: Knuth's multiplicative hash constant (2^32 / golden ratio).
    _HASH_MULT = 2654435761
    _HASH_SPACE = 1 << 32

    def __init__(self, sample_rate: float = 1.0,
                 counters_only: bool = False) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must lie in [0, 1], got {sample_rate}")
        self.events: List[TraceEvent] = []
        self.counters: Dict[EventType, int] = {}
        self.counters_only = counters_only
        self._sample_rate = sample_rate
        self._threshold = int(sample_rate * self._HASH_SPACE)

    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    @sample_rate.setter
    def sample_rate(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample_rate must lie in [0, 1], got {rate}")
        self._sample_rate = rate
        self._threshold = int(rate * self._HASH_SPACE)

    def wants(self, tid: int) -> bool:
        """Whether events of transaction ``tid`` are recorded."""
        if tid < 0 or self._threshold >= self._HASH_SPACE:
            return True
        return (tid * self._HASH_MULT) % self._HASH_SPACE < self._threshold

    def emit(self, time: float, kind: EventType, tid: int,
             **detail: Any) -> None:
        if self._threshold < self._HASH_SPACE and not self.wants(tid):
            return
        if self.counters_only:
            self.counters[kind] = self.counters.get(kind, 0) + 1
            return
        self.events.append(TraceEvent(time, kind, tid, dict(detail)))

    def __len__(self) -> int:
        return len(self.events)

    # -- queries ---------------------------------------------------------------

    def timeline(self, tid: int) -> List[TraceEvent]:
        """All events of one transaction, in time order."""
        return [e for e in self.events if e.tid == tid]

    def of_kind(self, kind: EventType) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventType) -> int:
        if self.counters_only:
            return self.counters.get(kind, 0)
        return sum(1 for e in self.events if e.kind is kind)

    def transactions(self) -> List[int]:
        return sorted({e.tid for e in self.events})

    def summary(self) -> Dict[str, int]:
        """Event counts per kind (stable key order)."""
        return {kind.value: self.count(kind) for kind in EventType}

    # -- persistence --------------------------------------------------------------

    def dump_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(event.to_json() + "\n")

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "Tracer":
        tracer = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    tracer.events.append(TraceEvent.from_json(line))
        return tracer


def validate_trace(tracer: Tracer) -> None:
    """Check lifecycle well-formedness of every traced transaction.

    Raises :class:`SimulationError` on: time going backwards, events
    before arrival or after commit, commit without admission, or a
    granted step count that does not match dispatch/completion counts.

    Counts are per execution *attempt*: an ABORTED event (deadlock or
    injected fault) may legitimately leave a dispatch without its
    completion — the step died mid-flight — so the counters reset at
    each abort and the commit-time checks cover only the final,
    successful attempt.  Machine-level events (node crashes; ``tid``
    < 0) have no transaction lifecycle and are skipped.
    """
    for tid in tracer.transactions():
        if tid < 0:
            continue  # machine-level fault events, not a transaction
        events = tracer.timeline(tid)
        last_time = float("-inf")
        seen_arrival = seen_admit = seen_commit = False
        grants = dispatches = completions = 0
        for event in events:
            if event.time < last_time:
                raise SimulationError(
                    f"T{tid}: time went backwards at {event.kind.value}")
            last_time = event.time
            if seen_commit:
                raise SimulationError(
                    f"T{tid}: event {event.kind.value} after commit")
            if event.kind is EventType.ARRIVAL:
                if seen_arrival:
                    raise SimulationError(f"T{tid}: duplicate arrival")
                seen_arrival = True
                continue
            if not seen_arrival:
                raise SimulationError(
                    f"T{tid}: {event.kind.value} before arrival")
            if event.kind is EventType.ADMITTED:
                seen_admit = True
            elif event.kind is EventType.ABORTED:
                if not seen_admit:
                    raise SimulationError(
                        f"T{tid}: abort before admission")
                # A restart begins: the next attempt must re-admit, and
                # this attempt's grant/dispatch counts die with it (a
                # fault may have killed a step between dispatch and
                # completion).
                seen_admit = False
                grants = dispatches = completions = 0
            elif event.kind is EventType.COMMITTED:
                if not seen_admit:
                    raise SimulationError(f"T{tid}: commit without admission")
                seen_commit = True
            elif event.kind in (EventType.LOCK_GRANTED,):
                if not seen_admit:
                    raise SimulationError(
                        f"T{tid}: lock grant before admission")
                grants += 1
            elif event.kind is EventType.STEP_DISPATCHED:
                dispatches += 1
            elif event.kind is EventType.STEP_COMPLETED:
                completions += 1
        if seen_commit:
            if dispatches != completions:
                raise SimulationError(
                    f"T{tid}: {dispatches} dispatches vs "
                    f"{completions} completions")
            if grants < dispatches:
                raise SimulationError(
                    f"T{tid}: {dispatches} dispatches with only "
                    f"{grants} grants")
