"""The simulated shared-nothing database machine (Section 4.1, Figure 5).

One centralized control node (CN) owns the lock table / WTPG and
coordinates two-phase commitment; ``NumNodes`` data-processing nodes (DN)
execute bulk work one *object* at a time in round-robin among resident
transactions, sending a weight-adjustment message to the CN after every
object.  Partitions are placed at ``node = partition_id mod NumNodes``
(range partitioning of each relation across all nodes), which is exactly
the placement that makes a single BAT's load unbalanced and concurrent
BATs necessary.
"""

from repro.machine.partition import Catalog, Partition
from repro.machine.data_node import DataNode
from repro.machine.control_node import ControlNode
from repro.machine.cluster import Cluster, SimulationResult, run_simulation

__all__ = [
    "Catalog",
    "Cluster",
    "ControlNode",
    "DataNode",
    "Partition",
    "SimulationResult",
    "run_simulation",
]
