"""The simulated shared-nothing database machine (Section 4.1, Figure 5).

One centralized control node (CN) owns the lock table / WTPG and
coordinates two-phase commitment; ``NumNodes`` data-processing nodes (DN)
execute bulk work one *object* at a time in round-robin among resident
transactions, sending a weight-adjustment message to the CN after every
object.  Partitions are placed at ``node = partition_id mod NumNodes``
(range partitioning of each relation across all nodes), which is exactly
the placement that makes a single BAT's load unbalanced and concurrent
BATs necessary.

``num_control_nodes > 1`` replaces the centralized CN with a sharded
:class:`ControlPlane` (:mod:`repro.machine.shard`): partition ``p`` is
controlled by CN ``p mod num_control_nodes``, cross-shard BATs commit by
2PC among their participant CNs, and each CN keeps an append-only
:class:`DependencyLog` (:mod:`repro.machine.control_log`) from which a
crashed CN's lock table and WTPG are replayed.
"""

from repro.machine.partition import Catalog, Partition
from repro.machine.data_node import DataNode
from repro.machine.control_node import ControlNode
from repro.machine.control_log import DependencyLog, LogRecord
from repro.machine.shard import ControlPlane, ControlShard
from repro.machine.cluster import Cluster, SimulationResult, run_simulation

__all__ = [
    "Catalog",
    "Cluster",
    "ControlNode",
    "ControlPlane",
    "ControlShard",
    "DataNode",
    "DependencyLog",
    "LogRecord",
    "Partition",
    "SimulationResult",
    "run_simulation",
]
