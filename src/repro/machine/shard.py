"""The sharded control plane: multiple CNs, 2PC, crash recovery.

With ``num_control_nodes > 1`` the single centralized CN of
:mod:`repro.machine.control_node` is replaced by a *control plane* of
:class:`ControlShard` s.  Each shard owns the lock table + WTPG slice for
a partition range — partition ``p`` is controlled by CN ``p mod
num_control_nodes``, the same modulo placement the data layer uses for
partitions over data nodes — plus its own FIFO CPU and an append-only
:class:`~repro.machine.control_log.DependencyLog`.

A BAT whose steps touch several shards is coordinated by
:meth:`ControlPlane.transaction_process`:

* **admission** runs independently on every participant shard against a
  shard-local *sub-declaration* (the subsequence of steps on that
  shard's partitions); the global verdict is the conjunction
  (:func:`~repro.core.schedulers.base.merge_admission_responses`), each
  shard's admission cost is spent on its *own* CPU in parallel, and a
  globally rejected BAT rolls its local admissions back;
* **lock requests** route to the shard owning the step's partition and
  are costed on that shard's CPU; per-object weight-adjustment messages
  go to the same shard;
* **commitment** of a cross-shard BAT is a two-phase commit among its
  participant CNs: a prepare round and a commit round, each costing
  ``committime`` on every participant's CPU in parallel.  A single-shard
  BAT commits exactly like the centralized machine (one ``committime``
  on its home CN, no 2PC rounds).

Crash/recovery (:class:`~repro.faults.plan.ControlCrash`): a crashed
shard loses its volatile scheduler state.  BATs *homed* on it (home =
shard of the first step) are doomed through the ordinary restart path;
surviving BATs that merely hold locks there stall — lock requests and
commits retry until the shard replays its dependency log into a fresh
scheduler (:meth:`ControlPlane.recover_shard`), which is proved
consistent before it serves again.  Two modelling simplifications,
documented in ``docs/control_plane.md``: the dependency log is durable
and stays reachable (surviving coordinators append their ABORTs to a
down shard's log), and weight decrements lost with the crash leave the
replayed WTPG at conservative declared weights.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Generator, List, Optional, Set,
                    Tuple)

from repro.config import SimulationParameters
from repro.core.history import History
from repro.core.schedulers.base import (AdmissionResponse, Decision,
                                        Scheduler,
                                        merge_admission_responses)
from repro.core.transaction import (LockMode, Step, TransactionRuntime,
                                    TransactionSpec)
from repro.engine import Environment, Event, Resource
from repro.errors import FaultError, SchedulerError
from repro.faults.injector import FaultInjector
from repro.faults.plan import RetryPolicy
from repro.machine.control_log import DependencyLog
from repro.machine.control_node import _LEGACY_CAUSE, declustered_shares
from repro.machine.data_node import DataNode
from repro.machine.partition import Catalog
from repro.machine.trace import EventType, Tracer
from repro.metrics.collector import MetricsCollector


class ControlShard:
    """One control node of the sharded plane: CPU, scheduler, log."""

    def __init__(self, shard_id: int, env: Environment,
                 scheduler: Scheduler) -> None:
        self.shard_id = shard_id
        self.env = env
        self.scheduler: Optional[Scheduler] = scheduler
        self.log = DependencyLog(shard_id)
        self.cpu = Resource(env, capacity=1)
        self.crashed = False
        self.crashed_at = 0.0

    @property
    def live(self) -> Scheduler:
        """The shard's scheduler; raises if the shard is down."""
        if self.scheduler is None:
            raise SchedulerError(f"CN {self.shard_id} is down")
        return self.scheduler

    def cpu_work(self, cost: float) -> Generator[Event, Any, None]:
        """Occupy this shard's CPU for ``cost`` clocks (FIFO queueing)."""
        if cost <= 0:
            return
        request = self.cpu.request()
        yield request
        try:
            yield self.env.timeout(cost)
        finally:
            self.cpu.release(request)

    def crash(self, now: float) -> None:
        """Lose the volatile scheduler state; only the log survives."""
        self.crashed = True
        self.crashed_at = now
        self.scheduler = None

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` during which this CN's CPU was busy."""
        if elapsed <= 0:
            return 0.0
        return self.cpu.busy_time() / elapsed


class ControlPlane:
    """Shard map plus the cross-shard transaction coordinator."""

    def __init__(self, env: Environment, params: SimulationParameters,
                 scheduler_factory: Callable[[], Scheduler],
                 catalog: Catalog, data_nodes: List[DataNode],
                 metrics: MetricsCollector,
                 history: Optional[History] = None,
                 tracer: Optional[Tracer] = None,
                 injector: Optional[FaultInjector] = None) -> None:
        self.env = env
        self.params = params
        self.scheduler_factory = scheduler_factory
        self.catalog = catalog
        self.data_nodes = data_nodes
        self.metrics = metrics
        self.history = history
        self.tracer = tracer
        self.injector = injector
        self.shards = [ControlShard(sid, env, scheduler_factory())
                       for sid in range(params.num_control_nodes)]
        self.active_transactions = 0
        # Grant bookkeeping for history validation: tid -> list of
        # (partition, mode, grant time); mirrors ControlNode.
        self._grants: Dict[int, List[Tuple[int, LockMode, float]]] = {}
        # Fault bookkeeping: admitted-but-uncommitted tids, tids doomed
        # with their condemning cause, and each tid's home shard (set at
        # first arrival, constant across attempts).
        self._running: Set[int] = set()
        self._doomed: Dict[int, str] = {}
        self._home: Dict[int, int] = {}
        plan = injector.plan if injector is not None else None
        self._cascade = plan.cascade if plan is not None else False
        if plan is not None and plan.retry is not None:
            self.retry_policy = plan.retry
        else:
            self.retry_policy = RetryPolicy(
                kind=params.retry_policy,
                cap=params.retry_backoff_cap or None)

    # -- shard map ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, partition: int) -> int:
        """The CN controlling ``partition`` (modulo placement)."""
        return partition % self.num_shards

    def utilizations(self, elapsed: float) -> List[float]:
        """Per-CN CPU utilization over ``elapsed`` clocks."""
        return [shard.utilization(elapsed) for shard in self.shards]

    def _project(self, spec: TransactionSpec,
                 ) -> Tuple[List[int], Dict[int, TransactionSpec]]:
        """Split a declaration into per-shard sub-declarations.

        Returns ``(route, sub_specs)``: ``route[i]`` is the shard owning
        global step ``i``, and ``sub_specs[sid]`` is the order-preserving
        subsequence of steps on shard ``sid``'s partitions.  Shard-local
        step indices are exactly each sub-runtime's own ``current_step``,
        advanced in lockstep with the global one.
        """
        route: List[int] = []
        steps_by_shard: Dict[int, List[Step]] = {}
        for step in spec.steps:
            sid = self.shard_of(step.partition)
            route.append(sid)
            steps_by_shard.setdefault(sid, []).append(step)
        sub_specs = {sid: TransactionSpec(spec.tid, steps, label=spec.label)
                     for sid, steps in steps_by_shard.items()}
        return route, sub_specs

    # -- fault plumbing --------------------------------------------------------

    def request_abort(self, tid: int, cause: str) -> bool:
        """Doom a running transaction (cascade abort); see ControlNode."""
        if tid not in self._running or tid in self._doomed:
            self.metrics.record_void_cascade()
            return False
        self._doom(tid, cause)
        return True

    def _doom(self, tid: int, cause: str) -> None:
        """Condemn ``tid`` unconditionally (internal: CN crashes may doom
        transactions that are mid-admission and not yet ``_running``)."""
        self._doomed[tid] = cause
        for node in self.data_nodes:
            node.cancel(tid, kind=cause)

    def crash_shard(self, sid: int) -> List[int]:
        """Kill CN ``sid``; returns the tids doomed by the crash.

        Only BATs *homed* on the dead shard die — their coordinator
        state is gone.  BATs merely holding locks there survive: their
        slice of the shard's state is rebuilt by log replay, and their
        coordinators stall any request to the dead shard until then.
        """
        shard = self.shards[sid]
        if shard.crashed:
            return []
        # Duck-typed (not isinstance) so delegating wrappers — e.g. the
        # property harness's invariant-checking proxy — count too.
        wtpg = getattr(shard.scheduler, "wtpg", None)
        registered: List[int] = (sorted(wtpg.transactions)
                                 if wtpg is not None else [])
        doomed: List[int] = []
        for tid in registered:
            if self._home.get(tid) == sid and tid not in self._doomed:
                self._doom(tid, "cn_crash")
                doomed.append(tid)
        shard.crash(self.env.now)
        return doomed

    def recover_shard(self, sid: int) -> int:
        """Replay CN ``sid``'s dependency log into a fresh scheduler.

        The replayed scheduler is proved consistent inside
        :meth:`~repro.machine.control_log.DependencyLog.replay`
        (``cache_violations()`` empty plus the invariant suite) before
        the shard serves again.  Returns the number of records replayed.
        """
        shard = self.shards[sid]
        if not shard.crashed:
            raise SchedulerError(f"CN {sid} is not crashed")
        scheduler, replayed = shard.log.replay(self.scheduler_factory)
        shard.scheduler = scheduler
        shard.crashed = False
        self.metrics.record_recovery(replayed,
                                     self.env.now - shard.crashed_at)
        return replayed

    def _doom_cause(self, txn: TransactionRuntime,
                    planned_abort: Optional[int]) -> Optional[str]:
        cause = self._doomed.get(txn.tid)
        if cause is not None:
            return cause
        if planned_abort is not None and txn.current_step == planned_abort:
            return "injected"
        return None

    def _retry_delay(self, txn: TransactionRuntime) -> float:
        return self.retry_policy.delay_for(txn.attempts,
                                           self.params.retry_delay)

    # -- weight-adjustment routing ---------------------------------------------

    def note_objects(self, txn: TransactionRuntime, objects: float) -> None:
        """Per-object weight-adjustment message for the current step.

        Routed to the CN controlling the executing step's partition —
        the only shard whose WTPG slice carries this work as source
        weight.  If that shard is down the message is dropped (the
        replayed WTPG keeps the conservative declared weight), but the
        transaction's own progress bookkeeping still happens.
        """
        shard = self.shards[self.shard_of(txn.step().partition)]
        if shard.crashed or shard.scheduler is None:
            txn.note_object_processed(objects)
            return
        shard.scheduler.object_processed(txn, objects)

    def note_objects_batch(self, txn: TransactionRuntime,
                           full_quanta: int) -> None:
        """Coalesced whole-object messages; see :meth:`note_objects`."""
        shard = self.shards[self.shard_of(txn.step().partition)]
        if shard.crashed or shard.scheduler is None:
            txn.note_objects_batch(full_quanta)
            return
        shard.scheduler.object_processed_batch(txn, full_quanta)

    # -- transaction lifecycle -------------------------------------------------

    def transaction_process(self, txn: TransactionRuntime,
                            ) -> Generator[Event, Any, None]:
        """The full life of one BAT under the sharded control plane.

        Mirrors :meth:`ControlNode.transaction_process` step for step —
        same trace shapes, same metric hooks, same restart path — with
        every scheduler consultation routed to the owning shard and
        cross-shard commitment run as 2PC among the participants.
        """
        env = self.env
        params = self.params
        tid = txn.tid
        route, sub_specs = self._project(txn.spec)
        sids = sorted(sub_specs)
        home = route[0]
        self._home[tid] = home
        self._trace(EventType.ARRIVAL, txn)
        restarting = False

        while True:  # one iteration per execution attempt
            # Fresh per-shard sub-runtimes each attempt: shard-local step
            # progress restarts from zero exactly like the global runtime.
            sub_rts = {sid: TransactionRuntime(sub_specs[sid],
                                               arrival_time=txn.arrival_time)
                       for sid in sids}

            # Admission: every participant shard must admit.  The
            # per-shard decisions are taken atomically (no yields between
            # them); the costs are then spent on the shards' CPUs in
            # parallel.  Log records are appended at decision time, before
            # any CPU yield, so a shard crashing mid-window has already
            # made its admission durable.
            while True:
                down = [sid for sid in sids if self.shards[sid].crashed]
                if down:
                    # Can't even consult the dead shard — reject without
                    # touching (or charging) anybody, retry later.
                    response = AdmissionResponse(
                        False, reason=f"CN {down[0]} down")
                else:
                    responses = {}
                    for sid in sids:
                        responses[sid] = self.shards[sid].live.admit(
                            sub_rts[sid], env.now)
                        if responses[sid].admitted:
                            self.shards[sid].log.append_admit(
                                sub_rts[sid].spec, env.now)
                    response = merge_admission_responses(
                        [responses[sid] for sid in sids])
                    costed = [
                        env.process(self.shards[sid].cpu_work(
                            responses[sid].cpu_cost))
                        for sid in sids if responses[sid].cpu_cost > 0]
                    if costed:
                        yield env.all_of(costed)
                    if not response.admitted:
                        # Roll back the shards that did admit; their logs
                        # get the matching ABORT so replay excises them.
                        for sid in sids:
                            if not responses[sid].admitted:
                                continue
                            shard = self.shards[sid]
                            if shard.scheduler is not None:
                                shard.scheduler.abort_transaction(
                                    sub_rts[sid], env.now)
                            shard.log.append_abort(tid, env.now)
                if response.admitted:  # repro-lint: disable=RL009 -- each shard's admission decision is made atomically inside admit() and is binding; the CPU yield models the cost of computing it, not a revalidation window
                    break
                self._trace(EventType.ADMISSION_REJECTED, txn,
                            reason=response.reason)
                txn.reset_for_retry()  # repro-lint: disable=RL013 -- an admission-rejected BAT never started: this re-arms the attempt counter for resubmission; "restart only from aborted" governs BATs that actually ran
                yield env.timeout(params.retry_delay)
                sub_rts = {sid: TransactionRuntime(
                    sub_specs[sid], arrival_time=txn.arrival_time)
                    for sid in sids}
            # Admitted on every shard: a cascade doom must be able to
            # land from this instant on — before the startup CPU window
            # below (same fix as the centralized CN).
            self._running.add(tid)
            yield from self.shards[home].cpu_work(params.startup_time)
            txn.start_time = env.now
            self.active_transactions += 1
            if restarting:
                restarting = False
                self.metrics.record_restart()
            self._trace(EventType.ADMITTED, txn, attempts=txn.attempts + 1)
            if self.history is not None:
                self._grants[tid] = []
            planned_abort = (self.injector.plan_abort(txn)
                             if self.injector is not None else None)

            aborted = False
            abort_cause = _LEGACY_CAUSE
            while not txn.finished_all_steps:
                cause = self._doom_cause(txn, planned_abort)
                if cause is not None:
                    aborted, abort_cause = True, cause
                    break
                sid = route[txn.current_step]
                sub = sub_rts[sid]
                granted = False
                while True:
                    shard = self.shards[sid]
                    if shard.crashed or shard.scheduler is None:
                        # The owning CN is down: stall until it replays
                        # its log (blocking, like the 2PC below).
                        self._trace(EventType.LOCK_DELAYED, txn,
                                    step=txn.current_step,
                                    reason=f"CN {sid} down")
                        self.metrics.record_lock_retry()
                        yield env.timeout(params.retry_delay)
                        cause = self._doom_cause(txn, planned_abort)
                        if cause is not None:
                            break
                        continue
                    response = shard.scheduler.request_lock(sub, env.now)
                    if response.granted:
                        # Log the grant (and the precedence edges it
                        # resolved) at decision time, before the CPU
                        # yield below.
                        resolved = getattr(shard.scheduler,
                                           "last_resolved", ())
                        shard.log.append_grant(tid, sub.current_step,
                                               env.now, resolved)
                    yield from shard.cpu_work(response.cpu_cost)
                    if response.granted:  # repro-lint: disable=RL009 -- the grant decision is made atomically inside request_lock() and is binding; the CPU yield models the cost of computing it, not a revalidation window
                        granted = True
                        break
                    if response.decision is Decision.ABORT:
                        break
                    kind = (EventType.LOCK_BLOCKED
                            if response.decision is Decision.BLOCK
                            else EventType.LOCK_DELAYED)
                    self._trace(kind, txn, step=txn.current_step,
                                reason=response.reason)
                    self.metrics.record_lock_retry()
                    yield env.timeout(params.retry_delay)
                    cause = self._doom_cause(txn, planned_abort)
                    if cause is not None:
                        break
                if not granted:
                    aborted = True
                    if cause is not None:
                        abort_cause = cause
                    break
                step = txn.step()
                self._trace(EventType.LOCK_GRANTED, txn,
                            step=txn.current_step,
                            partition=step.partition, mode=str(step.mode))
                if self.history is not None:
                    self._grants[tid].append(
                        (step.partition, step.mode, env.now))
                partition = self.catalog.partition(step.partition)
                try:
                    if partition.declustered and len(self.data_nodes) > 1:
                        shares = declustered_shares(step.cost,
                                                    len(self.data_nodes))
                        self._trace(EventType.STEP_DISPATCHED, txn,
                                    step=txn.current_step, node=-1,
                                    objects=step.cost)
                        done = [node.submit(txn, share)
                                for node, share in zip(self.data_nodes,
                                                       shares)]
                        yield env.all_of(done)
                    else:
                        node = self.data_nodes[partition.node]
                        self._trace(EventType.STEP_DISPATCHED, txn,
                                    step=txn.current_step,
                                    node=node.node_id, objects=step.cost)
                        yield node.submit(txn, step.cost)
                except FaultError as fault:
                    aborted, abort_cause = True, fault.kind
                    break
                self._trace(EventType.STEP_COMPLETED, txn,
                            step=txn.current_step)
                sub.advance_step()
                txn.advance_step()

            if not aborted:
                if (planned_abort is not None
                        and planned_abort >= len(txn.spec.steps)):
                    aborted, abort_cause = True, "injected"
                else:
                    cause = self._doomed.get(tid)
                    if cause is not None:
                        aborted, abort_cause = True, cause

            if not aborted:
                # Commitment.  A cross-shard BAT runs two-phase commit
                # among its participant CNs (prepare round + commit
                # round, each costing committime on every participant's
                # CPU in parallel); a single-shard BAT commits like the
                # centralized machine.  2PC blocks on a dead participant:
                # the coordinator waits for recovery and retries the
                # rounds — unless the crash doomed this BAT, which wins.
                while True:
                    cause = self._doomed.get(tid)
                    if cause is not None:
                        aborted, abort_cause = True, cause
                        break
                    if any(self.shards[sid].crashed for sid in sids):
                        yield env.timeout(params.retry_delay)
                        continue
                    if len(sids) > 1:
                        for _ in range(2):  # prepare, then commit
                            rounds = [
                                env.process(self.shards[sid].cpu_work(
                                    params.commit_time))
                                for sid in sids]
                            yield env.all_of(rounds)
                            self.metrics.record_2pc_round()
                        if any(self.shards[sid].crashed for sid in sids):
                            continue  # participant died mid-2PC: block
                    else:
                        yield from self.shards[home].cpu_work(
                            params.commit_time)
                        if self.shards[home].crashed:
                            continue
                    # Apply + log the commit atomically (no yields): a
                    # crash can never observe a half-committed BAT.
                    for sid in sids:
                        self.shards[sid].live.commit(sub_rts[sid], env.now)
                        self.shards[sid].log.append_commit(tid, env.now)
                    break

            if aborted:
                # Excise from every participant shard.  A dead shard
                # can't be consulted, but its durable log still takes
                # the ABORT record, so replay excises the victim there
                # too (modelling simplification, see the module doc).
                successors: Set[int] = set()
                for sid in sids:
                    shard = self.shards[sid]
                    if shard.scheduler is not None:
                        successors.update(shard.scheduler.abort_transaction(
                            sub_rts[sid], env.now))
                    shard.log.append_abort(tid, env.now)
                self._running.discard(tid)
                self._doomed.pop(tid, None)
                for node in self.data_nodes:
                    node.cancel(tid, kind=abort_cause)  # reap leftovers
                self.metrics.record_abort(txn, cause=abort_cause,
                                          now=env.now)
                if abort_cause == _LEGACY_CAUSE:
                    self._trace(EventType.ABORTED, txn,
                                step=txn.current_step,
                                wasted_objects=txn.objects_done)
                else:
                    self._trace(EventType.ABORTED, txn,
                                step=txn.current_step,
                                wasted_objects=txn.objects_done,
                                cause=abort_cause)
                self.active_transactions -= 1
                if self.history is not None:
                    self._grants.pop(tid, None)
                txn.reset_for_retry()  # repro-lint: disable=RL013 -- the schedulers saw the per-shard sub-runtimes abort (abort_transaction above); the global runtime is the coordinator's aggregate view, re-armed exactly once per aborted attempt
                if self._cascade and successors:
                    for successor in sorted(successors):
                        self.request_abort(successor, "cascade")
                restarting = True
                yield env.timeout(self._retry_delay(txn))
                continue

            txn.commit_time = env.now
            self.active_transactions -= 1
            self._running.discard(tid)
            self._doomed.pop(tid, None)
            self._home.pop(tid, None)
            if self.history is not None:
                for partition, mode, granted_at in self._grants.pop(tid):
                    self.history.record(tid, partition, mode,
                                        granted_at, env.now)
            self._trace(EventType.COMMITTED, txn,
                        response_time=txn.response_time())  # repro-lint: disable=RL013 -- commit() was applied to the per-shard sub-runtimes; the global runtime reaches this line only after every participant shard committed
            self.metrics.record_commit(txn, env.now)
            return

    def _trace(self, kind: EventType, txn: TransactionRuntime,
               **detail: object) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, txn.tid, **detail)
