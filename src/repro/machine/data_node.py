"""Data-processing node (DN) model.

Section 4.1: a DN executes resident transactions in round-robin, one
*object* at a time — when a transaction finishes the bulk processing of
one object the DN switches to the next waiting transaction, and the
finished transaction's weight-adjustment message goes to the control
node.  ``ObjTime`` is the per-object service time; a fractional trailing
quantum (e.g. the 0.2-object write of Pattern1) takes proportionally
less.

The simple single-server model is the paper's own justification: a bulk
operation runs as a processor-disk pipeline and is I/O-bound, so one
object at a time per node captures the resource contention that matters.

Fault support (:mod:`repro.faults`): a node can :meth:`crash` — every
resident step fails with :class:`~repro.errors.FaultError` and new
submissions are refused until :meth:`recover` — and individual
transactions can be :meth:`cancel`-led (cascade aborts).  A crash or
cancellation takes effect at the current quantum boundary: the in-flight
object's I/O still occupies the device, but its result is discarded (no
weight-adjustment message, no progress).  I/O slowdown windows stack
multiplicatively via :meth:`apply_slowdown`; with no active factors the
service-time arithmetic is bit-identical to the fault-free model.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from repro.core.transaction import TransactionRuntime
from repro.engine import Environment, Event
from repro.errors import FaultError

# Tolerance when deciding a step's remaining object count is exhausted.
_EPSILON = 1e-9

ObjectCallback = Callable[[TransactionRuntime, float], None]


class _WorkItem:
    """One step of one transaction being bulk-processed at this node."""

    __slots__ = ("txn", "remaining", "done", "cancelled")

    def __init__(self, txn: TransactionRuntime, objects: float,
                 done: Event) -> None:
        self.txn = txn
        self.remaining = objects
        self.done = done
        self.cancelled = False


class DataNode:
    """One data-processing node: round-robin object quanta."""

    def __init__(self, env: Environment, node_id: int, obj_time: float,
                 on_objects: Optional[ObjectCallback] = None) -> None:
        if obj_time <= 0:
            raise ValueError(f"obj_time must be positive, got {obj_time}")
        self.env = env
        self.node_id = node_id
        self.obj_time = obj_time
        self.on_objects = on_objects or (lambda txn, n: None)
        self.busy_time = 0.0
        self.objects_processed = 0.0
        self.messages_sent = 0
        self.crashed = False
        self._queue: Deque[_WorkItem] = deque()
        self._current: Optional[_WorkItem] = None
        self._wakeup: Optional[Event] = None
        self._recovered: Optional[Event] = None
        self._slow_factors: List[float] = []
        self._process = env.process(self._run())

    @property
    def resident_transactions(self) -> int:
        """Transactions currently multiplexed on this node."""
        return len(self._queue) + (1 if self._current is not None else 0)

    def submit(self, txn: TransactionRuntime, objects: float) -> Event:
        """Enqueue a step of ``objects`` bulk work; event fires when done."""
        done = self.env.event()
        if self.crashed:
            done.fail(FaultError(
                f"node {self.node_id} is down", kind="crash"))
            return done
        if objects <= _EPSILON:
            # Degenerate step (e.g. an erroneous declaration clipped to 0
            # actual work): complete immediately.
            done.succeed()
            return done
        self._queue.append(_WorkItem(txn, objects, done))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return done

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent bulk-processing."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    # -- faults ----------------------------------------------------------------

    def crash(self) -> int:
        """Fail every resident step; refuse work until :meth:`recover`.

        Returns the number of steps killed.  The in-flight quantum (if
        any) still finishes occupying the device, but its result is
        discarded.
        """
        self.crashed = True
        victims = list(self._queue)
        self._queue.clear()
        if self._current is not None and not self._current.cancelled:
            self._current.cancelled = True
            victims.append(self._current)
        for item in victims:
            if not item.done.triggered:
                item.done.fail(FaultError(
                    f"node {self.node_id} crashed under "
                    f"T{item.txn.tid}", kind="crash"))
        # Wake the server loop so it parks in the crashed state.
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return len(victims)

    def recover(self) -> None:
        """Bring a crashed node back into service (empty queue)."""
        self.crashed = False
        if self._recovered is not None and not self._recovered.triggered:
            self._recovered.succeed()

    def cancel(self, tid: int, kind: str = "injected") -> int:
        """Fail transaction ``tid``'s resident steps (cascade abort).

        Returns the number of steps killed; 0 when the transaction has
        nothing resident here.
        """
        victims = [item for item in self._queue if item.txn.tid == tid]
        if victims:
            self._queue = deque(item for item in self._queue
                                if item.txn.tid != tid)
        current = self._current
        if (current is not None and current.txn.tid == tid
                and not current.cancelled):
            current.cancelled = True
            victims.append(current)
        for item in victims:
            if not item.done.triggered:
                item.done.fail(FaultError(
                    f"T{tid} cancelled at node {self.node_id}", kind=kind))
        return len(victims)

    def apply_slowdown(self, factor: float) -> None:
        """Stack an I/O slowdown factor (composes multiplicatively)."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive: {factor}")
        self._slow_factors.append(factor)

    def clear_slowdown(self, factor: float) -> None:
        """Remove one previously applied slowdown factor."""
        self._slow_factors.remove(factor)

    def _service_time(self, quantum: float) -> float:
        service = quantum * self.obj_time
        for factor in self._slow_factors:
            service *= factor
        return service

    # -- the server loop --------------------------------------------------------

    def _run(self) -> Generator[Event, Any, None]:
        while True:
            if self.crashed:
                self._recovered = self.env.event()
                yield self._recovered
                self._recovered = None
                continue
            if not self._queue:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            item = self._queue.popleft()
            self._current = item
            quantum = min(1.0, item.remaining)
            service = self._service_time(quantum)
            yield self.env.timeout(service)
            self._current = None
            self.busy_time += service
            if item.cancelled:
                # Killed mid-quantum: the device time is spent, the
                # result is discarded (no message, no progress).
                continue
            self.objects_processed += quantum
            self.messages_sent += 1  # weight-adjustment message to the CN
            self.on_objects(item.txn, quantum)
            item.remaining -= quantum
            if item.remaining > _EPSILON:
                self._queue.append(item)  # round-robin: go to the back
            else:
                item.done.succeed()
