"""Data-processing node (DN) model.

Section 4.1: a DN executes resident transactions in round-robin, one
*object* at a time — when a transaction finishes the bulk processing of
one object the DN switches to the next waiting transaction, and the
finished transaction's weight-adjustment message goes to the control
node.  ``ObjTime`` is the per-object service time; a fractional trailing
quantum (e.g. the 0.2-object write of Pattern1) takes proportionally
less.

The simple single-server model is the paper's own justification: a bulk
operation runs as a processor-disk pipeline and is I/O-bound, so one
object at a time per node captures the resource contention that matters.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.core.transaction import TransactionRuntime
from repro.engine import Environment, Event

# Tolerance when deciding a step's remaining object count is exhausted.
_EPSILON = 1e-9

ObjectCallback = Callable[[TransactionRuntime, float], None]


class _WorkItem:
    """One step of one transaction being bulk-processed at this node."""

    __slots__ = ("txn", "remaining", "done")

    def __init__(self, txn: TransactionRuntime, objects: float,
                 done: Event) -> None:
        self.txn = txn
        self.remaining = objects
        self.done = done


class DataNode:
    """One data-processing node: round-robin object quanta."""

    def __init__(self, env: Environment, node_id: int, obj_time: float,
                 on_objects: Optional[ObjectCallback] = None) -> None:
        if obj_time <= 0:
            raise ValueError(f"obj_time must be positive, got {obj_time}")
        self.env = env
        self.node_id = node_id
        self.obj_time = obj_time
        self.on_objects = on_objects or (lambda txn, n: None)
        self.busy_time = 0.0
        self.objects_processed = 0.0
        self.messages_sent = 0
        self._queue: Deque[_WorkItem] = deque()
        self._wakeup: Optional[Event] = None
        self._process = env.process(self._run())

    @property
    def resident_transactions(self) -> int:
        """Transactions currently multiplexed on this node."""
        return len(self._queue)

    def submit(self, txn: TransactionRuntime, objects: float) -> Event:
        """Enqueue a step of ``objects`` bulk work; event fires when done."""
        done = self.env.event()
        if objects <= _EPSILON:
            # Degenerate step (e.g. an erroneous declaration clipped to 0
            # actual work): complete immediately.
            done.succeed()
            return done
        self._queue.append(_WorkItem(txn, objects, done))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return done

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent bulk-processing."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    def _run(self):
        while True:
            if not self._queue:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            item = self._queue.popleft()
            quantum = min(1.0, item.remaining)
            service = quantum * self.obj_time
            yield self.env.timeout(service)
            self.busy_time += service
            self.objects_processed += quantum
            self.messages_sent += 1  # weight-adjustment message to the CN
            self.on_objects(item.txn, quantum)
            item.remaining -= quantum
            if item.remaining > _EPSILON:
                self._queue.append(item)  # round-robin: go to the back
            else:
                item.done.succeed()
