"""Data-processing node (DN) model.

Section 4.1: a DN executes resident transactions in round-robin, one
*object* at a time — when a transaction finishes the bulk processing of
one object the DN switches to the next waiting transaction, and the
finished transaction's weight-adjustment message goes to the control
node.  ``ObjTime`` is the per-object service time; a fractional trailing
quantum (e.g. the 0.2-object write of Pattern1) takes proportionally
less.

The simple single-server model is the paper's own justification: a bulk
operation runs as a processor-disk pipeline and is I/O-bound, so one
object at a time per node captures the resource contention that matters.

Two bit-identical server loops implement the model:

* ``mode="reference"`` — the literal loop: one engine timeout per object
  quantum.  At 10^5-10^6 bulk transactions that is tens of millions of
  Python-level heap events.
* ``mode="batched"`` (default) — between scheduler events the round-robin
  interleaving is fully determined, so quanta whose end lies strictly
  before the next pending engine event are *pre-played* arithmetically
  and only one timeout per window is yielded (see :meth:`_run_batched`
  for the equivalence argument).  Statistics, message counts, weight
  adjustments and all event orderings are bit-identical to the
  reference loop; ``tests/machine/test_node_equivalence.py`` proves it
  under every scheduler and fault plan.

Fault support (:mod:`repro.faults`): a node can :meth:`crash` — every
resident step fails with :class:`~repro.errors.FaultError` and new
submissions are refused until :meth:`recover` — and individual
transactions can be :meth:`cancel`-led (cascade aborts).  A crash or
cancellation takes effect at the current quantum boundary: the in-flight
object's I/O still occupies the device, but its result is discarded (no
weight-adjustment message, no progress).  I/O slowdown windows stack
multiplicatively via :meth:`apply_slowdown`, which returns a
:class:`SlowdownToken` handle that :meth:`clear_slowdown` takes back —
two numerically equal windows from different fault-plan entries cannot
remove each other.  With no active factors the service-time arithmetic
is bit-identical to the fault-free model.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.core.transaction import TransactionRuntime
from repro.engine import Environment, Event
from repro.engine.core import register_hot_class
from repro.errors import FaultError

# Tolerance when deciding a step's remaining object count is exhausted.
_EPSILON = 1e-9

# Cap on the mirror-replay length in _completion_bound.  Replays cut off
# here return the boundary reached so far — still a sound (just less
# deep) lower bound on the node's first completion.
_BOUND_CAP = 4096

ObjectCallback = Callable[[TransactionRuntime, float], None]
BatchCallback = Callable[[TransactionRuntime, int], None]

NODE_MODES = ("batched", "reference")


@register_hot_class
class _WorkItem:
    """One step of one transaction being bulk-processed at this node."""

    __slots__ = ("txn", "remaining", "done", "cancelled")

    def __init__(self, txn: TransactionRuntime, objects: float,
                 done: Event) -> None:
        self.txn = txn
        self.remaining = objects
        self.done = done
        self.cancelled = False


@register_hot_class
class SlowdownToken:
    """Handle for one active I/O slowdown window on one node."""

    __slots__ = ("factor", "_active")

    def __init__(self, factor: float) -> None:
        self.factor = factor
        self._active = True


class DataNode:
    """One data-processing node: round-robin object quanta."""

    def __init__(self, env: Environment, node_id: int, obj_time: float,
                 on_objects: Optional[ObjectCallback] = None,
                 on_objects_batch: Optional[BatchCallback] = None,
                 mode: str = "batched") -> None:
        if obj_time <= 0:
            raise ValueError(f"obj_time must be positive, got {obj_time}")
        if mode not in NODE_MODES:
            raise ValueError(f"node mode must be one of {NODE_MODES}, "
                             f"got {mode!r}")
        self.env = env
        self.node_id = node_id
        # Coerced so the integral-exactness fast paths can use
        # float.is_integer (callers may pass an int).
        self.obj_time = float(obj_time)
        self.mode = mode
        self.on_objects = on_objects or (lambda txn, n: None)
        # The coalesced form of ``k`` whole-object callbacks.  The
        # fallback loop is always bit-identical; the cluster wires this
        # to Scheduler.object_processed_batch, which coalesces exactly.
        self.on_objects_batch = on_objects_batch or self._loop_on_objects
        self.busy_time = 0.0
        self.objects_processed = 0.0
        self.messages_sent = 0
        self.crashed = False
        self._queue: Deque[_WorkItem] = deque()
        self._current: Optional[_WorkItem] = None
        self._wakeup: Optional[Event] = None
        self._recovered: Optional[Event] = None
        self._slow_factors: List[SlowdownToken] = []
        if mode == "batched":
            # Per-node horizons: the batched loop classifies its yielded
            # quantum events as inert/non-inert so concurrent nodes can
            # pre-play across each other's internal boundaries.
            env.enable_affect_tracking()
        self._process = env.process(
            self._run_batched() if mode == "batched" else self._run())

    def _loop_on_objects(self, txn: TransactionRuntime,
                         full_quanta: int) -> None:
        for _ in range(full_quanta):
            self.on_objects(txn, 1.0)

    @property
    def resident_transactions(self) -> int:
        """Transactions currently multiplexed on this node."""
        return len(self._queue) + (1 if self._current is not None else 0)

    def submit(self, txn: TransactionRuntime, objects: float) -> Event:
        """Enqueue a step of ``objects`` bulk work; event fires when done."""
        done = self.env.event()
        if self.crashed:
            done.fail(FaultError(
                f"node {self.node_id} is down", kind="crash"))
            return done
        if objects <= _EPSILON:
            # Degenerate step (e.g. an erroneous declaration clipped to 0
            # actual work): complete immediately.
            done.succeed()
            return done
        self._queue.append(_WorkItem(txn, objects, done))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return done

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent bulk-processing."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    # -- faults ----------------------------------------------------------------

    def crash(self) -> int:
        """Fail every resident step; refuse work until :meth:`recover`.

        Returns the number of steps actually killed — steps whose
        ``done`` event already triggered (completion or a racing
        cancellation in the same instant) are not counted.  The
        in-flight quantum (if any) still finishes occupying the device,
        but its result is discarded.
        """
        self.crashed = True
        victims = list(self._queue)
        self._queue.clear()
        if self._current is not None and not self._current.cancelled:
            self._current.cancelled = True
            victims.append(self._current)
        killed = 0
        for item in victims:
            if not item.done.triggered:
                item.done.fail(FaultError(
                    f"node {self.node_id} crashed under "
                    f"T{item.txn.tid}", kind="crash"))
                killed += 1
        # Wake the server loop so it parks in the crashed state.
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return killed

    def recover(self) -> None:
        """Bring a crashed node back into service (empty queue)."""
        self.crashed = False
        if self._recovered is not None and not self._recovered.triggered:
            self._recovered.succeed()

    def cancel(self, tid: int, kind: str = "injected") -> int:
        """Fail transaction ``tid``'s resident steps (cascade abort).

        Returns the number of steps actually killed (steps whose
        ``done`` already triggered are skipped and not counted); 0 when
        the transaction has nothing resident here.
        """
        victims = [item for item in self._queue if item.txn.tid == tid]
        if victims:
            self._queue = deque(item for item in self._queue
                                if item.txn.tid != tid)
        current = self._current
        if (current is not None and current.txn.tid == tid
                and not current.cancelled):
            current.cancelled = True
            victims.append(current)
        killed = 0
        for item in victims:
            if not item.done.triggered:
                item.done.fail(FaultError(
                    f"T{tid} cancelled at node {self.node_id}", kind=kind))
                killed += 1
        return killed

    def apply_slowdown(self, factor: float) -> SlowdownToken:
        """Stack an I/O slowdown factor (composes multiplicatively).

        Returns a token that :meth:`clear_slowdown` takes back, so two
        numerically equal windows stay distinguishable.
        """
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive: {factor}")
        token = SlowdownToken(factor)
        self._slow_factors.append(token)
        return token

    def clear_slowdown(self, token: SlowdownToken) -> None:
        """Remove one previously applied slowdown window by its token."""
        if not token._active or token not in self._slow_factors:
            raise ValueError("slowdown token is not active on this node")
        token._active = False
        self._slow_factors.remove(token)

    def _service_time(self, quantum: float) -> float:
        service = quantum * self.obj_time
        for token in self._slow_factors:
            service *= token.factor
        return service

    # -- the reference server loop ---------------------------------------------

    def _run(self) -> Generator[Event, Any, None]:
        """One engine timeout per object quantum — the literal model."""
        while True:
            if self.crashed:
                self._recovered = self.env.event()
                yield self._recovered
                self._recovered = None
                continue
            if not self._queue:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            item = self._queue.popleft()
            self._current = item
            quantum = min(1.0, item.remaining)
            service = self._service_time(quantum)
            # sort_rank pins exact-time ties between different nodes'
            # quanta to node order — the same arithmetic-only key the
            # batched loop uses — so tie resolution is mode-invariant.
            yield self.env.timeout_until(self.env.now + service,
                                         sort_rank=self.node_id + 1)
            self._current = None
            self.busy_time += service
            # Killed mid-quantum: the device time is spent, the result
            # is discarded (no message, no progress).
            if item.cancelled:  # repro-lint: disable=RL009 -- _WorkItem is node-private (only this loop mutates its fields) and this read IS the post-yield cancellation re-check; cancel() only sets the flag tested here
                continue
            self.objects_processed += quantum
            self.messages_sent += 1  # weight-adjustment message to the CN
            self.on_objects(item.txn, quantum)
            item.remaining -= quantum
            if item.remaining > _EPSILON:
                self._queue.append(item)  # round-robin: go to the back
            else:
                item.done.succeed()

    # -- the batched server loop -----------------------------------------------
    #
    # Equivalence argument (each decision point at time t0, with
    # horizon = env.affecting_horizon(): the earliest pending
    # *non-inert* event, the smallest ``affect`` bound of a pending
    # inert event, or the active run(until=) cutoff, whichever comes
    # first — the cutoff is an observation instant too, since the run
    # stops there and counters are read):
    #
    # * Quanta whose end falls *strictly before* the horizon and that do
    #   not complete their item are pre-played: nothing that could reach
    #   this node fires inside that span, so accounting them early is
    #   unobservable; the boundary times are accumulated with the
    #   identical float additions the reference timeouts would have
    #   produced.
    # * The first quantum that completes an item or whose end reaches
    #   the horizon is *yielded* as one timeout at its absolute end time
    #   (``timeout_until`` — ``t + (e - t)`` is not bit-exact).
    #   Completions must be yielded because ``done.succeed()`` wakes the
    #   control node; horizon-crossing quanta must be yielded because a
    #   foreign event may cancel/crash mid-quantum, which the resume
    #   handles exactly as the reference loop does.
    # * A yielded *non-completing* quantum is declared inert, carrying
    #   an ``affect`` bound from :meth:`_completion_bound`: a mirror
    #   replay (same float ops the real loop will execute) of this
    #   node's round-robin up to its first step completion, under the
    #   conditions holding at yield time.  Soundness: the bound is valid
    #   as long as conditions hold, and everything that changes them —
    #   a submission, a cancel, a crash, a slowdown edge — originates
    #   from a *non-inert* event, which caps every other actor's horizon
    #   by itself.  So another node pre-playing up to min(affect bounds,
    #   non-inert horizon) can never run past a completion this node
    #   actually produces.  Firing inert events do perturb one thing
    #   inside a foreign pre-play window: the interleaving of per-object
    #   weight-adjustment callbacks between nodes.  That reordering is
    #   value-exact, because every pre-played/inert quantum is a *whole*
    #   object — the callbacks subtract exactly-representable integers
    #   from positive doubles (see note_objects_batch), and any
    #   interleaving of such exact clamped subtractions on the same or
    #   independent accumulators yields bit-identical final values.  No
    #   control decision can observe an intermediate ordering: decision
    #   points live on non-inert events, outside every window.
    # * Same-time tie order is *mode-invariant by construction*: both
    #   loops order their quantum events by (when, sort_time, sort_rank)
    #   where sort_time is the quantum's start boundary and sort_rank
    #   the node id.  All three are pure arithmetic — identical float
    #   chains in both modes — and a node has at most one pending event,
    #   so a comparison involving a node event never falls through to
    #   the engine's schedule-order counter (the one quantity that *does*
    #   differ between modes: a batched window draws its yielded event
    #   at the window start, the reference loop at the quantum start).
    #   Exact-time ties — common, not exotic: two equal-size steps
    #   granted at one control instant onto nodes with the same obj_time
    #   produce fully aligned boundary chains — therefore resolve
    #   identically in both modes.
    # * When the horizon equals t0 (another event is pending in this
    #   very instant — e.g. a completion cascade that may submit here),
    #   no pre-play happens and the loop degrades to the reference
    #   single-quantum behaviour.
    #
    # The pre-play accounting coalesces the per-object callback chain
    # (scheduler weight adjustment) through on_objects_batch, which is
    # exact for whole quanta; fractional quanta always terminate an item
    # and therefore always travel the yielded path.

    def _run_batched(self) -> Generator[Event, Any, None]:
        env = self.env
        while True:
            if self.crashed:
                self._recovered = env.event()
                yield self._recovered
                self._recovered = None
                continue
            if not self._queue:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            item = self._queue.popleft()
            self._current = item
            t = env.now
            horizon = env.affecting_horizon()
            if horizon > t:
                if not self._queue and not self._slow_factors:
                    item, t = self._preplay_single(item, t, horizon)
                else:
                    item, t = self._preplay_rr(item, t, horizon)
            # The yielded quantum: bit-identical to one reference
            # iteration (same service value, same absolute end instant,
            # same cancellation check at resume).  Non-completing quanta
            # are inert: their resumption is invisible to every other
            # actor until this node's earliest possible completion.
            quantum = min(1.0, item.remaining)
            service = self._service_time(quantum)
            end = t + service
            if item.remaining - quantum > _EPSILON:
                yield env.timeout_until(
                    end, affect=self._completion_bound(end, item, quantum),
                    sort_time=t, sort_rank=self.node_id + 1)
            else:
                yield env.timeout_until(end, sort_time=t,
                                        sort_rank=self.node_id + 1)
            self._current = None
            self.busy_time += service
            if item.cancelled:  # repro-lint: disable=RL009 -- _WorkItem is node-private (only this loop and the pre-play helpers mutate its fields) and this read IS the post-yield cancellation re-check; cancel() only sets the flag tested here
                continue
            self.objects_processed += quantum
            self.messages_sent += 1
            self.on_objects(item.txn, quantum)
            item.remaining -= quantum
            if item.remaining > _EPSILON:
                self._queue.append(item)
            else:
                item.done.succeed()

    def _completion_bound(self, end: float, item: _WorkItem,
                          quantum: float) -> float:
        """Lower bound on this node's first step completion after ``end``.

        A *mirror replay*: runs the exact float operations the live loop
        will execute — the queued remainders in order, the yielded item's
        post-quantum remainder at the back, ``min(1.0, r)`` quanta
        serviced via :meth:`_service_time` — until the first quantum that
        completes its item, and returns that completion's boundary.
        Because it replays the real arithmetic rather than approximating
        it (e.g. ``remaining * service`` can exceed the additive boundary
        chain by ulps), the bound is bit-exact under constant conditions;
        every condition change originates at a non-inert event that caps
        foreign horizons independently (see the equivalence argument
        above).  Capped at ``_BOUND_CAP`` quanta: a truncated replay
        returns the last boundary reached, which precedes the first
        completion and is therefore still sound.
        """
        seq: Deque[float] = deque(it.remaining for it in self._queue)
        seq.append(item.remaining - quantum)
        t = end
        for _ in range(_BOUND_CAP):
            r = seq.popleft()
            q = min(1.0, r)
            t += self._service_time(q)
            r -= q
            if r <= _EPSILON:
                return t
            seq.append(r)
        return t

    def _preplay_single(self, item: _WorkItem, t: float,
                        horizon: float) -> Tuple[_WorkItem, float]:
        """Coalesced pre-play: sole resident item, no slowdown factors.

        Counts the run of whole, non-completing quanta ending strictly
        before ``horizon``, then accounts them in one go.  The boundary
        times and the remaining-object countdown replay the reference
        loop's float additions one by one (additions may round at
        exponent crossings, so they cannot be coalesced); the *integer*
        aggregate updates use a single arithmetic step only where that
        is provably exact.
        """
        svc = self.obj_time
        rem = item.remaining
        n = 0
        # A quantum is pre-playable iff it is whole and leaves work
        # behind (rem - 1.0 > eps, i.e. the reference loop would have
        # re-queued the item) and its end stays below the horizon.
        while rem - 1.0 > _EPSILON:
            e = t + svc
            if e >= horizon:
                break
            t = e
            rem -= 1.0
            n += 1
        if n:
            item.remaining = rem
            busy = self.busy_time
            if busy.is_integer() and svc.is_integer():
                self.busy_time = busy + svc * n
            else:
                for _ in range(n):
                    busy += svc
                self.busy_time = busy
            objs = self.objects_processed
            if objs.is_integer():
                self.objects_processed = objs + n
            else:
                for _ in range(n):
                    objs += 1.0
                self.objects_processed = objs
            self.messages_sent += n
            self.on_objects_batch(item.txn, n)
        return item, t

    def _preplay_rr(self, item: _WorkItem, t: float,
                    horizon: float) -> Tuple[_WorkItem, float]:
        """General pre-play: several residents and/or slowdown factors.

        Replays the reference round-robin quantum by quantum (service
        recomputed per quantum, per-object callback per quantum) but
        without engine timeouts.  Stops at the first quantum that either
        completes its item or reaches the horizon; that quantum is
        returned for the caller to yield.
        """
        queue = self._queue
        while True:
            quantum = min(1.0, item.remaining)
            service = self._service_time(quantum)
            e = t + service
            if e >= horizon or item.remaining - quantum <= _EPSILON:
                return item, t
            t = e
            self.busy_time += service
            self.objects_processed += quantum
            self.messages_sent += 1
            self.on_objects(item.txn, quantum)
            item.remaining -= quantum
            queue.append(item)
            item = queue.popleft()
            self._current = item
