"""The paper's primary contribution: WTPG-based concurrency control.

This package is independent of the simulator: it contains the transaction
model (Section 2.2), the partition lock table, the Weighted Transaction
Precedence Graph (Section 3.1), the chain-form machinery and optimiser used
by the CHAIN scheduler (Section 3.2 + appendix), the local contention
estimator ``E(q)`` used by the K-WTPG scheduler (Section 3.3), and the seven
schedulers evaluated in Section 4.
"""

from repro.core.transaction import LockMode, Step, TransactionSpec, TransactionRuntime
from repro.core.locks import Declaration, LockTable
from repro.core.wtpg import WTPG
from repro.core.chain import chain_components, is_chain_form
from repro.core.chain_opt import ChainPair, optimise_chain, chain_critical_path
from repro.core.estimator import ContentionBatch, estimate_contention

__all__ = [
    "ChainPair",
    "ContentionBatch",
    "Declaration",
    "LockMode",
    "LockTable",
    "Step",
    "TransactionRuntime",
    "TransactionSpec",
    "WTPG",
    "chain_components",
    "chain_critical_path",
    "estimate_contention",
    "is_chain_form",
    "optimise_chain",
]
