"""Wiring between the lock table and the WTPG.

When a transaction starts it declares its steps; this module derives the
WTPG node and pair edges that Section 3.1 prescribes:

* the node gets source weight ``w(T0 -> Ti) = due(s_0)`` (its declared
  total);
* for every conflicting pair of declarations between the newcomer ``Ti``
  and an active ``Tj``, the pair edge's directed weights are raised to the
  ``due`` values of the conflicting steps (max over all conflicting step
  pairs);
* if ``Tj`` already *holds* a lock conflicting with one of ``Ti``'s
  declarations, the serialization order is already forced (the holder
  keeps the lock until commit, so it must precede the newcomer): the pair
  is created pre-resolved ``Tj -> Ti``.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.core.locks import LockTable
from repro.core.transaction import LockMode, TransactionSpec
from repro.core.wtpg import WTPG
from repro.errors import WTPGError


def conflict_partners(table: LockTable, spec: TransactionSpec) -> Set[int]:
    """Active transactions with at least one declaration conflicting with spec.

    Must be called *after* ``table.register(spec)`` — it inspects the
    registered declarations of ``spec.tid``.
    """
    partners: Set[int] = set()
    own = table.declarations_of(spec.tid)
    # Sorted for deterministic iteration (RL001), matching add_transaction.
    for other_tid in sorted(table.active_transactions):
        if other_tid == spec.tid:
            continue
        if table.conflicting_transactions(own, other_tid):
            partners.add(other_tid)
    return partners


def add_transaction(wtpg: WTPG, table: LockTable,
                    spec: TransactionSpec) -> Set[int]:
    """Insert ``spec`` into the WTPG with all pair edges and weights.

    The transaction must already be registered in ``table``.  Returns the
    set of conflict partners (useful for chain-form / K-conflict admission
    tests).  Pairs against holders of conflicting locks are pre-resolved
    ``holder -> newcomer``.
    """
    tid = spec.tid
    if not table.is_registered(tid):
        raise WTPGError(f"T{tid} must be registered in the lock table first")
    wtpg.add_transaction(tid, spec.declared_total)

    own = table.declarations_of(tid)
    partners: Set[int] = set()
    for other_tid in sorted(table.active_transactions):
        if other_tid == tid or other_tid not in wtpg:
            continue
        conflicts = table.conflicting_transactions(own, other_tid)
        if not conflicts:
            continue
        partners.add(other_tid)
        edge = wtpg.ensure_pair(tid, other_tid)
        forced = False
        for mine, theirs in conflicts:
            # w(other -> me) = due of my conflicting step, and vice versa.
            edge.raise_weight_to(tid, mine.due)
            edge.raise_weight_to(other_tid, theirs.due)
            if table.is_granted(theirs):
                forced = True
        if forced:
            # The holder commits before the newcomer can take the lock.
            wtpg.resolve(other_tid, tid)
    return partners


def remove_transaction(wtpg: WTPG, table: LockTable, tid: int) -> None:
    """Drop ``tid`` from both structures (commit or admission abort)."""
    wtpg.remove_transaction(tid)
    table.unregister(tid)


def implied_resolutions(table: LockTable, wtpg: WTPG, tid: int,
                        partition: int,
                        mode: LockMode) -> Tuple[Tuple[int, int], ...]:
    """Resolutions forced by granting ``tid`` a lock on ``partition``.

    Every other active transaction with a pending conflicting declaration
    on the partition must now follow ``tid`` (it can only take that lock
    after ``tid`` commits).  Returned as ``(tid, other)`` pairs; pairs
    already resolved the same way are included (resolving is idempotent),
    pairs resolved the *other* way are included too — callers treat those
    as predicted deadlocks.

    The result is a sorted *tuple* so it is hashable as-is: the K-WTPG
    scheduler keys its E-value cache on it.
    """
    seen: Set[int] = set()
    out: List[Tuple[int, int]] = []
    for decl in table.pending_conflicts(tid, partition, mode):
        if decl.tid in seen or decl.tid not in wtpg:
            continue
        seen.add(decl.tid)
        out.append((tid, decl.tid))
    return tuple(sorted(out, key=lambda pair: pair[1]))
