"""K-WTPG — the K-conflict WTPG scheduler (CC2, Section 3.3).

Local optimisation: a lock request ``q`` is granted only when its
contention estimate ``E(q)`` (see :mod:`repro.core.estimator`) is the
smallest among the conflicting lock-declarations ``C(q)``.  Requests that
would deadlock (``E(q) = inf``) are delayed.

The K-conflict constraint bounds ``|C(q)|``: each lock-declaration may
conflict with at most K others; a new transaction violating this is
aborted at start and re-submitted.  The paper evaluates K = 2 ("K2").
Unlike CHAIN, any *shape* of WTPG is accepted.

``k_count_mode`` selects what "K others" counts: ``"transactions"``
(default — distinct conflicting transactions; reproduces the paper's
measured Experiment 4 hybrid ordering) or ``"declarations"`` (the
paper's literal wording; stricter on read-then-upgrade patterns, which
declare two conflicting locks per rival).  See EXPERIMENTS.md for the
calibration evidence.

Control saving (Section 3.4): ``E`` values are cached and reused until
``keeptime`` elapses, a transaction starts or commits, or a new precedence
edge is generated.  Cache entries are keyed by the candidate's full
identity — ``(tid, step_index, implied resolutions)`` — because the
implied-resolution set of the *same* declaration can change within one
keeptime window without any invalidating event (e.g. a rival's pending
declaration is consumed by an already-held re-access, which creates no
precedence edge).

``estimator_mode`` selects the E(q) evaluation strategy: ``"overlay"``
(default — copy-free delta view over the live WTPG, one shared
:class:`~repro.core.estimator.ContentionBatch` per decision) or
``"reference"`` (the legacy deep-copy evaluation, kept for differential
testing).  Both produce identical values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core import builder
from repro.core.estimator import (INFINITE_CONTENTION, ContentionBatch,
                                  estimate_contention)
from repro.core.locks import Declaration
from repro.core.schedulers.base import (ControlSaver, Decision, LockResponse,
                                        WTPGScheduler)
from repro.core.transaction import TransactionRuntime

_EKey = Tuple[int, int, Tuple[Tuple[int, int], ...]]


class KWTPGScheduler(WTPGScheduler):
    """CC2: grant q only when E(q) is minimal in C(q); K-conflict admitted."""

    name = "K-WTPG"

    def __init__(self, k: int = 2, kwtpgtime: float = 10.0,
                 keeptime: float = 5000.0,
                 admission_time: float = 5.0,
                 k_count_mode: str = "transactions",
                 estimator_mode: str = "overlay") -> None:
        if k < 0:
            raise ValueError(f"K must be non-negative, got {k}")
        if estimator_mode not in ("overlay", "reference"):
            raise ValueError(
                f"estimator_mode must be 'overlay' or 'reference', "
                f"got {estimator_mode!r}")
        super().__init__()
        self.k = k
        self.kwtpgtime = kwtpgtime
        self.admission_time = admission_time
        self.k_count_mode = k_count_mode
        self.estimator_mode = estimator_mode
        self._saver = ControlSaver(keeptime)
        # Cache of E values keyed by (tid, step_index, implied resolutions).
        self._e_cache: Dict[_EKey, float] = {}
        # Deferral graph: tid -> rivals its last delay deferred to.
        self._deferred_to: Dict[int, Set[int]] = {}

    def _admission_cost(self) -> float:
        return self.admission_time

    # -- admission: the K-conflict constraint --------------------------------

    def _admission_constraint(self, txn: TransactionRuntime,
                              partners: Set[int], now: float) -> Optional[str]:
        touched = set(txn.spec.partitions)
        if self.table.k_conflict_violated(self.k, partitions=touched,
                                          count=self.k_count_mode):
            return f"K-conflict constraint (K={self.k}) violated"
        return None

    def _after_admit(self, txn: TransactionRuntime, now: float) -> None:
        self._invalidate()

    def _after_commit(self, txn: TransactionRuntime, now: float) -> None:
        self._invalidate()

    def _on_new_precedence_edge(self, now: float) -> None:
        self._invalidate()  # condition 3) of the control-saving rule

    def _after_abort(self, txn: TransactionRuntime, now: float) -> None:
        # The E-cache and the deferral graph may both reference the
        # victim; stale entries would key decisions on a dead node.
        self._invalidate()

    def _invalidate(self) -> None:
        self._saver.invalidate()
        self._e_cache.clear()
        self._deferred_to.clear()

    # -- the E-minimality grant rule -------------------------------------------

    def _evaluate_grant(self, txn: TransactionRuntime,
                        implied: Sequence[Tuple[int, int]],
                        now: float) -> LockResponse:
        step = txn.step()
        cost = 0.0

        # One overlay base shared by the request and every rival candidate
        # this decision evaluates: the base-graph acyclicity verdict and
        # the live graph's memoized closures are established once.
        batch = (ContentionBatch(self.wtpg)
                 if self.estimator_mode == "overlay" else None)

        e_q, extra = self._estimate(txn.tid, txn.current_step, implied, now,
                                    batch)
        cost += extra
        if e_q == INFINITE_CONTENTION:
            self.stats.deadlock_predictions += 1
            return LockResponse(Decision.DELAY, cpu_cost=cost,
                                reason="E(q) infinite: predicted deadlock")

        competitors = self._earliest_per_rival(
            self.table.pending_conflicts(txn.tid, step.partition, step.mode))
        for decl in competitors:
            e_rival, extra = self._estimate_declaration(decl, now, batch)
            cost += extra
            if e_rival < e_q:
                if self._would_close_deferral_cycle(txn.tid, decl.tid):
                    break  # granting beats a certain standoff
                self._deferred_to.setdefault(txn.tid, set()).add(decl.tid)
                return LockResponse(
                    Decision.DELAY, cpu_cost=cost,
                    reason=f"E(q)={e_q:g} not minimal: T{decl.tid}'s "
                           f"declaration has E={e_rival:g}")
        self._deferred_to.pop(txn.tid, None)
        return LockResponse(Decision.GRANT, cpu_cost=cost)

    @staticmethod
    def _earliest_per_rival(
            declarations: Iterable[Declaration]) -> List[Declaration]:
        """Each rival's earliest pending conflicting declaration on the
        requested granule.

        A transaction issues its steps in order, so on one granule the
        only request a rival can make next is its earliest pending
        declaration there; later ones would double-count the same rival
        with (misleadingly low) E values — the first livelock our
        property suite found.  Cross-granule livelocks (each transaction
        deferred to a declaration the other can only issue after the
        very step being delayed) are handled separately by the
        deferral-cycle breaker in :meth:`_evaluate_grant`.
        """
        earliest: Dict[int, Declaration] = {}
        for decl in declarations:
            kept = earliest.get(decl.tid)
            if kept is None or decl.step_index < kept.step_index:
                earliest[decl.tid] = decl
        return [earliest[tid] for tid in sorted(earliest)]

    def _would_close_deferral_cycle(self, tid: int, rival: int) -> bool:
        """True if deferring ``tid`` to ``rival`` closes a wait cycle.

        The E-minimality rule can deadlock *itself*: T defers to a
        declaration of Tj while Tj (transitively) defers to a
        declaration of T — none of them is lock-blocked, yet none can be
        granted, and since nothing changes, no weight adjustment ever
        breaks the standoff.  The paper does not consider this case; we
        grant the request that would close the cycle (its delay could
        help nobody).  Deferral edges are cleared whenever the schedule
        changes (start/commit/new precedence edge), so stale edges can
        at worst cause one early grant.
        """
        seen: Set[int] = set()
        stack = [rival]
        while stack:
            node = stack.pop()
            if node == tid:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._deferred_to.get(node, ()))
        return False

    def _estimate(self, tid: int, step_index: int,
                  implied: Sequence[Tuple[int, int]], now: float,
                  batch: Optional[ContentionBatch] = None,
                  ) -> Tuple[float, float]:
        """E value for a (tid, step) with given implications, plus CPU cost."""
        key = (tid, step_index, tuple(implied))
        if not self._saver.stale(now) and key in self._e_cache:
            return self._e_cache[key], 0.0
        if self._saver.stale(now):
            # A fresh computation round starts: drop every stale value.
            self._e_cache.clear()
            self._saver.mark_computed(now)
        if batch is not None:
            value = batch.estimate(tid, implied)
        else:
            value = estimate_contention(
                self.wtpg, tid, implied,
                reference=self.estimator_mode == "reference")
        self._e_cache[key] = value
        self.stats.estimator_calls += 1
        return value, self.kwtpgtime

    def _estimate_declaration(self, decl: Declaration, now: float,
                              batch: Optional[ContentionBatch] = None,
                              ) -> Tuple[float, float]:
        """E for a rival pending declaration, granted hypothetically now."""
        implied = builder.implied_resolutions(
            self.table, self.wtpg, decl.tid, decl.partition, decl.mode)
        return self._estimate(decl.tid, decl.step_index, implied, now, batch)
