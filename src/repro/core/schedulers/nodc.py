"""NODC — NO Data Contention.

Grants any lock at any time: transactions proceed as if every conflict
were invisible.  This deliberately breaks serializability; the paper uses
it purely to expose the resource-contention-only upper bound of the
machine ("for clarifying the upper bound of performance"), and Experiment
1 reads the useful-utilization ratio of real schedulers against NODC's
throughput.
"""

from __future__ import annotations

from repro.core.schedulers.base import (AdmissionResponse, Decision,
                                        LockResponse, Scheduler)
from repro.core.transaction import TransactionRuntime


class NoDataContention(Scheduler):
    """The contention-free upper bound; not a correct scheduler."""

    name = "NODC"

    def _admit(self, txn: TransactionRuntime, now: float) -> AdmissionResponse:
        return AdmissionResponse(True)

    def _request_lock(self, txn: TransactionRuntime,
                      now: float) -> LockResponse:
        return LockResponse(Decision.GRANT, reason="nodc")

    def _commit(self, txn: TransactionRuntime, now: float) -> None:
        pass
