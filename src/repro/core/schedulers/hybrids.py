"""Experiment 4 lower-bound hybrids: CHAIN-C2PL and K2-C2PL.

Each is plain C2PL *plus only the admission constraint* of the
corresponding WTPG scheduler — chain-form for CHAIN-C2PL, K-conflict for
K2-C2PL — with no use of weights when granting.  The paper uses them to
separate how much of CHAIN's / K-WTPG's advantage comes from the
admission constraint alone versus from weight-guided optimisation:
CHAIN-C2PL stays strong (the chain-form constraint itself avoids most
chains of blocking), K2-C2PL collapses (K-WTPG's power is in the
weights).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.chain import would_remain_chain_form
from repro.core.schedulers.c2pl import CautiousTwoPhaseLock
from repro.core.transaction import TransactionRuntime


class ChainC2PL(CautiousTwoPhaseLock):
    """C2PL restricted to chain-form WTPGs (no weight optimisation)."""

    name = "CHAIN-C2PL"

    def __init__(self, ddtime: float = 5.0, admission_time: float = 5.0) -> None:
        super().__init__(ddtime=ddtime, admission_time=admission_time)

    def _admission_constraint(self, txn: TransactionRuntime,
                              partners: Set[int], now: float) -> Optional[str]:
        if not would_remain_chain_form(self.wtpg, txn.tid, partners):
            return "WTPG would not be chain-form"
        return None


class KConflictC2PL(CautiousTwoPhaseLock):
    """C2PL restricted by the K-conflict constraint (no weights)."""

    name = "K2-C2PL"

    def __init__(self, k: int = 2, ddtime: float = 5.0,
                 admission_time: float = 5.0,
                 k_count_mode: str = "transactions") -> None:
        super().__init__(ddtime=ddtime, admission_time=admission_time)
        if k < 0:
            raise ValueError(f"K must be non-negative, got {k}")
        self.k = k
        self.k_count_mode = k_count_mode

    def _admission_constraint(self, txn: TransactionRuntime,
                              partners: Set[int], now: float) -> Optional[str]:
        touched = set(txn.spec.partitions)
        if self.table.k_conflict_violated(self.k, partitions=touched,
                                          count=self.k_count_mode):
            return f"K-conflict constraint (K={self.k}) violated"
        return None
