"""Atomic Static Lock (ASL), after Tay [9].

A transaction starts if and only if it can take *every* declared lock at
its start; otherwise it is rejected and re-submitted later.  Once started
it never blocks (all locks are already held), so ASL has no blocking and
no deadlock — but it serialises aggressively: the WTPG it induces is a set
of isolated points, which is why it performs worst on hot sets
(Experiment 2) where finer interleaving pays off.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.locks import LockTable
from repro.core.schedulers.base import (AdmissionResponse, Decision,
                                        LockResponse, Scheduler)
from repro.core.transaction import TransactionRuntime
from repro.errors import LockTableError


class AtomicStaticLock(Scheduler):
    """ASL: all-or-nothing preclaiming at transaction start."""

    name = "ASL"

    def __init__(self, admission_time: float = 5.0) -> None:
        super().__init__()
        self.table = LockTable()
        self.admission_time = admission_time

    def _admit(self, txn: TransactionRuntime, now: float) -> AdmissionResponse:
        spec = txn.spec
        cost = self.admission_time
        for step in spec.steps:
            if self.table.conflicting_holders(spec.tid, step.partition,
                                              step.mode):
                return AdmissionResponse(
                    False, cpu_cost=cost,
                    reason=f"lock unavailable on P{step.partition}")
        # All locks available: take every one of them atomically.
        self.table.register(spec)
        for index in range(len(spec.steps)):
            self.table.grant(spec.tid, index)
        return AdmissionResponse(True, cpu_cost=cost)

    def _request_lock(self, txn: TransactionRuntime,
                      now: float) -> LockResponse:
        step = txn.step()
        if not self.table.holds(txn.tid, step.partition, step.mode):
            raise LockTableError(
                f"ASL invariant broken: T{txn.tid} does not hold "
                f"P{step.partition} at step {txn.current_step}")
        return LockResponse(Decision.GRANT, reason="preclaimed")

    def abort_transaction(self, txn: TransactionRuntime,
                          now: float = 0.0) -> Tuple[int, ...]:
        """Drop every preclaimed lock; ASL induces no precedence edges."""
        if self.table.is_registered(txn.tid):
            self.table.unregister(txn.tid)
        return ()

    def _commit(self, txn: TransactionRuntime, now: float) -> None:
        self.table.unregister(txn.tid)
