"""Wait-Die: timestamp-ordered 2PL (Rosenkrantz et al. 1978).

Another classic deadlock-free baseline, included alongside
:class:`~repro.core.schedulers.twopl.BlockingTwoPhaseLock` to map the
abort-cost landscape the paper's no-abort stance is about:

* an *older* transaction (smaller timestamp = earlier first arrival)
  blocked by a younger holder **waits**;
* a *younger* transaction blocked by an older holder **dies** — it
  aborts immediately and restarts with its original timestamp, so it
  eventually becomes the oldest and gets through (no starvation).

No wait-for graph is needed: waits only ever point young -> old... i.e.
from younger waiters to older holders, so cycles are impossible.  The
price is exactly what the paper refuses to pay: dying throws away bulk
work, and young BATs may die many times.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.locks import LockTable
from repro.core.schedulers.base import (AdmissionResponse, Decision,
                                        LockResponse, Scheduler)
from repro.core.transaction import TransactionRuntime
from repro.errors import LockTableError


class WaitDie(Scheduler):
    """Timestamp-ordered 2PL: old waits, young dies."""

    name = "WAIT-DIE"

    def __init__(self, ddtime: float = 5.0, admission_time: float = 0.0) -> None:
        super().__init__()
        self.table = LockTable()
        self.ddtime = ddtime
        self.admission_time = admission_time
        # Timestamps survive restarts: tid -> first-admission time.
        self._timestamps: Dict[int, float] = {}

    def _admit(self, txn: TransactionRuntime, now: float) -> AdmissionResponse:
        self.table.register(txn.spec)
        self._timestamps.setdefault(txn.tid, now)
        return AdmissionResponse(True, cpu_cost=self.admission_time)

    def _request_lock(self, txn: TransactionRuntime,
                      now: float) -> LockResponse:
        step = txn.step()
        tid = txn.tid
        if self.table.holds(tid, step.partition, step.mode):
            self._consume_if_pending(tid, txn.current_step)
            return LockResponse(Decision.GRANT, reason="already held")
        holders = self.table.conflicting_holders(tid, step.partition,
                                                 step.mode)
        if not holders:
            self.table.grant(tid, txn.current_step)
            return LockResponse(Decision.GRANT)
        own_ts = self._timestamps[tid]
        oldest_holder_ts = min(self._timestamps.get(h, float("inf"))
                               for h in holders)
        if own_ts < oldest_holder_ts:
            # Older than every holder: allowed to wait.
            return LockResponse(Decision.BLOCK, cpu_cost=self.ddtime,
                                reason=f"older waiter behind "
                                       f"{sorted(holders)}")
        return LockResponse(Decision.ABORT, cpu_cost=self.ddtime,
                            reason="younger than a holder: dies")

    def _consume_if_pending(self, tid: int, step_index: int) -> None:
        try:
            self.table.grant(tid, step_index)
        except LockTableError:
            pass

    def abort_transaction(self, txn: TransactionRuntime,
                          now: float = 0.0) -> Tuple[int, ...]:
        """Release locks; the timestamp is kept (anti-starvation)."""
        if self.table.is_registered(txn.tid):
            self.table.unregister(txn.tid)
        return ()

    def _commit(self, txn: TransactionRuntime, now: float) -> None:
        self.table.unregister(txn.tid)
        self._timestamps.pop(txn.tid, None)
