"""Classic blocking 2PL with deadlock detection and transaction restart.

The paper deliberately *excludes* this scheduler: "a bulk-operation is
too expensive to abort, [so] schedulers for BATs should avoid chains of
blocking without aborting transactions."  We provide it anyway, as the
reference point that quantifies the claim — under BAT workloads its
restarts throw away whole bulk scans.

Semantics: strict 2PL at partition granularity; locks are requested step
by step with no use of the pre-declared information; a request that
conflicts with a holder waits.  Waiting is represented by a *wait-for*
map (requester -> holders); when a (re-)request closes a wait-for cycle,
the **requester** is chosen as the deadlock victim and aborted — the
machine releases its locks, discards its work and re-submits it from
scratch after the retry delay.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.core.locks import LockTable
from repro.core.schedulers.base import (AdmissionResponse, Decision,
                                        LockResponse, Scheduler)
from repro.core.transaction import TransactionRuntime
from repro.errors import LockTableError


class BlockingTwoPhaseLock(Scheduler):
    """Plain strict 2PL: block on conflict, abort the victim on deadlock."""

    name = "2PL"

    def __init__(self, ddtime: float = 5.0, admission_time: float = 0.0) -> None:
        super().__init__()
        self.table = LockTable()
        self.ddtime = ddtime
        self.admission_time = admission_time
        # tid -> holders it currently waits for (rebuilt per blocked try).
        self._waiting_for: Dict[int, Set[int]] = {}

    # -- lifecycle -----------------------------------------------------------

    def _admit(self, txn: TransactionRuntime, now: float) -> AdmissionResponse:
        # No admission constraint; declarations are registered only so the
        # common lock-table machinery (grants, holds) can be reused.
        self.table.register(txn.spec)
        return AdmissionResponse(True, cpu_cost=self.admission_time)

    def _request_lock(self, txn: TransactionRuntime,
                      now: float) -> LockResponse:
        step = txn.step()
        tid = txn.tid
        if self.table.holds(tid, step.partition, step.mode):
            self._consume_if_pending(tid, txn.current_step)
            self._waiting_for.pop(tid, None)
            return LockResponse(Decision.GRANT, reason="already held")
        holders = self.table.conflicting_holders(tid, step.partition,
                                                 step.mode)
        if not holders:
            self.table.grant(tid, txn.current_step)
            self._waiting_for.pop(tid, None)
            return LockResponse(Decision.GRANT)

        # Blocked: record the wait and test for a wait-for cycle.
        self._waiting_for[tid] = set(holders)
        if self._in_cycle(tid):
            self.stats.deadlock_predictions += 1
            return LockResponse(Decision.ABORT, cpu_cost=self.ddtime,
                                reason=f"deadlock victim (waits for "
                                       f"{sorted(holders)})")
        return LockResponse(Decision.BLOCK, cpu_cost=self.ddtime,
                            reason=f"blocked by {sorted(holders)}")

    def _consume_if_pending(self, tid: int, step_index: int) -> None:
        try:
            self.table.grant(tid, step_index)
        except LockTableError:
            pass

    def _in_cycle(self, start: int) -> bool:
        seen: Set[int] = set()
        stack = list(self._waiting_for.get(start, ()))
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waiting_for.get(node, ()))
        return False

    def abort_transaction(self, txn: TransactionRuntime,
                          now: float = 0.0) -> Tuple[int, ...]:
        """Release everything; the machine re-submits the transaction."""
        self._waiting_for.pop(txn.tid, None)
        if self.table.is_registered(txn.tid):
            self.table.unregister(txn.tid)
        return ()  # no precedence graph: nothing to cascade over

    def _commit(self, txn: TransactionRuntime, now: float) -> None:
        self._waiting_for.pop(txn.tid, None)
        self.table.unregister(txn.tid)
