"""Scheduler interface and the shared WTPG-keeping machinery.

A scheduler is a pure concurrency-control state machine: the machine model
(or a test) drives it through the transaction lifecycle and charges the CPU
costs it reports to the control node.  Nothing here knows about simulated
time except through the ``now`` arguments, which exist for the
control-saving rule of Section 3.4.

Lifecycle, as driven by :mod:`repro.machine.control_node`:

1. ``admit(txn, now)`` — declare all locks; scheduler-specific admission
   constraints (chain-form, K-conflict, ASL preclaiming) may reject, in
   which case the transaction is re-submitted after a fixed delay.
2. per step: ``request_lock(txn, now)`` — returns GRANT, BLOCK (conflicts
   with a current holder) or DELAY (policy decision); BLOCK/DELAY are
   retried after a fixed delay.
3. per processed object: ``object_processed(txn)`` — the weight-adjustment
   message that decrements ``w(T0 -> Ti)``.
4. ``commit(txn, now)`` — release all locks, drop the WTPG node.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core import builder
from repro.core.locks import LockTable
from repro.core.transaction import TransactionRuntime
from repro.core.wtpg import WTPG
from repro.errors import SchedulerError


class Decision(enum.Enum):
    """Outcome of a lock request."""

    GRANT = "grant"
    BLOCK = "block"   # conflicts with a current holder
    DELAY = "delay"   # policy: would deadlock / inconsistent / not minimal
    ABORT = "abort"   # deadlock victim (only schedulers that restart: 2PL)


@dataclass(frozen=True)
class LockResponse:
    """Decision plus the control-node CPU time the decision cost."""

    decision: Decision
    cpu_cost: float = 0.0
    reason: str = ""

    @property
    def granted(self) -> bool:
        return self.decision is Decision.GRANT


@dataclass(frozen=True)
class AdmissionResponse:
    """Outcome of the admission (start) test of a new transaction."""

    admitted: bool
    cpu_cost: float = 0.0
    reason: str = ""


def merge_admission_responses(
        responses: Sequence[AdmissionResponse]) -> AdmissionResponse:
    """Merge per-shard admission outcomes into one global decision.

    A sharded control plane runs the admission constraint independently
    on every participant shard — each consults only its own slice of the
    lock table and WTPG (its local ``E(q)``/``W`` state) — so the global
    verdict is the conjunction: the BAT starts only if *every* shard
    admits.  CPU costs add up (each shard genuinely spent its cost on
    its own CPU) and the first rejecting shard's reason wins, which is
    deterministic because shards are consulted in ascending shard id.
    """
    if not responses:
        raise SchedulerError("cannot merge zero admission responses")
    admitted = True
    cost = 0.0
    reason = ""
    for response in responses:
        cost += response.cpu_cost
        if admitted and not response.admitted:
            admitted = False
            reason = response.reason
    return AdmissionResponse(admitted, cpu_cost=cost, reason=reason)


@dataclass
class SchedulerStats:
    """Counters for reporting and debugging; purely observational."""

    admissions: int = 0
    admission_rejects: int = 0
    grants: int = 0
    blocks: int = 0
    delays: int = 0
    aborts: int = 0               # mid-flight deadlock victims (2PL only)
    commits: int = 0
    optimizations: int = 0        # W recomputations (CHAIN)
    estimator_calls: int = 0      # E(q) evaluations (K-WTPG)
    deadlock_predictions: int = 0
    control_cpu: float = 0.0      # total CPU cost reported

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


class Scheduler:
    """Abstract base; concrete schedulers override the hook methods."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = SchedulerStats()

    # -- lifecycle (public API) --------------------------------------------

    def admit(self, txn: TransactionRuntime, now: float = 0.0) -> AdmissionResponse:
        response = self._admit(txn, now)
        self.stats.admissions += 1
        self.stats.control_cpu += response.cpu_cost
        if not response.admitted:
            self.stats.admission_rejects += 1
        return response

    def request_lock(self, txn: TransactionRuntime,
                     now: float = 0.0) -> LockResponse:
        response = self._request_lock(txn, now)
        self.stats.control_cpu += response.cpu_cost
        if response.decision is Decision.GRANT:
            self.stats.grants += 1
        elif response.decision is Decision.BLOCK:
            self.stats.blocks += 1
        elif response.decision is Decision.ABORT:
            self.stats.aborts += 1
        else:
            self.stats.delays += 1
        return response

    def abort_transaction(self, txn: TransactionRuntime,
                          now: float = 0.0) -> Tuple[int, ...]:
        """Release an aborted transaction's scheduler state.

        Called for deadlock victims (2PL, WAIT-DIE) and for externally
        injected aborts (:mod:`repro.faults`) — the paper's schedulers
        never *choose* to abort a BAT, but they must survive one being
        aborted under them.  Returns the tids of the victim's direct
        precedence successors (transactions already ordered *after* it),
        which the machine uses for cascade-abort accounting; schedulers
        without a precedence graph return ``()``.

        Does not touch :attr:`stats` — abort accounting lives in the
        metrics layer, keyed by cause.
        """
        return ()

    def object_processed(self, txn: TransactionRuntime,
                         objects: float = 1.0) -> None:
        """Weight-adjustment message: ``objects`` of bulk work finished.

        Normally one whole object; the final quantum of a fractional-cost
        step (e.g. the 0.2-object write of Pattern1) reports less.
        """
        txn.note_object_processed(objects)
        self._object_processed(txn, objects)

    def object_processed_batch(self, txn: TransactionRuntime,
                               full_quanta: int) -> None:
        """``full_quanta`` whole-object weight adjustments in one call.

        Contract: must be bit-identical to ``full_quanta`` successive
        calls of :meth:`object_processed` with ``objects=1.0``.  The base
        implementation simply loops (always safe); schedulers whose
        per-object hook coalesces exactly may override — the batched
        data-node path calls this once per run of uninterrupted whole
        quanta instead of once per object.
        """
        for _ in range(full_quanta):
            self.object_processed(txn, 1.0)

    def commit(self, txn: TransactionRuntime, now: float = 0.0) -> None:
        self._commit(txn, now)
        self.stats.commits += 1

    # -- hooks ----------------------------------------------------------------

    def _admit(self, txn: TransactionRuntime, now: float) -> AdmissionResponse:
        raise NotImplementedError

    def _request_lock(self, txn: TransactionRuntime, now: float) -> LockResponse:
        raise NotImplementedError

    def _object_processed(self, txn: TransactionRuntime,
                          objects: float = 1.0) -> None:
        """Optional hook; default does nothing beyond runtime bookkeeping."""

    def _commit(self, txn: TransactionRuntime, now: float) -> None:
        raise NotImplementedError


class WTPGScheduler(Scheduler):
    """Shared machinery for schedulers that keep a lock table and a WTPG.

    Subclasses implement :meth:`_admission_constraint` (return a rejection
    reason or None) and :meth:`_evaluate_grant` (GRANT or DELAY a
    non-blocked request given its implied resolutions).
    """

    def __init__(self) -> None:
        super().__init__()
        self.table = LockTable()
        self.wtpg = WTPG()
        # Pair edges newly resolved by the most recent granted request —
        # the facts a dependency log must persist to replay this
        # scheduler's WTPG after a control-node crash.
        self.last_resolved: Tuple[Tuple[int, int], ...] = ()

    # -- admission --------------------------------------------------------------

    def _admit(self, txn: TransactionRuntime, now: float) -> AdmissionResponse:
        spec = txn.spec
        self.table.register(spec)
        partners = builder.conflict_partners(self.table, spec)
        reason = self._admission_constraint(txn, partners, now)
        if reason is not None:
            self.table.unregister(spec.tid)
            return AdmissionResponse(False, cpu_cost=self._admission_cost(),
                                     reason=reason)
        builder.add_transaction(self.wtpg, self.table, spec)
        self._after_admit(txn, now)
        return AdmissionResponse(True, cpu_cost=self._admission_cost())

    def _admission_constraint(self, txn: TransactionRuntime,
                              partners: Set[int], now: float) -> Optional[str]:
        return None

    def _admission_cost(self) -> float:
        return 0.0

    def _after_admit(self, txn: TransactionRuntime, now: float) -> None:
        """Hook: e.g. invalidate cached optimisation state."""

    # -- lock requests -------------------------------------------------------------

    def _request_lock(self, txn: TransactionRuntime, now: float) -> LockResponse:
        step = txn.step()
        tid = txn.tid
        self.last_resolved = ()
        if self.table.holds(tid, step.partition, step.mode):
            # Re-access of an already held (or stronger) lock: consume the
            # pending declaration if one exists for this step.
            self._consume_if_pending(tid, txn.current_step)
            return LockResponse(Decision.GRANT, reason="already held")
        holders = self.table.conflicting_holders(tid, step.partition, step.mode)
        if holders:
            return LockResponse(
                Decision.BLOCK, cpu_cost=self._block_check_cost(),
                reason=f"blocked by holders {sorted(holders)}")
        # A sorted, hashable tuple — schedulers may key caches on it.
        implied = builder.implied_resolutions(
            self.table, self.wtpg, tid, step.partition, step.mode)
        response = self._evaluate_grant(txn, implied, now)
        if response.decision is Decision.GRANT:
            self._apply_grant(txn, implied, now)
        return response

    def _consume_if_pending(self, tid: int, step_index: int) -> None:
        from repro.errors import LockTableError
        try:
            self.table.grant(tid, step_index)
        except LockTableError:
            pass  # declaration already consumed by an earlier grant

    def _block_check_cost(self) -> float:
        return 0.0

    def _evaluate_grant(self, txn: TransactionRuntime,
                        implied: Sequence[Tuple[int, int]],
                        now: float) -> LockResponse:
        raise NotImplementedError

    def _apply_grant(self, txn: TransactionRuntime,
                     implied: Sequence[Tuple[int, int]], now: float) -> None:
        self.table.grant(txn.tid, txn.current_step)
        newly_resolved = []
        for predecessor, successor in implied:
            pair = self.wtpg.pair(predecessor, successor)
            if pair is None:
                raise SchedulerError(
                    f"implied resolution T{predecessor}->T{successor} "
                    "without a pair edge")
            if not pair.resolved:
                newly_resolved.append((predecessor, successor))
            self.wtpg.resolve(predecessor, successor)
        self.last_resolved = tuple(newly_resolved)
        if newly_resolved:
            self._on_new_precedence_edge(now)

    def _on_new_precedence_edge(self, now: float) -> None:
        """Hook: condition 3) of the control-saving rule (K-WTPG)."""

    # -- progress / commit ----------------------------------------------------------

    def _object_processed(self, txn: TransactionRuntime,
                          objects: float = 1.0) -> None:
        if txn.tid in self.wtpg:
            self.wtpg.decrement_source(txn.tid, objects)

    def object_processed_batch(self, txn: TransactionRuntime,
                               full_quanta: int) -> None:
        """Coalesced whole-object adjustments (see the base contract).

        Exact because both sinks only *subtract clamped integers* from
        positive doubles — always exact, so one subtraction of
        ``float(full_quanta)`` equals the unit-subtraction chain — and
        the WTPG generation counter bumps once instead of per object,
        which is unobservable (generation values only guard caches and
        any bump invalidates them).
        """
        txn.note_objects_batch(full_quanta)
        if txn.tid in self.wtpg:
            self.wtpg.decrement_source(txn.tid, float(full_quanta))

    def _commit(self, txn: TransactionRuntime, now: float) -> None:
        builder.remove_transaction(self.wtpg, self.table, txn.tid)
        self._after_commit(txn, now)

    def _after_commit(self, txn: TransactionRuntime, now: float) -> None:
        """Hook: e.g. invalidate cached optimisation state."""

    # -- abort ------------------------------------------------------------------

    def abort_transaction(self, txn: TransactionRuntime,
                          now: float = 0.0) -> Tuple[int, ...]:
        """Excise an aborted transaction from the lock table and WTPG.

        Releases every lock declaration and removes the WTPG node with
        its incident pair edges (generation counters bump inside
        :meth:`WTPG.remove_transaction`, keeping invariant 7); implied
        resolutions involving the victim die with its edges, and the
        survivors' orders are recomputed lazily by the next lock
        request.  The victim's direct precedence successors — captured
        *before* excision — are returned for cascade accounting.
        """
        tid = txn.tid
        if tid not in self.wtpg:
            # Aborted between admission attempts (or doubly aborted):
            # only a lock-table registration may remain.
            if self.table.is_registered(tid):
                self.table.unregister(tid)
            return ()
        successors = tuple(sorted(self.wtpg.successors(tid)))
        builder.remove_transaction(self.wtpg, self.table, tid)
        self._after_abort(txn, now)
        return successors

    def _after_abort(self, txn: TransactionRuntime, now: float) -> None:
        """Hook: drop cached control state that may reference the victim."""


class ControlSaver:
    """The control-saving rule of Section 3.4.

    Cached control results (the full SR-order W; E(q) values) are reused
    until (1) ``keeptime`` elapses since the last computation, or (2) a
    transaction commits or starts.  Callers mark events via
    :meth:`invalidate` and ask :meth:`stale` before reusing a cache.
    """

    def __init__(self, keeptime: float) -> None:
        if keeptime < 0:
            raise SchedulerError("keeptime must be non-negative")
        self.keeptime = keeptime
        self._computed_at: Optional[float] = None
        self._dirty = True

    def stale(self, now: float) -> bool:
        if self._dirty or self._computed_at is None:
            return True
        return (now - self._computed_at) >= self.keeptime

    def mark_computed(self, now: float) -> None:
        self._computed_at = now
        self._dirty = False

    def invalidate(self) -> None:
        self._dirty = True
