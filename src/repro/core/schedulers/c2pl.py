"""Cautious Two Phase Lock (C2PL), after Nishio et al. [10].

A variant of strict 2PL that never aborts: it keeps the transaction
precedence graph (a WTPG without weights) built from the pre-declared
locks, and *delays* any lock request whose grant would make a future
deadlock unavoidable — i.e. would flip an already-fixed serialization
order or close a precedence cycle.  Requests conflicting with a current
holder are blocked as usual.

This is the main baseline the WTPG schedulers beat: it is correct and
deadlock-free but picks serialization orders greedily (first grant wins),
so under bulk access transactions it walks straight into chains of
blocking.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.schedulers.base import (Decision, LockResponse,
                                        WTPGScheduler)
from repro.core.transaction import TransactionRuntime


class CautiousTwoPhaseLock(WTPGScheduler):
    """C2PL: grant iff not blocked and no predicted deadlock."""

    name = "C2PL"

    def __init__(self, ddtime: float = 5.0, admission_time: float = 5.0) -> None:
        super().__init__()
        self.ddtime = ddtime
        self.admission_time = admission_time

    def _admission_cost(self) -> float:
        return self.admission_time

    def _evaluate_grant(self, txn: TransactionRuntime,
                        implied: Sequence[Tuple[int, int]],
                        now: float) -> LockResponse:
        cost = self.ddtime  # one deadlock-prediction test on the graph
        if self._would_deadlock(implied):
            self.stats.deadlock_predictions += 1
            return LockResponse(Decision.DELAY, cpu_cost=cost,
                                reason="predicted deadlock")
        return LockResponse(Decision.GRANT, cpu_cost=cost)

    def _would_deadlock(self, implied: Sequence[Tuple[int, int]]) -> bool:
        """True if applying ``implied`` contradicts or creates a cycle."""
        fresh: List[Tuple[int, int]] = []
        for predecessor, successor in implied:
            pair = self.wtpg.pair(predecessor, successor)
            if pair is None:
                continue
            if pair.resolved:
                if pair.resolved_to != successor:
                    return True  # would flip a fixed order
                continue
            fresh.append((predecessor, successor))
        if not fresh:
            return False
        # All fresh edges share the requesting transaction as predecessor
        # (implied_resolutions guarantees it), so the copy-free probe
        # applies: a cycle needs a path from some successor back to it.
        source = fresh[0][0]
        return self.wtpg.creates_cycle_from(source,
                                            [succ for _, succ in fresh])
