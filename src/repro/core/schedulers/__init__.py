"""The seven concurrency-control schedulers evaluated in the paper.

* :class:`ChainScheduler` — CC1, global optimisation over chain-form WTPGs.
* :class:`KWTPGScheduler` — CC2, local optimisation via ``E(q)`` under the
  K-conflict constraint (the paper evaluates K = 2).
* :class:`AtomicStaticLock` — ASL: all-or-nothing preclaiming.
* :class:`CautiousTwoPhaseLock` — C2PL: incremental locking, requests that
  would cause a (predicted) deadlock are delayed; never aborts.
* :class:`NoDataContention` — NODC: grants everything; the pure
  resource-contention upper bound.
* :class:`ChainC2PL` / :class:`KConflictC2PL` — the Experiment 4 lower
  bounds: C2PL plus only the admission constraint of CHAIN / K-WTPG
  (no weights used for granting).

All share the :class:`Scheduler` interface consumed by the machine model.
"""

from typing import Any, Callable, Dict

from repro.core.schedulers.base import (AdmissionResponse, Decision,
                                        LockResponse, Scheduler,
                                        SchedulerStats)
from repro.core.schedulers.asl import AtomicStaticLock
from repro.core.schedulers.c2pl import CautiousTwoPhaseLock
from repro.core.schedulers.chain_scheduler import ChainScheduler
from repro.core.schedulers.kwtpg_scheduler import KWTPGScheduler
from repro.core.schedulers.nodc import NoDataContention
from repro.core.schedulers.hybrids import ChainC2PL, KConflictC2PL
from repro.core.schedulers.twopl import BlockingTwoPhaseLock
from repro.core.schedulers.wait_die import WaitDie

SCHEDULER_FACTORIES: Dict[str, Callable[..., Scheduler]] = {
    "2PL": BlockingTwoPhaseLock,
    "WAIT-DIE": WaitDie,
    "CHAIN": ChainScheduler,
    "K2": lambda **kw: KWTPGScheduler(k=2, **kw),
    "KWTPG": KWTPGScheduler,
    "ASL": AtomicStaticLock,
    "C2PL": CautiousTwoPhaseLock,
    "NODC": NoDataContention,
    "CHAIN-C2PL": ChainC2PL,
    "K2-C2PL": lambda **kw: KConflictC2PL(k=2, **kw),
}


def make_scheduler(name: str, **kwargs: Any) -> Scheduler:
    """Instantiate a scheduler by its paper name (e.g. ``"K2"``)."""
    try:
        factory = SCHEDULER_FACTORIES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from "
            f"{sorted(SCHEDULER_FACTORIES)}") from None
    return factory(**kwargs)


__all__ = [
    "AdmissionResponse",
    "AtomicStaticLock",
    "BlockingTwoPhaseLock",
    "CautiousTwoPhaseLock",
    "ChainC2PL",
    "ChainScheduler",
    "Decision",
    "KConflictC2PL",
    "KWTPGScheduler",
    "LockResponse",
    "NoDataContention",
    "SCHEDULER_FACTORIES",
    "Scheduler",
    "WaitDie",
    "SchedulerStats",
    "make_scheduler",
]
