"""CHAIN — the Chain-WTPG scheduler (CC1, Section 3.2).

Global optimisation: CHAIN computes the full SR-order ``W`` under which
the resolved WTPG has the shortest critical path, and grants a lock
request only if granting keeps the schedule consistent with ``W``.

To make computing ``W`` polynomial, the WTPG is constrained to chain-form
(Definition 2): a new transaction whose conflicts would break chain-form
is aborted at Step 0 and re-submitted later.  Per the control-saving rule
(Section 3.4), ``W`` is recomputed only when a transaction starts or
commits or when ``keeptime`` has elapsed since the last computation;
otherwise the most recent ``W`` is reused.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.chain import chain_components, would_remain_chain_form
from repro.core.chain_opt import DOWN, UP, ChainPair, optimise_chain
from repro.core.schedulers.base import (ControlSaver, Decision, LockResponse,
                                        WTPGScheduler)
from repro.core.transaction import TransactionRuntime
from repro.errors import SchedulerError


class ChainScheduler(WTPGScheduler):
    """CC1: grant only if consistent with the optimised full SR-order W."""

    name = "CHAIN"

    def __init__(self, chaintime: float = 20.0, keeptime: float = 5000.0,
                 admission_time: float = 5.0) -> None:
        super().__init__()
        self.chaintime = chaintime
        self.admission_time = admission_time
        self._saver = ControlSaver(keeptime)
        # W: for each unresolved-at-computation pair, the successor tid.
        self._w_order: Dict[FrozenSet[int], int] = {}

    def _admission_cost(self) -> float:
        return self.admission_time

    # -- admission: the chain-form constraint (Step 0 of CC1) ----------------

    def _admission_constraint(self, txn: TransactionRuntime,
                              partners: Set[int], now: float) -> Optional[str]:
        if not would_remain_chain_form(self.wtpg, txn.tid, partners):
            return "WTPG would not be chain-form"
        return None

    def _after_admit(self, txn: TransactionRuntime, now: float) -> None:
        self._saver.invalidate()

    def _after_commit(self, txn: TransactionRuntime, now: float) -> None:
        self._saver.invalidate()

    def _after_abort(self, txn: TransactionRuntime, now: float) -> None:
        # The cached W may order pairs involving the dead transaction;
        # force a recomputation before the next grant decision.
        self._saver.invalidate()

    # -- the optimised order W ------------------------------------------------

    def _refresh_w(self, now: float) -> float:
        """Recompute W if stale; returns the CPU cost incurred."""
        if not self._saver.stale(now):
            return 0.0
        self._w_order = self._compute_w()
        self._saver.mark_computed(now)
        self.stats.optimizations += 1
        return self.chaintime

    def _compute_w(self) -> Dict[FrozenSet[int], int]:
        order: Dict[FrozenSet[int], int] = {}
        for component in chain_components(self.wtpg):
            if len(component) < 2:
                continue
            sources = [self.wtpg.source_weight(tid) for tid in component]
            pairs: List[ChainPair] = []
            for left, right in zip(component, component[1:]):
                edge = self.wtpg.pair(left, right)
                if edge is None:
                    raise SchedulerError(
                        f"chain component lists non-adjacent pair "
                        f"T{left},T{right}")
                fixed: Optional[str] = None
                if edge.resolved:
                    fixed = DOWN if edge.resolved_to == right else UP
                pairs.append(ChainPair(down=edge.weight_to(right),
                                       up=edge.weight_to(left), fixed=fixed))
            _, orientations = optimise_chain(sources, pairs)
            for (left, right), orientation in zip(
                    zip(component, component[1:]), orientations):
                successor = right if orientation == DOWN else left
                order[frozenset((left, right))] = successor
        return order

    def _force_refresh_w(self, now: float) -> float:
        self._saver.invalidate()
        return self._refresh_w(now)

    def current_w(self, now: float = 0.0) -> Dict[FrozenSet[int], int]:
        """The full SR-order in force (recomputing if stale) — for tests."""
        self._refresh_w(now)
        return dict(self._w_order)

    # -- granting: Step 2/3 of CC1 ---------------------------------------------

    def _evaluate_grant(self, txn: TransactionRuntime,
                        implied: Sequence[Tuple[int, int]],
                        now: float) -> LockResponse:
        cost = self._refresh_w(now)
        for predecessor, successor in implied:
            pair = self.wtpg.pair(predecessor, successor)
            if pair is None:
                continue
            if pair.resolved:
                if pair.resolved_to != successor:
                    self.stats.deadlock_predictions += 1
                    return LockResponse(
                        Decision.DELAY, cpu_cost=cost,
                        reason="contradicts fixed serialization order")
                continue
            ordained = self._w_order.get(frozenset((predecessor, successor)))
            if ordained is None:
                # W predates this pair (can happen between invalidation and
                # the next refresh): recompute once and retry the lookup.
                cost += self._force_refresh_w(now)
                ordained = self._w_order.get(
                    frozenset((predecessor, successor)))
            if ordained is not None and ordained != successor:
                return LockResponse(
                    Decision.DELAY, cpu_cost=cost,
                    reason=f"inconsistent with W: T{successor} should "
                           f"precede T{predecessor}")
        return LockResponse(Decision.GRANT, cpu_cost=cost)
