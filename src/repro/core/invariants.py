"""Cross-structure consistency checks (scheduler paranoia mode).

A WTPG-based scheduler maintains two views of the same reality: the lock
table (declarations + holds) and the graph (nodes + pair edges).  These
checks verify they agree; the test suite runs them against live
schedulers mid-workload, and they are cheap enough to call from
debugging sessions on any :class:`~repro.core.schedulers.base.WTPGScheduler`.

Checked invariants:

1. node set == registered transaction set;
2. every pair edge corresponds to at least one conflicting declaration
   pair, and every conflicting declaration pair has its edge;
3. pair weights are at least the dues of the conflicting steps (weights
   only ever grow by the max rule);
4. holders against pending conflicting declarations imply the pair is
   resolved holder-first;
5. the precedence relation is acyclic (a cycle would be an already-lost
   deadlock — cautious schedulers must never reach it);
6. source weights never exceed the transaction's declared total;
7. the WTPG's incrementally maintained caches (topological order,
   closures, critical-path dist) agree with a fresh recomputation
   (:meth:`~repro.core.wtpg.WTPG.cache_violations`).
"""

from __future__ import annotations

from typing import List

from repro.core.locks import LockTable
from repro.core.wtpg import WTPG
from repro.errors import SchedulerError


def check_consistency(table: LockTable, wtpg: WTPG) -> None:
    """Raise :class:`SchedulerError` on the first violated invariant."""
    problems = find_violations(table, wtpg)
    if problems:
        raise SchedulerError("WTPG/lock-table inconsistency: "
                             + "; ".join(problems))


def find_violations(table: LockTable, wtpg: WTPG) -> List[str]:
    """All violated invariants (empty list when consistent)."""
    problems: List[str] = []

    registered = table.active_transactions
    nodes = wtpg.transactions
    if registered != nodes:
        problems.append(
            f"node set {sorted(nodes)} != registered {sorted(registered)}")

    # 2 + 3 + 4: edges vs declarations.
    tids = sorted(registered & nodes)
    for index, a in enumerate(tids):
        decls_a = table.declarations_of(a)
        for b in tids[index + 1:]:
            conflicts = table.conflicting_transactions(decls_a, b)
            edge = wtpg.pair(a, b)
            if conflicts and edge is None:
                problems.append(f"missing pair edge (T{a},T{b})")
                continue
            if edge is None:
                continue
            if not conflicts:
                problems.append(
                    f"pair edge (T{a},T{b}) without conflicting declarations")
                continue
            for mine, theirs in conflicts:
                # mine belongs to a, theirs to b.
                if edge.weight_to(mine.tid) + 1e-9 < mine.due:
                    problems.append(
                        f"w(T{theirs.tid}->T{mine.tid})="
                        f"{edge.weight_to(mine.tid):g} below due "
                        f"{mine.due:g}")
                if edge.weight_to(theirs.tid) + 1e-9 < theirs.due:
                    problems.append(
                        f"w(T{mine.tid}->T{theirs.tid})="
                        f"{edge.weight_to(theirs.tid):g} below due "
                        f"{theirs.due:g}")
                if table.is_granted(theirs) and not table.is_granted(mine):
                    if edge.resolved_to != mine.tid:
                        problems.append(
                            f"T{theirs.tid} holds P{theirs.partition} "
                            f"against T{mine.tid}'s pending declaration "
                            "but the pair is not resolved holder-first")
                if table.is_granted(mine) and not table.is_granted(theirs):
                    if edge.resolved_to != theirs.tid:
                        problems.append(
                            f"T{mine.tid} holds P{mine.partition} "
                            f"against T{theirs.tid}'s pending declaration "
                            "but the pair is not resolved holder-first")

    # 5: acyclicity.
    if wtpg.has_precedence_cycle():
        problems.append("precedence cycle (an unavoidable deadlock)")

    # 7: the incremental caches never drift from the ground truth.
    problems.extend(wtpg.cache_violations())

    # 6: source weights bounded by declared totals.
    for tid in tids:
        decls = table.declarations_of(tid)
        total = max((d.due for d in decls), default=0.0)
        if wtpg.source_weight(tid) > total + 1e-9:
            problems.append(
                f"w(T0->T{tid})={wtpg.source_weight(tid):g} exceeds "
                f"declared total {total:g}")

    return problems
