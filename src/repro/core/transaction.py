"""Transaction model of Section 2.2.

A Bulk Access Transaction (BAT) is a *sequential* execution of steps, each
reading or writing exactly one partition.  At its start a transaction
declares every step and its I/O demand in *objects* (the unit of bulk data
processing — e.g. ~50 disk tracks).  The paper's cost model:

* reading ``a%`` of partition ``P`` costs ``a * |P|`` objects;
* updating ``a%`` costs ``2 * a * |P|`` (bulk updates read before writing);
* ``due(s_i)`` — the objects a transaction must still access from the start
  of step ``s_i`` until its commit — is the suffix sum of declared costs.

Declared and actual demands are kept separately so that Experiment 4
(erroneous declarations) falls out naturally: schedulers only ever see
declared values, the data nodes execute actual ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) partition lock."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def conflicts_with(self, other: "LockMode") -> bool:
        """X conflicts with both S and X; S conflicts only with X."""
        return self is LockMode.EXCLUSIVE or other is LockMode.EXCLUSIVE

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Step:
    """One read/write access of a BAT to a single partition.

    ``cost`` is the actual I/O demand in objects; ``declared_cost`` is what
    the transaction declares to the scheduler (defaults to the actual cost;
    differs in Experiment 4).  Costs may be fractional (e.g. ``w(F1:0.2)``
    in Pattern1 is a 0.2-object bulk write).
    """

    partition: int
    mode: LockMode
    cost: float
    declared_cost: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise WorkloadError(f"step cost must be non-negative: {self.cost}")
        if self.declared_cost is None:
            object.__setattr__(self, "declared_cost", self.cost)
        elif self.declared_cost < 0:
            raise WorkloadError(
                f"declared cost must be non-negative: {self.declared_cost}")

    @staticmethod
    def read(partition: int, cost: float,
             declared_cost: Optional[float] = None) -> "Step":
        """A shared-lock step, paper notation ``r(P:C)``."""
        return Step(partition, LockMode.SHARED, cost, declared_cost)

    @staticmethod
    def write(partition: int, cost: float,
              declared_cost: Optional[float] = None) -> "Step":
        """An exclusive-lock step, paper notation ``w(P:C)``."""
        return Step(partition, LockMode.EXCLUSIVE, cost, declared_cost)

    def __str__(self) -> str:
        op = "r" if self.mode is LockMode.SHARED else "w"
        return f"{op}(P{self.partition}:{self.cost:g})"


class TransactionSpec:
    """The full pre-declared shape of a BAT: its ordered steps.

    Immutable; runtime progress lives in :class:`TransactionRuntime`.
    """

    def __init__(self, tid: int, steps: Sequence[Step],
                 label: str = "") -> None:
        if not steps:
            raise WorkloadError(f"transaction T{tid} must have at least one step")
        self.tid = tid
        self.steps: Tuple[Step, ...] = tuple(steps)
        self.label = label
        # declared_cost is never None after Step.__post_init__; the
        # fallback only narrows the type for strict checking.
        self._dues = self._suffix_sums(
            s.declared_cost if s.declared_cost is not None else s.cost
            for s in self.steps)
        self._actual_dues = self._suffix_sums(s.cost for s in self.steps)

    @staticmethod
    def _suffix_sums(costs: Iterable[float]) -> Tuple[float, ...]:
        values = list(costs)
        out: List[float] = [0.0] * len(values)
        running = 0.0
        for i in range(len(values) - 1, -1, -1):
            running += values[i]
            out[i] = running
        return tuple(out)

    def due(self, step_index: int) -> float:
        """``due(s_i)``: declared objects from the start of step i to commit.

        Defined in Section 3.1: ``due(s_N) = costof(s_N)`` and
        ``due(s_i) = costof(s_i) + due(s_{i+1})``.
        """
        return self._dues[step_index]

    def actual_due(self, step_index: int) -> float:
        """Like :meth:`due` but on actual (not declared) costs."""
        return self._actual_dues[step_index]

    @property
    def declared_total(self) -> float:
        """Total declared objects, ``due(s_0)``."""
        return self._dues[0]

    @property
    def actual_total(self) -> float:
        """Total actual objects the transaction will process."""
        return self._actual_dues[0]

    @property
    def partitions(self) -> Tuple[int, ...]:
        """Distinct partitions touched, in first-access order."""
        seen: List[int] = []
        for step in self.steps:
            if step.partition not in seen:
                seen.append(step.partition)
        return tuple(seen)

    def strongest_mode(self, partition: int) -> Optional[LockMode]:
        """The strongest lock mode declared on ``partition`` (or None)."""
        modes = [s.mode for s in self.steps if s.partition == partition]
        if not modes:
            return None
        if LockMode.EXCLUSIVE in modes:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        body = " -> ".join(str(s) for s in self.steps)
        return f"T{self.tid}: {body}"


@dataclass
class TransactionRuntime:
    """Mutable execution state of a transaction instance.

    ``remaining_declared`` starts at ``due(s_0)`` and is decremented by one
    per processed object (clamped at zero — an erroneous under-declaration
    must not push a WTPG weight negative).  This mirrors the paper's
    per-object adjustment messages to the control node.
    """

    spec: TransactionSpec
    arrival_time: float = 0.0
    current_step: int = 0
    remaining_declared: float = field(default=0.0)
    attempts: int = 0
    start_time: Optional[float] = None
    commit_time: Optional[float] = None
    objects_done: float = 0.0      # bulk work of the current attempt
    wasted_objects: float = 0.0    # work thrown away by aborts (2PL)

    def __post_init__(self) -> None:
        self.remaining_declared = self.spec.declared_total

    @property
    def tid(self) -> int:
        return self.spec.tid

    @property
    def committed(self) -> bool:
        return self.commit_time is not None

    @property
    def finished_all_steps(self) -> bool:
        return self.current_step >= len(self.spec.steps)

    def step(self) -> Step:
        """The step currently being (or about to be) executed."""
        return self.spec.steps[self.current_step]

    def note_object_processed(self, objects: float = 1.0) -> None:
        """Account ``objects`` of bulk work done (weight-adjust message)."""
        self.remaining_declared = max(0.0, self.remaining_declared - objects)
        self.objects_done += objects

    def note_objects_batch(self, full_quanta: int) -> None:
        """Account ``full_quanta`` whole objects in one call.

        Bit-identical to ``full_quanta`` calls of
        :meth:`note_object_processed` with ``objects=1.0``:

        * ``remaining_declared`` — subtracting an exactly representable
          positive integer from a positive double is exact (the result
          stays a multiple of the source's ulp with < 2**53 of them), so
          one clamped subtraction of ``float(full_quanta)`` equals the
          chain of clamped unit subtractions; once a chained step clamps
          to zero every later step stays zero, as does the single
          subtraction.
        * ``objects_done`` — integer-valued floats add exactly, so the
          coalesced add is used only on that fast path; a fractional
          accumulator (e.g. after a 0.2-object write tail) replays the
          unit adds, whose roundings the coalesced form would not match.
        """
        self.remaining_declared = max(
            0.0, self.remaining_declared - full_quanta)
        done = self.objects_done
        if done.is_integer():
            self.objects_done = done + full_quanta
        else:
            for _ in range(full_quanta):
                done += 1.0
            self.objects_done = done

    def advance_step(self) -> None:
        """Mark the current step finished and move to the next."""
        if self.finished_all_steps:
            raise WorkloadError(f"T{self.tid} has no further steps to advance")
        self.current_step += 1

    def reset_for_retry(self) -> None:
        """Reset progress after an admission abort or deadlock restart."""
        self.current_step = 0
        self.remaining_declared = self.spec.declared_total
        self.wasted_objects += self.objects_done
        self.objects_done = 0.0
        self.attempts += 1

    def response_time(self) -> float:
        """Completion latency (commit - arrival); raises if not committed."""
        if self.commit_time is None:
            raise WorkloadError(f"T{self.tid} has not committed")
        return self.commit_time - self.arrival_time

    def __repr__(self) -> str:
        return (f"<TxnRuntime T{self.tid} step={self.current_step}/"
                f"{len(self.spec.steps)} remaining={self.remaining_declared:g}>")
