"""Weighted Transaction Precedence Graph (Definition 1, Section 3.1).

Nodes are active transactions plus two virtual nodes: ``T0`` (the initial
transaction — represented implicitly by per-node *source weights*
``w(T0 -> Ti)``) and ``Tf`` (the final transaction — per-node *sink
weights* ``w(Ti -> Tf)``, zero under the paper's cost model).

Between two transactions there is at most one *pair edge* ``(Ti, Tj)``
carrying both directed weights.  A pair starts *unresolved* (a
conflicting-edge, shown as the shaded double arrow in the paper's figures)
and is *resolved* into a precedence-edge when the serialization order of
the two transactions becomes fixed.  Resolution is monotone: a pair can
never flip direction — attempting to is exactly what the schedulers must
detect and avoid (a predicted deadlock / inconsistency with the optimised
order W).

Weights are object counts and under the sequential-access transaction model
each weight is the shortest possible time (in ``ObjTime`` units) between
two schedule events; the critical (longest) ``T0 -> Tf`` path of a fully
resolved WTPG is therefore the earliest possible completion time of the
whole schedule — the quantity both proposed schedulers minimise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import WTPGError

Pair = FrozenSet[int]


def _pair(a: int, b: int) -> Pair:
    if a == b:
        raise WTPGError(f"a transaction cannot conflict with itself: T{a}")
    return frozenset((a, b))


@dataclass
class PairEdge:
    """The conflicting/precedence edge between one pair of transactions.

    ``weight_to(b)`` is ``w(a -> b)``: the objects ``b`` must still access
    after ``a`` commits before ``b`` itself can commit.  ``resolved_to`` is
    ``None`` while the pair is a conflicting-edge, otherwise the tid that
    *follows* in the serialization order.
    """

    a: int
    b: int
    weight_ab: float = 0.0  # w(a -> b)
    weight_ba: float = 0.0  # w(b -> a)
    resolved_to: Optional[int] = None  # the successor tid, or None

    def weight_to(self, successor: int) -> float:
        if successor == self.b:
            return self.weight_ab
        if successor == self.a:
            return self.weight_ba
        raise WTPGError(f"T{successor} is not part of pair ({self.a},{self.b})")

    def raise_weight_to(self, successor: int, weight: float) -> None:
        """Set ``w(other -> successor)`` to the max of old and new.

        The paper: when several step pairs of the same two transactions
        conflict, each directed weight takes the largest ``due`` value.
        """
        if successor == self.b:
            self.weight_ab = max(self.weight_ab, weight)
        elif successor == self.a:
            self.weight_ba = max(self.weight_ba, weight)
        else:
            raise WTPGError(
                f"T{successor} is not part of pair ({self.a},{self.b})")

    @property
    def resolved(self) -> bool:
        return self.resolved_to is not None

    def predecessor(self) -> int:
        if self.resolved_to is None:
            raise WTPGError(f"pair ({self.a},{self.b}) is unresolved")
        return self.a if self.resolved_to == self.b else self.b

    def other(self, tid: int) -> int:
        if tid == self.a:
            return self.b
        if tid == self.b:
            return self.a
        raise WTPGError(f"T{tid} is not part of pair ({self.a},{self.b})")


class WTPG:
    """The weighted transaction precedence graph of all active transactions."""

    def __init__(self) -> None:
        self._source: Dict[int, float] = {}   # w(T0 -> Ti)
        self._sink: Dict[int, float] = {}     # w(Ti -> Tf), 0 in the paper
        self._pairs: Dict[Pair, PairEdge] = {}
        self._neighbors: Dict[int, Set[int]] = {}
        # Incrementally maintained precedence adjacency (resolved pairs
        # only) so successor/ancestor queries do not scan all pair edges.
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}

    # -- nodes ---------------------------------------------------------------

    @property
    def transactions(self) -> Set[int]:
        return set(self._source)

    def __contains__(self, tid: int) -> bool:
        return tid in self._source

    def __len__(self) -> int:
        return len(self._source)

    def add_transaction(self, tid: int, source_weight: float,
                        sink_weight: float = 0.0) -> None:
        """Add a node with ``w(T0->Ti) = source_weight`` (its total due)."""
        if tid in self._source:
            raise WTPGError(f"T{tid} is already in the WTPG")
        if source_weight < 0 or sink_weight < 0:
            raise WTPGError("WTPG weights must be non-negative")
        self._source[tid] = source_weight
        self._sink[tid] = sink_weight
        self._neighbors[tid] = set()
        self._succ[tid] = set()
        self._pred[tid] = set()

    def remove_transaction(self, tid: int) -> None:
        """Drop a node and all its pair edges (commit or admission abort)."""
        self._require(tid)
        del self._source[tid]
        del self._sink[tid]
        for other in self._neighbors.pop(tid):
            self._neighbors[other].discard(tid)
            self._succ[other].discard(tid)
            self._pred[other].discard(tid)
            del self._pairs[_pair(tid, other)]
        del self._succ[tid]
        del self._pred[tid]

    def _require(self, tid: int) -> None:
        if tid not in self._source:
            raise WTPGError(f"T{tid} is not in the WTPG")

    # -- weights ---------------------------------------------------------------

    def source_weight(self, tid: int) -> float:
        self._require(tid)
        return self._source[tid]

    def set_source_weight(self, tid: int, value: float) -> None:
        self._require(tid)
        self._source[tid] = max(0.0, value)

    def decrement_source(self, tid: int, objects: float = 1.0) -> None:
        """Apply a weight-adjustment message (one object processed)."""
        self._require(tid)
        self._source[tid] = max(0.0, self._source[tid] - objects)

    # -- pair edges -------------------------------------------------------------

    def ensure_pair(self, a: int, b: int) -> PairEdge:
        """The pair edge for (a, b), created unresolved if absent."""
        self._require(a)
        self._require(b)
        key = _pair(a, b)
        edge = self._pairs.get(key)
        if edge is None:
            lo, hi = min(a, b), max(a, b)
            edge = PairEdge(lo, hi)
            self._pairs[key] = edge
            self._neighbors[a].add(b)
            self._neighbors[b].add(a)
        return edge

    def pair(self, a: int, b: int) -> Optional[PairEdge]:
        return self._pairs.get(_pair(a, b))

    def pairs(self) -> Tuple[PairEdge, ...]:
        return tuple(self._pairs.values())

    def unresolved_pairs(self) -> Tuple[PairEdge, ...]:
        return tuple(e for e in self._pairs.values() if not e.resolved)

    def conflict_neighbors(self, tid: int) -> Set[int]:
        """All transactions sharing a pair edge with ``tid`` (any state)."""
        self._require(tid)
        return set(self._neighbors[tid])

    def orientation(self, a: int, b: int) -> Optional[Tuple[int, int]]:
        """``(pred, succ)`` if the pair is resolved, else None."""
        edge = self._pairs.get(_pair(a, b))
        if edge is None or not edge.resolved:
            return None
        return (edge.predecessor(), edge.resolved_to)  # type: ignore[arg-type]

    def resolve(self, predecessor: int, successor: int) -> None:
        """Resolve the pair so ``predecessor`` precedes ``successor``.

        Idempotent for an identical resolution; raises on an attempt to
        flip an already resolved pair (callers must detect that case as a
        deadlock/inconsistency *before* resolving).
        """
        edge = self._pairs.get(_pair(predecessor, successor))
        if edge is None:
            raise WTPGError(
                f"no conflicting-edge between T{predecessor} and T{successor}")
        if edge.resolved:
            if edge.resolved_to != successor:
                raise WTPGError(
                    f"pair ({edge.a},{edge.b}) already resolved the other way")
            return
        edge.resolved_to = successor
        self._succ[predecessor].add(successor)
        self._pred[successor].add(predecessor)

    # -- precedence structure -----------------------------------------------------

    def predecessors(self, tid: int) -> Set[int]:
        """Direct predecessors of ``tid`` via resolved pairs."""
        self._require(tid)
        return set(self._pred[tid])

    def successors(self, tid: int) -> Set[int]:
        """Direct successors of ``tid`` via resolved pairs."""
        self._require(tid)
        return set(self._succ[tid])

    def ancestors(self, tid: int) -> Set[int]:
        """``before(T)``: every transaction preceding ``tid`` transitively."""
        self._require(tid)
        return self._closure(tid, self._pred)

    def descendants(self, tid: int) -> Set[int]:
        """``after(T)``: every transaction following ``tid`` transitively."""
        self._require(tid)
        return self._closure(tid, self._succ)

    def _closure(self, tid: int, adjacency: Dict[int, Set[int]]) -> Set[int]:
        seen: Set[int] = set()
        stack = [tid]
        while stack:
            node = stack.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        seen.discard(tid)
        return seen

    def has_precedence_cycle(self) -> bool:
        """True if the resolved (precedence) edges contain a cycle."""
        return self._topological_order() is None

    def creates_cycle_from(self, tid: int, targets: Iterable[int]) -> bool:
        """Would adding edges ``tid -> t`` for each target close a cycle?

        Copy-free probe: the existing precedence graph is acyclic, so any
        new cycle must pass through one of the new edges and return to
        ``tid`` — i.e. some target already reaches ``tid``.
        """
        self._require(tid)
        goal = set(targets)
        if tid in goal:
            return True
        seen: Set[int] = set()
        stack = [t for t in goal if t in self._source]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for succ in self._succ[node]:
                if succ == tid:
                    return True
                if succ not in seen:
                    stack.append(succ)
        return False

    def _topological_order(self) -> Optional[List[int]]:
        indegree = {tid: 0 for tid in self._source}
        for edge in self._pairs.values():
            if edge.resolved:
                indegree[edge.resolved_to] += 1  # type: ignore[index]
        queue = sorted(tid for tid, deg in indegree.items() if deg == 0)
        order: List[int] = []
        # Kahn's algorithm; sorted pops keep the order deterministic.
        from heapq import heapify, heappop, heappush
        heap = list(queue)
        heapify(heap)
        while heap:
            node = heappop(heap)
            order.append(node)
            for succ in self._succ[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heappush(heap, succ)
        if len(order) != len(self._source):
            return None
        return order

    # -- critical path -----------------------------------------------------------

    def critical_path_length(self) -> float:
        """Length of the longest ``T0 -> Tf`` path over precedence edges.

        Unresolved conflicting-edges are ignored (deleted), as in Step 3 of
        the estimator ``E(q)``.  Raises :class:`WTPGError` on a precedence
        cycle — check :meth:`has_precedence_cycle` first where a cycle is a
        legal outcome to detect.
        """
        order = self._topological_order()
        if order is None:
            raise WTPGError("cannot take critical path of a cyclic WTPG")
        if not order:
            return 0.0
        dist: Dict[int, float] = {}
        for tid in order:
            best = self._source[tid]
            for pred in self.predecessors(tid):
                edge = self._pairs[_pair(tid, pred)]
                best = max(best, dist[pred] + edge.weight_to(tid))
            dist[tid] = best
        return max(dist[tid] + self._sink[tid] for tid in order)

    def critical_path(self) -> Tuple[float, List[int]]:
        """Critical path length plus one witnessing node sequence."""
        order = self._topological_order()
        if order is None:
            raise WTPGError("cannot take critical path of a cyclic WTPG")
        if not order:
            return 0.0, []
        dist: Dict[int, float] = {}
        via: Dict[int, Optional[int]] = {}
        for tid in order:
            best, best_pred = self._source[tid], None
            for pred in self.predecessors(tid):
                edge = self._pairs[_pair(tid, pred)]
                candidate = dist[pred] + edge.weight_to(tid)
                if candidate > best:
                    best, best_pred = candidate, pred
            dist[tid] = best
            via[tid] = best_pred
        end = max(order, key=lambda t: dist[t] + self._sink[t])
        path: List[int] = []
        node: Optional[int] = end
        while node is not None:
            path.append(node)
            node = via[node]
        path.reverse()
        return dist[end] + self._sink[end], path

    # -- copying ------------------------------------------------------------------

    def copy(self) -> "WTPG":
        """An independent deep copy, for hypothetical (what-if) evaluation."""
        clone = WTPG()
        clone._source = dict(self._source)
        clone._sink = dict(self._sink)
        clone._neighbors = {tid: set(nbrs) for tid, nbrs in self._neighbors.items()}
        clone._succ = {tid: set(s) for tid, s in self._succ.items()}
        clone._pred = {tid: set(p) for tid, p in self._pred.items()}
        clone._pairs = {
            key: PairEdge(e.a, e.b, e.weight_ab, e.weight_ba, e.resolved_to)
            for key, e in self._pairs.items()}
        return clone

    def __repr__(self) -> str:
        pairs = []
        for edge in self._pairs.values():
            if edge.resolved:
                pred = edge.predecessor()
                succ = edge.resolved_to
                pairs.append(f"T{pred}->T{succ}:{edge.weight_to(succ):g}")
            else:
                pairs.append(
                    f"(T{edge.a},T{edge.b}):{edge.weight_ab:g}/{edge.weight_ba:g}")
        nodes = ", ".join(f"T{t}:{w:g}" for t, w in sorted(self._source.items()))
        return f"<WTPG nodes=[{nodes}] pairs=[{', '.join(pairs)}]>"
