"""Weighted Transaction Precedence Graph (Definition 1, Section 3.1).

Nodes are active transactions plus two virtual nodes: ``T0`` (the initial
transaction — represented implicitly by per-node *source weights*
``w(T0 -> Ti)``) and ``Tf`` (the final transaction — per-node *sink
weights* ``w(Ti -> Tf)``, zero under the paper's cost model).

Between two transactions there is at most one *pair edge* ``(Ti, Tj)``
carrying both directed weights.  A pair starts *unresolved* (a
conflicting-edge, shown as the shaded double arrow in the paper's figures)
and is *resolved* into a precedence-edge when the serialization order of
the two transactions becomes fixed.  Resolution is monotone: a pair can
never flip direction — attempting to is exactly what the schedulers must
detect and avoid (a predicted deadlock / inconsistency with the optimised
order W).

Weights are object counts and under the sequential-access transaction model
each weight is the shortest possible time (in ``ObjTime`` units) between
two schedule events; the critical (longest) ``T0 -> Tf`` path of a fully
resolved WTPG is therefore the earliest possible completion time of the
whole schedule — the quantity both proposed schedulers minimise.

Derived state is maintained *incrementally* so the scheduler hot paths do
not pay a full recomputation per query:

* a cached topological order of the precedence edges, locally reordered on
  :meth:`WTPG.resolve` (Pearce–Kelly style) and patched on node add/remove,
  which makes :meth:`WTPG.has_precedence_cycle` O(1) amortised;
* memoized :meth:`WTPG.ancestors` / :meth:`WTPG.descendants` closures,
  invalidated by a structure generation counter;
* a dirty-set :meth:`WTPG.critical_path_length` that, while the precedence
  structure is unchanged, recomputes only the dist values downstream of
  nodes whose weights actually changed (the per-object
  :meth:`WTPG.decrement_source` path).

See ``docs/wtpg.md`` for the per-operation complexity table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional, Set,
                    Tuple)

from repro.errors import WTPGError

Pair = FrozenSet[int]


def _pair(a: int, b: int) -> Pair:
    if a == b:
        raise WTPGError(f"a transaction cannot conflict with itself: T{a}")
    return frozenset((a, b))


@dataclass
class PairEdge:
    """The conflicting/precedence edge between one pair of transactions.

    ``weight_to(b)`` is ``w(a -> b)``: the objects ``b`` must still access
    after ``a`` commits before ``b`` itself can commit.  ``resolved_to`` is
    ``None`` while the pair is a conflicting-edge, otherwise the tid that
    *follows* in the serialization order.
    """

    a: int
    b: int
    weight_ab: float = 0.0  # w(a -> b)
    weight_ba: float = 0.0  # w(b -> a)
    resolved_to: Optional[int] = None  # the successor tid, or None
    # Owning-WTPG notification for weight raises, so cached critical-path
    # state can be dirtied; a standalone PairEdge simply has no observer.
    _on_weight_change: Optional[Callable[[int], None]] = field(
        default=None, init=False, repr=False, compare=False)

    def weight_to(self, successor: int) -> float:
        if successor == self.b:
            return self.weight_ab
        if successor == self.a:
            return self.weight_ba
        raise WTPGError(f"T{successor} is not part of pair ({self.a},{self.b})")

    def raise_weight_to(self, successor: int, weight: float) -> None:
        """Set ``w(other -> successor)`` to the max of old and new.

        The paper: when several step pairs of the same two transactions
        conflict, each directed weight takes the largest ``due`` value.
        """
        if successor == self.b:
            if weight > self.weight_ab:
                self.weight_ab = weight
                if self._on_weight_change is not None:
                    self._on_weight_change(successor)
        elif successor == self.a:
            if weight > self.weight_ba:
                self.weight_ba = weight
                if self._on_weight_change is not None:
                    self._on_weight_change(successor)
        else:
            raise WTPGError(
                f"T{successor} is not part of pair ({self.a},{self.b})")

    @property
    def resolved(self) -> bool:
        return self.resolved_to is not None

    def predecessor(self) -> int:
        if self.resolved_to is None:
            raise WTPGError(f"pair ({self.a},{self.b}) is unresolved")
        return self.a if self.resolved_to == self.b else self.b

    def other(self, tid: int) -> int:
        if tid == self.a:
            return self.b
        if tid == self.b:
            return self.a
        raise WTPGError(f"T{tid} is not part of pair ({self.a},{self.b})")


class WTPG:
    """The weighted transaction precedence graph of all active transactions."""

    def __init__(self) -> None:
        self._source: Dict[int, float] = {}   # w(T0 -> Ti)
        self._sink: Dict[int, float] = {}     # w(Ti -> Tf), 0 in the paper
        self._pairs: Dict[Pair, PairEdge] = {}
        self._neighbors: Dict[int, Set[int]] = {}
        # Incrementally maintained precedence adjacency (resolved pairs
        # only) so successor/ancestor queries do not scan all pair edges.
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}
        # Ordered index of unresolved pairs (dict-as-ordered-set) so
        # iteration stays deterministic, like scanning _pairs used to be.
        self._unresolved: Dict[Pair, None] = {}
        # Generation counters: ``_generation`` bumps on every observable
        # change (structure or weights) and is exposed for external cache
        # keys; ``_structure_gen`` bumps only when the precedence relation
        # (nodes or resolved edges) changes and gates the closure caches.
        self._generation = 0
        self._structure_gen = 0
        # Cached topological order of the precedence edges.
        # _known_cyclic: None = unknown (recompute lazily), False = the
        # cached order/positions are valid, True = cyclic (no order).
        self._known_cyclic: Optional[bool] = None
        self._topo_order: Optional[List[int]] = None
        self._topo_pos: Dict[int, int] = {}
        # Memoized transitive closures, valid while _closure_gen matches.
        self._anc_cache: Dict[int, Set[int]] = {}
        self._desc_cache: Dict[int, Set[int]] = {}
        self._closure_gen = -1
        # Critical-path cache: dist per node, valid while _cp_gen matches
        # the structure generation; _cp_dirty holds nodes whose weights
        # changed since dist was computed (suffix-recompute path).
        self._cp_dist: Optional[Dict[int, float]] = None
        self._cp_value = 0.0
        self._cp_gen = -1
        self._cp_dirty: Set[int] = set()

    # -- generations -----------------------------------------------------------

    @property
    def generation(self) -> int:
        """Bumped on every observable mutation (structure or weights).

        External caches (e.g. a scheduler's E-value cache) can key on this
        to detect that *anything* about the graph changed.
        """
        return self._generation

    def _note_edge_weight(self, successor: int) -> None:
        """A pair edge's directed weight was raised (PairEdge callback)."""
        self._generation += 1
        if successor in self._source:
            self._cp_dirty.add(successor)

    # -- nodes ---------------------------------------------------------------

    @property
    def transactions(self) -> Set[int]:
        return set(self._source)

    def __contains__(self, tid: int) -> bool:
        return tid in self._source

    def __len__(self) -> int:
        return len(self._source)

    def add_transaction(self, tid: int, source_weight: float,
                        sink_weight: float = 0.0) -> None:
        """Add a node with ``w(T0->Ti) = source_weight`` (its total due)."""
        if tid in self._source:
            raise WTPGError(f"T{tid} is already in the WTPG")
        if source_weight < 0 or sink_weight < 0:
            raise WTPGError("WTPG weights must be non-negative")
        self._source[tid] = source_weight
        self._sink[tid] = sink_weight
        self._neighbors[tid] = set()
        self._succ[tid] = set()
        self._pred[tid] = set()
        self._generation += 1
        self._structure_gen += 1
        # An isolated new node extends any valid topological order.
        if self._known_cyclic is False:
            assert self._topo_order is not None
            self._topo_pos[tid] = len(self._topo_order)
            self._topo_order.append(tid)

    def remove_transaction(self, tid: int) -> None:
        """Drop a node and all its pair edges (commit or admission abort)."""
        self._require(tid)
        del self._source[tid]
        del self._sink[tid]
        for other in self._neighbors.pop(tid):
            self._neighbors[other].discard(tid)
            self._succ[other].discard(tid)
            self._pred[other].discard(tid)
            key = _pair(tid, other)
            self._unresolved.pop(key, None)
            del self._pairs[key]
        del self._succ[tid]
        del self._pred[tid]
        self._generation += 1
        self._structure_gen += 1
        if self._known_cyclic is True:
            # Removal may have broken the cycle: back to unknown.
            self._known_cyclic = None
        elif self._known_cyclic is False:
            assert self._topo_order is not None
            index = self._topo_pos.pop(tid)
            self._topo_order.pop(index)
            for i in range(index, len(self._topo_order)):
                self._topo_pos[self._topo_order[i]] = i

    def _require(self, tid: int) -> None:
        if tid not in self._source:
            raise WTPGError(f"T{tid} is not in the WTPG")

    # -- weights ---------------------------------------------------------------

    def source_weight(self, tid: int) -> float:
        self._require(tid)
        return self._source[tid]

    def set_source_weight(self, tid: int, value: float) -> None:
        self._require(tid)
        value = max(0.0, value)
        if value != self._source[tid]:
            self._source[tid] = value
            self._generation += 1
            self._cp_dirty.add(tid)

    def decrement_source(self, tid: int, objects: float = 1.0) -> None:
        """Apply a weight-adjustment message (one object processed)."""
        self._require(tid)
        value = max(0.0, self._source[tid] - objects)
        if value != self._source[tid]:
            self._source[tid] = value
            self._generation += 1
            self._cp_dirty.add(tid)

    # -- pair edges -------------------------------------------------------------

    def ensure_pair(self, a: int, b: int) -> PairEdge:
        """The pair edge for (a, b), created unresolved if absent."""
        self._require(a)
        self._require(b)
        key = _pair(a, b)
        edge = self._pairs.get(key)
        if edge is None:
            lo, hi = min(a, b), max(a, b)
            edge = PairEdge(lo, hi)
            edge._on_weight_change = self._note_edge_weight
            self._pairs[key] = edge
            self._unresolved[key] = None
            self._neighbors[a].add(b)
            self._neighbors[b].add(a)
            self._generation += 1
        return edge

    def pair(self, a: int, b: int) -> Optional[PairEdge]:
        return self._pairs.get(_pair(a, b))

    def pairs(self) -> Tuple[PairEdge, ...]:
        return tuple(self._pairs.values())

    def unresolved_pairs(self) -> Tuple[PairEdge, ...]:
        return tuple(self._pairs[key] for key in self._unresolved)

    def conflict_neighbors(self, tid: int) -> Set[int]:
        """All transactions sharing a pair edge with ``tid`` (any state)."""
        self._require(tid)
        return set(self._neighbors[tid])

    def orientation(self, a: int, b: int) -> Optional[Tuple[int, int]]:
        """``(pred, succ)`` if the pair is resolved, else None."""
        edge = self._pairs.get(_pair(a, b))
        if edge is None or not edge.resolved:
            return None
        return (edge.predecessor(), edge.resolved_to)  # type: ignore[arg-type]

    def resolve(self, predecessor: int, successor: int) -> None:
        """Resolve the pair so ``predecessor`` precedes ``successor``.

        Idempotent for an identical resolution; raises on an attempt to
        flip an already resolved pair (callers must detect that case as a
        deadlock/inconsistency *before* resolving).
        """
        key = _pair(predecessor, successor)
        edge = self._pairs.get(key)
        if edge is None:
            raise WTPGError(
                f"no conflicting-edge between T{predecessor} and T{successor}")
        if edge.resolved:
            if edge.resolved_to != successor:
                raise WTPGError(
                    f"pair ({edge.a},{edge.b}) already resolved the other way")
            return
        edge.resolved_to = successor
        self._succ[predecessor].add(successor)
        self._pred[successor].add(predecessor)
        self._unresolved.pop(key, None)
        self._generation += 1
        self._structure_gen += 1
        if self._known_cyclic is False:
            self._pk_insert(predecessor, successor)

    # -- cached topological order ------------------------------------------------

    def _pk_insert(self, pred: int, succ: int) -> None:
        """Pearce–Kelly local reorder after the new edge ``pred -> succ``.

        Precondition: the cached order was valid for the graph without the
        new edge.  If the edge already points forward, nothing moves; else
        only the nodes between ``pos[succ]`` and ``pos[pred]`` that are
        affected get new positions.  Detects a cycle (then drops the order
        and marks the graph cyclic).
        """
        order, pos = self._topo_order, self._topo_pos
        assert order is not None
        if pos[pred] < pos[succ]:
            return
        lb, ub = pos[succ], pos[pred]
        # Forward: nodes reachable from succ within the affected region.
        # In a valid order every existing edge increases position, so any
        # path succ ~> pred stays within [lb, ub]; hitting pred = cycle.
        seen_f: Set[int] = {succ}
        stack = [succ]
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt == pred:
                    self._known_cyclic = True
                    self._topo_order = None
                    self._topo_pos = {}
                    return
                if nxt not in seen_f and pos[nxt] <= ub:
                    seen_f.add(nxt)
                    stack.append(nxt)
        # Backward: nodes reaching pred within the affected region.
        seen_b: Set[int] = {pred}
        stack = [pred]
        while stack:
            node = stack.pop()
            for nxt in self._pred[node]:
                if nxt not in seen_b and pos[nxt] >= lb:
                    seen_b.add(nxt)
                    stack.append(nxt)
        # No cycle: seen_f and seen_b are disjoint.  Reassign the union's
        # old positions: the backward group first, then the forward group,
        # each keeping its internal relative order.
        slots = sorted(pos[t] for t in seen_b | seen_f)
        shuffled = (sorted(seen_b, key=pos.__getitem__)
                    + sorted(seen_f, key=pos.__getitem__))
        for slot, node in zip(slots, shuffled):
            order[slot] = node
            pos[node] = slot

    def _ensure_topo(self) -> None:
        """Make the cyclicity verdict (and order, if acyclic) available."""
        if self._known_cyclic is not None:
            return
        order = self._topological_order()
        if order is None:
            self._known_cyclic = True
            self._topo_order = None
            self._topo_pos = {}
        else:
            self._known_cyclic = False
            self._topo_order = order
            self._topo_pos = {tid: i for i, tid in enumerate(order)}

    # -- precedence structure -----------------------------------------------------

    def predecessors(self, tid: int) -> Set[int]:
        """Direct predecessors of ``tid`` via resolved pairs."""
        self._require(tid)
        return set(self._pred[tid])

    def successors(self, tid: int) -> Set[int]:
        """Direct successors of ``tid`` via resolved pairs."""
        self._require(tid)
        return set(self._succ[tid])

    def ancestors(self, tid: int) -> Set[int]:
        """``before(T)``: every transaction preceding ``tid`` transitively.

        Memoized per structure generation; the returned set is a copy the
        caller may mutate freely.
        """
        self._require(tid)
        cache = self._closure_cache(self._anc_cache)
        hit = cache.get(tid)
        if hit is None:
            hit = self._closure(tid, self._pred)
            cache[tid] = hit
        return set(hit)

    def descendants(self, tid: int) -> Set[int]:
        """``after(T)``: every transaction following ``tid`` transitively.

        Memoized per structure generation; the returned set is a copy.
        """
        self._require(tid)
        cache = self._closure_cache(self._desc_cache)
        hit = cache.get(tid)
        if hit is None:
            hit = self._closure(tid, self._succ)
            cache[tid] = hit
        return set(hit)

    def _closure_cache(self, cache: Dict[int, Set[int]]) -> Dict[int, Set[int]]:
        if self._closure_gen != self._structure_gen:
            self._anc_cache.clear()
            self._desc_cache.clear()
            self._closure_gen = self._structure_gen
        return cache

    def _closure(self, tid: int, adjacency: Dict[int, Set[int]]) -> Set[int]:
        seen: Set[int] = set()
        stack = [tid]
        while stack:
            node = stack.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        seen.discard(tid)
        return seen

    def has_precedence_cycle(self) -> bool:
        """True if the resolved (precedence) edges contain a cycle.

        O(1) amortised: the verdict is maintained incrementally with the
        cached topological order.
        """
        self._ensure_topo()
        return bool(self._known_cyclic)

    def creates_cycle_from(self, tid: int, targets: Iterable[int]) -> bool:
        """Would adding edges ``tid -> t`` for each target close a cycle?

        Copy-free probe: the existing precedence graph is acyclic, so any
        new cycle must pass through one of the new edges and return to
        ``tid`` — i.e. some target already reaches ``tid``.
        """
        self._require(tid)
        goal = set(targets)
        if tid in goal:
            return True
        seen: Set[int] = set()
        stack = [t for t in goal if t in self._source]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for succ in self._succ[node]:
                if succ == tid:
                    return True
                if succ not in seen:
                    stack.append(succ)
        return False

    def _topological_order(self) -> Optional[List[int]]:
        """Full deterministic Kahn order (smallest-tid-first tie-break)."""
        indegree = {tid: 0 for tid in self._source}
        for edge in self._pairs.values():
            if edge.resolved:
                indegree[edge.resolved_to] += 1  # type: ignore[index]
        heap = [tid for tid, deg in indegree.items() if deg == 0]
        heapify(heap)
        order: List[int] = []
        while heap:
            node = heappop(heap)
            order.append(node)
            for succ in self._succ[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heappush(heap, succ)
        if len(order) != len(self._source):
            return None
        return order

    # -- critical path -----------------------------------------------------------

    def critical_path_length(self) -> float:
        """Length of the longest ``T0 -> Tf`` path over precedence edges.

        Unresolved conflicting-edges are ignored (deleted), as in Step 3 of
        the estimator ``E(q)``.  Raises :class:`WTPGError` on a precedence
        cycle — check :meth:`has_precedence_cycle` first where a cycle is a
        legal outcome to detect.

        Cached: while the precedence structure is unchanged, only the dist
        values downstream of weight-dirtied nodes are recomputed.
        """
        self._ensure_topo()
        if self._known_cyclic:
            raise WTPGError("cannot take critical path of a cyclic WTPG")
        order = self._topo_order
        assert order is not None
        if not order:
            self._cp_dirty.clear()
            return 0.0
        # Generation guard first, memo read second: reading _cp_dist
        # before comparing _cp_gen is exactly the stale-read shape
        # invariant 7 (and RL007) exists to rule out.
        if self._cp_gen == self._structure_gen and self._cp_dist is not None:
            dist = self._cp_dist
            if not self._cp_dirty:
                return self._cp_value
            affected: Set[int] = set()
            for tid in self._cp_dirty:
                if tid in self._source:
                    affected.add(tid)
                    affected |= self.descendants(tid)
            self._cp_dirty.clear()
            if not affected:
                return self._cp_value
            for tid in order:
                if tid in affected:
                    dist[tid] = self._dist_of(tid, dist)
        else:
            dist = {}
            for tid in order:
                dist[tid] = self._dist_of(tid, dist)
            self._cp_dist = dist
            self._cp_gen = self._structure_gen
            self._cp_dirty.clear()
        sink = self._sink
        self._cp_value = max(dist[tid] + sink[tid] for tid in order)
        return self._cp_value

    def _dist_of(self, tid: int, dist: Dict[int, float]) -> float:
        best = self._source[tid]
        for pred in self._pred[tid]:
            cand = dist[pred] + self._pairs[_pair(tid, pred)].weight_to(tid)
            if cand > best:
                best = cand
        return best

    def critical_path(self) -> Tuple[float, List[int]]:
        """Critical path length plus one witnessing node sequence.

        Uses the deterministic full Kahn order so the witness path's
        tie-breaks are stable run to run (the cached order is merely *a*
        valid order).
        """
        order = self._topological_order()
        if order is None:
            raise WTPGError("cannot take critical path of a cyclic WTPG")
        if not order:
            return 0.0, []
        dist: Dict[int, float] = {}
        via: Dict[int, Optional[int]] = {}
        for tid in order:
            best, best_pred = self._source[tid], None
            for pred in self.predecessors(tid):
                edge = self._pairs[_pair(tid, pred)]
                candidate = dist[pred] + edge.weight_to(tid)
                if candidate > best:
                    best, best_pred = candidate, pred
            dist[tid] = best
            via[tid] = best_pred
        end = max(order, key=lambda t: dist[t] + self._sink[t])
        path: List[int] = []
        node: Optional[int] = end
        while node is not None:
            path.append(node)
            node = via[node]
        path.reverse()
        return dist[end] + self._sink[end], path

    # -- copying ------------------------------------------------------------------

    def copy(self) -> "WTPG":
        """An independent deep copy, for hypothetical (what-if) evaluation."""
        clone = WTPG()
        clone._source = dict(self._source)
        clone._sink = dict(self._sink)
        clone._neighbors = {tid: set(nbrs) for tid, nbrs in self._neighbors.items()}
        clone._succ = {tid: set(s) for tid, s in self._succ.items()}
        clone._pred = {tid: set(p) for tid, p in self._pred.items()}
        clone._pairs = {}
        for key, e in self._pairs.items():
            edge = PairEdge(e.a, e.b, e.weight_ab, e.weight_ba, e.resolved_to)
            edge._on_weight_change = clone._note_edge_weight
            clone._pairs[key] = edge
        clone._unresolved = dict(self._unresolved)
        return clone

    # -- cache validation (paranoia mode) -----------------------------------------

    def cache_violations(self) -> List[str]:
        """Check every incrementally maintained cache against a fresh
        recomputation; returns human-readable problems (empty = healthy).

        Used by :mod:`repro.core.invariants` and the property suite to
        prove the Pearce–Kelly maintenance and the closure/critical-path
        memos never drift from the ground truth.
        """
        problems: List[str] = []
        fresh_order = self._topological_order()
        if self._known_cyclic is True and fresh_order is not None:
            problems.append("cached verdict says cyclic but graph is acyclic")
        if self._known_cyclic is False:
            if fresh_order is None:
                problems.append("cached verdict says acyclic but graph "
                                "has a precedence cycle")
            elif self._topo_order is None:
                problems.append("acyclic verdict without a cached order")
            else:
                order = self._topo_order
                if sorted(order) != sorted(self._source):
                    problems.append("cached topological order does not "
                                    "cover the node set")
                pos = self._topo_pos
                if pos != {tid: i for i, tid in enumerate(order)}:
                    problems.append("cached topo positions out of sync")
                else:
                    for edge in self._pairs.values():
                        if edge.resolved:
                            succ = edge.resolved_to
                            pred = edge.predecessor()
                            if pos[pred] >= pos[succ]:
                                problems.append(
                                    f"cached order violates T{pred}->T{succ}")
        expected_unresolved = {key for key, e in self._pairs.items()
                               if not e.resolved}
        if set(self._unresolved) != expected_unresolved:
            problems.append("unresolved-pair index out of sync")
        if self._closure_gen == self._structure_gen:
            for tid, cached in self._anc_cache.items():
                if tid in self._source and cached != self._closure(
                        tid, self._pred):
                    problems.append(f"stale ancestors cache for T{tid}")
            for tid, cached in self._desc_cache.items():
                if tid in self._source and cached != self._closure(
                        tid, self._succ):
                    problems.append(f"stale descendants cache for T{tid}")
        if (self._cp_dist is not None and self._cp_gen == self._structure_gen
                and not self._cp_dirty and fresh_order is not None):
            fresh: Dict[int, float] = {}
            for tid in fresh_order:
                fresh[tid] = self._dist_of(tid, fresh)
            if fresh != self._cp_dist:
                problems.append("stale critical-path dist cache")
        return problems

    def __repr__(self) -> str:
        pairs: List[str] = []
        for edge in self._pairs.values():
            if edge.resolved:
                pred = edge.predecessor()
                succ = edge.resolved_to
                pairs.append(f"T{pred}->T{succ}:{edge.weight_to(succ):g}")
            else:
                pairs.append(
                    f"(T{edge.a},T{edge.b}):{edge.weight_ab:g}/{edge.weight_ba:g}")
        nodes = ", ".join(f"T{t}:{w:g}" for t, w in sorted(self._source.items()))
        return f"<WTPG nodes=[{nodes}] pairs=[{', '.join(pairs)}]>"
