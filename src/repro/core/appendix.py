"""Literal port of the paper's appendix algorithm (Lcomp / Rcomp).

The appendix computes, for a chain-form WTPG ``G(1, N)`` with *all*
conflicting edges unresolved, the length of the shortest achievable
critical path in O(N^2), via two triplet tables computed right-to-left:

* ``L[k] = (curr, crit, rev)`` — the optimum of the sub-chain
  ``G(k-1, N)`` *given that edge (n[k-1], n[k]) is set downwards*
  (``n[k-1] -> n[k]``): ``crit`` is the optimal critical-path length,
  ``rev`` the first label whose edge flips upwards in the optimal order,
  and ``curr`` the length of the path ``n0 -> n[k-1] -> ... -> n[rev]``.
* ``R[k]`` — the same for edge (n[k-1], n[k]) set upwards, with ``curr``
  the critical-path length from ``n0`` to ``n[k-1]``.

Weight conventions (paper Figure 3): ``r[k] = w(T0 -> n[k])``,
``a[k] = w(n[k-1] -> n[k])`` (downward weight of the edge between labels
k-1 and k), ``b[k] = w(n[k] -> n[k-1])`` (upward weight), for
``k = 2 .. N`` (1-based labels).

The scanned pseudocode is partially corrupted; this module is our
best-faith reconstruction, and the test suite proves it equivalent to
both the exhaustive optimum and the production Pareto-frontier DP
(:mod:`repro.core.chain_opt`) on thousands of random chains.  The
production schedulers use ``chain_opt`` because it additionally supports
pre-resolved (fixed) and absent edges, which arise mid-schedule; this
port exists for fidelity and cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.chain_opt import ChainPair

from repro.errors import WTPGError


@dataclass(frozen=True)
class Triplet:
    """The (curr, crit, rev) structural parameters of Definition 3."""

    curr: float
    crit: float
    rev: int


def _validate(r: Sequence[float], a: Sequence[float],
              b: Sequence[float]) -> int:
    n = len(r)
    if len(a) != n or len(b) != n:
        raise WTPGError(
            "a and b must have one (ignored) leading slot per node: "
            f"len(r)={n}, len(a)={len(a)}, len(b)={len(b)}")
    if any(w < 0 for w in list(r) + list(a) + list(b)):
        raise WTPGError("appendix weights must be non-negative")
    return n


def appendix_shortest_critical_path(r1: Sequence[float], a1: Sequence[float],
                                    b1: Sequence[float]) -> float:
    """Shortest critical path of the free chain ``G(1, N)``.

    Arguments are 1-based in spirit: ``r1[k]`` for ``k = 1..N`` and
    ``a1[k]``/``b1[k]`` for ``k = 2..N``; pass them as 0-indexed
    sequences of length N+1 with dummy entries at index 0 (and index 1
    for ``a``/``b``).  Use :func:`from_chain` to convert from the
    ``chain_opt`` representation.
    """
    n = _validate(r1, a1, b1) - 1
    if n <= 0:
        return 0.0
    if n == 1:
        return float(r1[1])

    r = [float(x) for x in r1]
    a = [float(x) for x in a1]
    b = [float(x) for x in b1]

    big_l: Dict[int, Triplet] = {}
    big_r: Dict[int, Triplet] = {}

    # Base case k = N: no edge (N, N+1) exists, so L1/L2 coincide.
    big_l[n] = Triplet(curr=r[n - 1] + a[n],
                       crit=max(r[n - 1] + a[n], r[n]), rev=n)
    big_r[n] = Triplet(curr=max(r[n] + b[n], r[n - 1]),
                       crit=max(r[n] + b[n], r[n - 1]), rev=n)

    def r_crit(index: int) -> float:
        # R[N+1].crit stands for the empty suffix S2(N, N).
        return big_r[index].crit if index <= n else 0.0

    def l_crit(index: int) -> float:
        return big_l[index].crit if index <= n else 0.0

    for k in range(n - 1, 1, -1):
        big_l[k] = _lcomp(k, r, a, b, big_l, big_r, r_crit)
        big_r[k] = _rcomp(k, r, a, b, big_l, big_r, l_crit)

    return min(big_l[2].crit, big_r[2].crit)


def _lcomp(k: int, r: List[float], a: List[float], b: List[float],
           big_l: Dict[int, Triplet], big_r: Dict[int, Triplet],
           r_crit: Callable[[int], float]) -> Triplet:
    """L[k]: edge (k-1, k) set downwards; see module docstring."""
    nxt = big_l[k + 1]

    # -- L1[k]: edge (k, k+1) also downwards --------------------------------
    temp = nxt.curr - r[k] + r[k - 1] + a[k]
    if temp <= nxt.crit:
        l1 = Triplet(curr=temp, crit=nxt.crit, rev=nxt.rev)
    else:
        # EXPR1: flip the run upwards at some h in k+1 .. L[k+1].rev.
        # V(h) is the critical path inside G(k-1, h) resolved by the
        # down-run; C(h) the plain path length n0 -> n[k-1] -> ... -> n[h].
        best_crit, best_h, best_curr = float("inf"), nxt.rev, temp
        v = r[k - 1]
        c = r[k - 1]
        for h in range(k, nxt.rev + 1):
            c = c + a[h]
            v = max(r[h], v + a[h])
            if h >= k + 1:
                candidate = max(v, r_crit(h + 1))
                if candidate < best_crit:
                    best_crit, best_h, best_curr = candidate, h, c
        l1 = Triplet(curr=best_curr, crit=best_crit, rev=best_h)

    # -- L2[k]: edge (k, k+1) upwards ----------------------------------------
    l2_curr = r[k - 1] + a[k]
    l2 = Triplet(curr=l2_curr, crit=max(l2_curr, r_crit(k + 1)), rev=k)

    return l1 if l1.crit <= l2.crit else l2


def _rcomp(k: int, r: List[float], a: List[float], b: List[float],
           big_l: Dict[int, Triplet], big_r: Dict[int, Triplet],
           l_crit: Callable[[int], float]) -> Triplet:
    """R[k]: edge (k-1, k) set upwards; see module docstring."""
    nxt = big_r[k + 1]

    # -- R1[k]: edge (k, k+1) also upwards (the up-run extends) ---------------
    # NOTE: the scanned pseudocode reads "R1[k] = [temp, ...]" here, but
    # Definition 3 requires curr to be the *critical path* from n0 to
    # n[k-1], which includes the direct entry r[k-1]; without the max the
    # table underestimates on ~0.5 % of random chains (verified against
    # exhaustive search).  We take this to be a transcription defect of
    # the scan.
    temp = nxt.curr + b[k]
    if max(r[k - 1], temp) <= nxt.crit:
        r1 = Triplet(curr=max(temp, r[k - 1]), crit=nxt.crit, rev=nxt.rev)
    elif r[k - 1] >= temp:
        r1 = Triplet(curr=r[k - 1], crit=r[k - 1], rev=nxt.rev)
    else:
        # EXPR2: break the up-run downwards at some h in k+1 .. R[k+1].rev.
        best_crit, best_h, best_curr = float("inf"), nxt.rev, temp
        c = r[k - 1]
        v = r[k - 1]
        for h in range(k, nxt.rev + 1):
            c = c - r[h - 1] + r[h] + b[h]
            v = max(c, v)
            if h >= k + 1:
                candidate = max(v, l_crit(h + 1))
                if candidate < best_crit:
                    best_crit, best_h, best_curr = candidate, h, v
        r1 = Triplet(curr=best_curr, crit=best_crit, rev=best_h)

    # -- R2[k]: edge (k, k+1) downwards ----------------------------------------
    r2_curr = max(r[k] + b[k], r[k - 1])
    r2 = Triplet(curr=r2_curr, crit=max(r2_curr, l_crit(k + 1)), rev=k)

    return r1 if r1.crit <= r2.crit else r2


def from_chain(source_weights: Sequence[float],
               pairs: Sequence[Optional[ChainPair]],
               ) -> Tuple[List[float], List[float], List[float]]:
    """Convert a ``chain_opt`` instance into the appendix (r, a, b) form.

    Every pair must be present and free (the appendix handles the initial
    optimisation of a fully unresolved chain).
    """
    n = len(source_weights)
    r = [0.0] + [float(w) for w in source_weights]
    a = [0.0, 0.0] + [0.0] * max(0, n - 1)
    b = [0.0, 0.0] + [0.0] * max(0, n - 1)
    for index, pair in enumerate(pairs):
        if pair is None or pair.fixed is not None:
            raise WTPGError(
                "the appendix algorithm requires a fully free chain")
        a[index + 2] = float(pair.down)
        b[index + 2] = float(pair.up)
    return r, a[:n + 1], b[:n + 1]
