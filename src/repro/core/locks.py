"""Partition-granule lock table with pre-declared locks.

The control node keeps one lock table over partition granules (Section 2.2).
Each active transaction *declares* every lock it will ever need at start
time; a declaration carries the ``due`` value of its step (Section 3.1), so
WTPG weights can be computed directly from the table.  When the lock for a
step is granted, that declaration is consumed (the paper: "a lock-declaration
is replaced by a lock-request when T requests to hold this lock") and the
entry becomes a *hold*.  All holds persist until commit (strict locking for
recovery) and are released together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.transaction import LockMode, TransactionSpec
from repro.errors import LockTableError


@dataclass(frozen=True)
class Declaration:
    """One declared (future or granted) lock of one step.

    ``due`` is the declared remaining work from the start of this step to
    the owning transaction's commit — attached to the lock table entry
    exactly as Section 3.1 prescribes.
    """

    tid: int
    step_index: int
    partition: int
    mode: LockMode
    due: float


class LockTable:
    """All declarations and holds, indexed by partition and transaction."""

    def __init__(self) -> None:
        # partition -> {(tid, step_index) -> Declaration}; pending only.
        self._pending: Dict[int, Dict[Tuple[int, int], Declaration]] = {}
        # partition -> {(tid, step_index) -> Declaration}; granted (holds).
        self._granted: Dict[int, Dict[Tuple[int, int], Declaration]] = {}
        # tid -> all its declarations (pending and granted alike).
        self._by_txn: Dict[int, List[Declaration]] = {}

    # -- registration ------------------------------------------------------

    def register(self, spec: TransactionSpec) -> None:
        """Enter every lock-declaration of ``spec`` into the table."""
        if spec.tid in self._by_txn:
            raise LockTableError(f"T{spec.tid} is already registered")
        decls: List[Declaration] = []
        for index, step in enumerate(spec.steps):
            decl = Declaration(spec.tid, index, step.partition, step.mode,
                               spec.due(index))
            decls.append(decl)
            self._pending.setdefault(step.partition, {})[
                (spec.tid, index)] = decl
        self._by_txn[spec.tid] = decls

    def unregister(self, tid: int) -> None:
        """Remove every entry of ``tid`` (commit or admission abort)."""
        decls = self._by_txn.pop(tid, None)
        if decls is None:
            raise LockTableError(f"T{tid} is not registered")
        for decl in decls:
            key = (decl.tid, decl.step_index)
            self._pending.get(decl.partition, {}).pop(key, None)
            self._granted.get(decl.partition, {}).pop(key, None)

    def is_registered(self, tid: int) -> bool:
        return tid in self._by_txn

    @property
    def active_transactions(self) -> Set[int]:
        return set(self._by_txn)

    # -- grants ------------------------------------------------------------

    def grant(self, tid: int, step_index: int) -> Declaration:
        """Convert the pending declaration of a step into a hold."""
        decl = self._find_declaration(tid, step_index)
        key = (tid, step_index)
        pending = self._pending.get(decl.partition, {})
        if key not in pending:
            raise LockTableError(
                f"lock for T{tid} step {step_index} was already granted")
        del pending[key]
        self._granted.setdefault(decl.partition, {})[key] = decl
        return decl

    def _find_declaration(self, tid: int, step_index: int) -> Declaration:
        for decl in self._by_txn.get(tid, ()):
            if decl.step_index == step_index:
                return decl
        raise LockTableError(f"T{tid} has no declaration for step {step_index}")

    # -- queries -----------------------------------------------------------

    def held_mode(self, tid: int, partition: int) -> Optional[LockMode]:
        """Strongest mode ``tid`` currently holds on ``partition``."""
        strongest: Optional[LockMode] = None
        for (owner, _), decl in self._granted.get(partition, {}).items():
            if owner != tid:
                continue
            if decl.mode is LockMode.EXCLUSIVE:
                return LockMode.EXCLUSIVE
            strongest = LockMode.SHARED
        return strongest

    def holds(self, tid: int, partition: int, mode: LockMode) -> bool:
        """True if ``tid`` holds ``partition`` in ``mode`` or stronger."""
        held = self.held_mode(tid, partition)
        if held is None:
            return False
        return held is LockMode.EXCLUSIVE or mode is LockMode.SHARED

    def conflicting_holders(self, tid: int, partition: int,
                            mode: LockMode) -> Set[int]:
        """Other transactions holding ``partition`` in a conflicting mode."""
        out: Set[int] = set()
        for (owner, _), decl in self._granted.get(partition, {}).items():
            if owner != tid and decl.mode.conflicts_with(mode):
                out.add(owner)
        return out

    def pending_conflicts(self, tid: int, partition: int,
                          mode: LockMode) -> List[Declaration]:
        """Other transactions' pending declarations conflicting with a lock.

        This is the paper's ``C(q)`` for a request ``q`` by ``tid`` on
        ``partition`` in ``mode``.
        """
        return [decl for decl in self._pending.get(partition, {}).values()
                if decl.tid != tid and decl.mode.conflicts_with(mode)]

    def declarations_of(self, tid: int) -> Tuple[Declaration, ...]:
        """All declarations of ``tid`` (pending and granted)."""
        return tuple(self._by_txn.get(tid, ()))

    def pending_of(self, tid: int) -> Tuple[Declaration, ...]:
        """Declarations of ``tid`` whose locks are not yet granted."""
        return tuple(
            decl for decl in self._by_txn.get(tid, ())
            if (tid, decl.step_index) in self._pending.get(decl.partition, {}))

    def granted_of(self, tid: int) -> Tuple[Declaration, ...]:
        """Declarations of ``tid`` whose locks are currently held."""
        return tuple(
            decl for decl in self._by_txn.get(tid, ())
            if (tid, decl.step_index) in self._granted.get(decl.partition, {}))

    def conflict_count(self, decl: Declaration,
                       count: str = "declarations") -> int:
        """Number of conflicts with other pending declarations.

        This is ``|C(q)|`` for the declaration viewed as a future request —
        the quantity bounded by K in the K-conflict constraint
        (Section 3.3: "each lock-declaration may conflict with K
        lock-declarations at most").

        ``count="declarations"`` (the paper's literal wording) counts
        conflicting declarations individually; ``count="transactions"``
        counts distinct conflicting transactions — a plausibly intended,
        looser reading (a read-then-upgrade pattern contributes two
        conflicting declarations per rival transaction under the literal
        one).  EXPERIMENTS.md discusses how the choice affects the
        Experiment 4 hybrid lower bounds.
        """
        if count == "declarations":
            return sum(
                1 for (owner, _), other
                in self._pending.get(decl.partition, {}).items()
                if owner != decl.tid and other.mode.conflicts_with(decl.mode))
        if count == "transactions":
            owners: Set[int] = {
                owner for (owner, _), other
                in self._pending.get(decl.partition, {}).items()
                if owner != decl.tid and other.mode.conflicts_with(decl.mode)}
            return len(owners)
        raise LockTableError(f"unknown conflict count mode {count!r}")

    def k_conflict_violated(self, k: int,
                            partitions: Optional[Iterable[int]] = None,
                            count: str = "declarations") -> bool:
        """True if any pending declaration conflicts with more than ``k``.

        ``partitions`` restricts the scan (only partitions touched by a
        newly registered transaction can change counts).
        """
        scan = self._pending if partitions is None else {
            p: self._pending.get(p, {}) for p in partitions}
        for entries in scan.values():
            for decl in entries.values():
                if self.conflict_count(decl, count=count) > k:
                    return True
        return False

    def conflicting_transactions(self, spec_a: Iterable[Declaration],
                                 tid_b: int) -> List[Tuple[Declaration, Declaration]]:
        """All conflicting declaration pairs between ``spec_a`` and ``tid_b``."""
        pairs: List[Tuple[Declaration, Declaration]] = []
        decls_b = self._by_txn.get(tid_b, ())
        by_partition: Dict[int, List[Declaration]] = {}
        for decl in decls_b:
            by_partition.setdefault(decl.partition, []).append(decl)
        for decl_a in spec_a:
            for decl_b in by_partition.get(decl_a.partition, ()):
                if decl_a.mode.conflicts_with(decl_b.mode):
                    pairs.append((decl_a, decl_b))
        return pairs

    def is_granted(self, decl: Declaration) -> bool:
        """True if this declaration's lock is currently held."""
        return ((decl.tid, decl.step_index)
                in self._granted.get(decl.partition, {}))

    def snapshot(self) -> Dict[int, Dict[str, List[str]]]:
        """A readable dump of the table, for debugging and logging."""
        out: Dict[int, Dict[str, List[str]]] = {}
        partitions = set(self._pending) | set(self._granted)
        for partition in sorted(partitions):
            pend = [f"T{d.tid}.{d.step_index}:{d.mode}"
                    for d in self._pending.get(partition, {}).values()]
            held = [f"T{d.tid}.{d.step_index}:{d.mode}"
                    for d in self._granted.get(partition, {}).values()]
            if pend or held:
                out[partition] = {"pending": sorted(pend), "granted": sorted(held)}
        return out
