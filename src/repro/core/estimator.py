"""The local contention estimator ``E(q)`` (Section 3.3).

``E(q)`` estimates the degree of data/resource contention in the present
schedule *if the lock request q were granted now*:

1. Build the WTPG where q has been granted — i.e. apply the precedence
   resolutions granting q implies.  If that contradicts an existing
   resolution or creates a precedence cycle, q causes a deadlock and
   ``E(q) = infinity``.
2. Identify ``before(T)`` / ``after(T)`` (ancestors / descendants of q's
   transaction) and resolve every conflicting-edge crossing from a
   ``before`` node to an ``after`` node in that direction (those
   resolutions are forced by transitivity).
3. Delete the remaining conflicting-edges and return the critical-path
   length from T0 to Tf.

The K-WTPG scheduler grants q only when ``E(q)`` is smallest among the
conflicting declarations ``C(q)``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.wtpg import WTPG
from repro.errors import WTPGError

INFINITE_CONTENTION = float("inf")


def estimate_contention(wtpg: WTPG, tid: int,
                        implied_resolutions: Sequence[Tuple[int, int]],
                        ) -> float:
    """``E(q)`` for a request by ``tid`` implying the given resolutions.

    ``implied_resolutions`` are the ``(predecessor, successor)`` pairs that
    granting q fixes (successor is normally another transaction whose
    conflicting declaration must now wait for ``tid`` to commit).  The
    input graph is never modified.

    Returns :data:`INFINITE_CONTENTION` when q would cause a deadlock.
    """
    if tid not in wtpg:
        raise WTPGError(f"T{tid} is not in the WTPG")

    graph = wtpg.copy()
    for predecessor, successor in implied_resolutions:
        pair = graph.pair(predecessor, successor)
        if pair is None:
            raise WTPGError(
                f"implied resolution T{predecessor}->T{successor} has no "
                "conflicting-edge — declarations and graph are out of sync")
        if pair.resolved and pair.resolved_to != successor:
            return INFINITE_CONTENTION  # would flip a fixed order: deadlock
        graph.resolve(predecessor, successor)

    if graph.has_precedence_cycle():
        return INFINITE_CONTENTION

    before = graph.ancestors(tid)
    after = graph.descendants(tid)
    if before & after:
        return INFINITE_CONTENTION  # cycle through T

    # Step 2: resolve conflicting-edges crossing before(T) -> after(T).
    for edge in graph.unresolved_pairs():
        if edge.a in before and edge.b in after:
            graph.resolve(edge.a, edge.b)
        elif edge.b in before and edge.a in after:
            graph.resolve(edge.b, edge.a)

    if graph.has_precedence_cycle():
        # Transitively forced resolutions closed a cycle: deadlock.
        return INFINITE_CONTENTION

    # Step 3: remaining conflicting-edges are deleted — the critical-path
    # routine ignores unresolved pairs, which is exactly that deletion.
    return graph.critical_path_length()
