"""The local contention estimator ``E(q)`` (Section 3.3).

``E(q)`` estimates the degree of data/resource contention in the present
schedule *if the lock request q were granted now*:

1. Build the WTPG where q has been granted — i.e. apply the precedence
   resolutions granting q implies.  If that contradicts an existing
   resolution or creates a precedence cycle, q causes a deadlock and
   ``E(q) = infinity``.
2. Identify ``before(T)`` / ``after(T)`` (ancestors / descendants of q's
   transaction) and resolve every conflicting-edge crossing from a
   ``before`` node to an ``after`` node in that direction (those
   resolutions are forced by transitivity).
3. Delete the remaining conflicting-edges and return the critical-path
   length from T0 to Tf.

The K-WTPG scheduler grants q only when ``E(q)`` is smallest among the
conflicting declarations ``C(q)``.

Two evaluation modes produce identical values (proved value-identical on
randomized graphs by ``tests/core/test_estimator_equivalence.py``):

* **overlay** (default) — copy-free.  The hypothetical resolutions are an
  in-memory delta over the *live* graph; cycle checks are per-new-edge
  reachability probes (like :meth:`WTPG.creates_cycle_from`) instead of
  full topological sorts, and the critical path is one memoized DFS over
  the combined precedence relation.  O(V + E) per candidate with tiny
  constants, no allocation of graph objects.
* **reference** — the paper-literal implementation on a deep copy of the
  graph, kept for differential testing (``reference=True``).

:class:`ContentionBatch` shares the overlay base across the many
candidates one scheduling decision evaluates (the request plus every
rival declaration): the base-graph acyclicity verdict is established once
and the live graph's memoized closures are reused across candidates.

This module is the sanctioned *friend* of :class:`~repro.core.wtpg.WTPG`:
the overlay reads (never writes) a fixed set of private structures —
``_cp_dist``, ``_succ``, ``_pred``, ``_source``, ``_sink``, ``_pairs``
and the ``_pair`` key helper.  That set is enforced by the RL003
encapsulation lint rule (``repro.lint``); extending it requires updating
the allowlist there and the rationale in ``docs/lint.md``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.wtpg import WTPG, Pair, _pair
from repro.errors import WTPGError

INFINITE_CONTENTION = float("inf")

Resolution = Tuple[int, int]
_Adj = Dict[int, Set[int]]


def estimate_contention(wtpg: WTPG, tid: int,
                        implied_resolutions: Sequence[Resolution],
                        reference: bool = False) -> float:
    """``E(q)`` for a request by ``tid`` implying the given resolutions.

    ``implied_resolutions`` are the ``(predecessor, successor)`` pairs that
    granting q fixes (successor is normally another transaction whose
    conflicting declaration must now wait for ``tid`` to commit).  The
    input graph is never modified.

    ``reference=True`` selects the legacy copy-based evaluation (slow;
    for differential testing); the default overlay mode is copy-free.

    Returns :data:`INFINITE_CONTENTION` when q would cause a deadlock.
    """
    if reference:
        return _estimate_reference(wtpg, tid, implied_resolutions)
    return ContentionBatch(wtpg).estimate(tid, implied_resolutions)


class ContentionBatch:
    """Copy-free ``E(q)`` evaluation of many candidates over one live graph.

    Construct once per scheduling decision; :meth:`estimate` evaluates one
    candidate's hypothetical grant as a lightweight delta (overlay) view —
    the live WTPG is read, never written.
    """

    def __init__(self, wtpg: WTPG) -> None:
        self.wtpg = wtpg
        self._prime()

    def _prime(self) -> None:
        """Establish the shared base facts: acyclicity verdict, the base
        critical-path value and its per-node dist table (O(1) amortised on
        the live graph thanks to its incremental caches)."""
        wtpg = self.wtpg
        self._base_cyclic = wtpg.has_precedence_cycle()
        if self._base_cyclic:
            self._base_cp = INFINITE_CONTENTION
            self._base_dist: Dict[int, float] = {}
        else:
            self._base_cp = wtpg.critical_path_length()
            self._base_dist = wtpg._cp_dist or {}
        self._generation = wtpg.generation

    def estimate(self, tid: int,
                 implied_resolutions: Sequence[Resolution]) -> float:
        """``E(q)`` for one candidate; see :func:`estimate_contention`."""
        wtpg = self.wtpg
        if tid not in wtpg:
            raise WTPGError(f"T{tid} is not in the WTPG")
        if wtpg.generation != self._generation:
            self._prime()  # the live graph changed under the batch

        # Step 1: overlay the implied resolutions.  A pair resolved the
        # other way (in the base or earlier in this very overlay) is a
        # predicted deadlock.
        extra_succ: _Adj = {}
        extra_pred: _Adj = {}
        overlaid: Dict[Pair, int] = {}
        new_edges: List[Resolution] = []
        for predecessor, successor in implied_resolutions:
            pair = wtpg.pair(predecessor, successor)
            if pair is None:
                raise WTPGError(
                    f"implied resolution T{predecessor}->T{successor} has no "
                    "conflicting-edge — declarations and graph are out of sync")
            if pair.resolved:
                if pair.resolved_to != successor:
                    return INFINITE_CONTENTION  # would flip a fixed order
                continue
            key = _pair(predecessor, successor)
            prior = overlaid.get(key)
            if prior is not None:
                if prior != successor:
                    return INFINITE_CONTENTION  # contradictory implications
                continue
            overlaid[key] = successor
            extra_succ.setdefault(predecessor, set()).add(successor)
            extra_pred.setdefault(successor, set()).add(predecessor)
            new_edges.append((predecessor, successor))

        if self._base_cyclic:
            return INFINITE_CONTENTION
        # The base is acyclic, so any cycle must pass through a new edge:
        # probe whether each edge's successor already reaches its
        # predecessor in the combined relation.
        base_succ = wtpg._succ
        base_pred = wtpg._pred
        for predecessor, successor in new_edges:
            if _reaches(base_succ, extra_succ, successor, predecessor):
                return INFINITE_CONTENTION

        # Step 2: resolve conflicting-edges crossing before(T) -> after(T).
        before = _combined_closure(base_pred, extra_pred, tid)
        after = _combined_closure(base_succ, extra_succ, tid)
        if before & after:
            return INFINITE_CONTENTION  # cycle through T
        crossing: List[Resolution] = []
        for edge in wtpg.unresolved_pairs():
            key = _pair(edge.a, edge.b)
            if key in overlaid:
                continue
            if edge.a in before and edge.b in after:
                a, b = edge.a, edge.b
            elif edge.b in before and edge.a in after:
                a, b = edge.b, edge.a
            else:
                continue
            overlaid[key] = b
            extra_succ.setdefault(a, set()).add(b)
            extra_pred.setdefault(b, set()).add(a)
            crossing.append((a, b))
        for a, b in crossing:
            if _reaches(base_succ, extra_succ, b, a):
                # Transitively forced resolutions closed a cycle: deadlock.
                return INFINITE_CONTENTION

        # Step 3: remaining conflicting-edges are deleted — the longest
        # T0 -> Tf path over the combined (base + overlay) precedence
        # relation.  Overlay edges only *add* precedence, and edge weights
        # are non-negative, so dist can change (grow) only at nodes
        # downstream of an overlay edge's head; everywhere else the live
        # graph's cached dist table is already the answer.  Recompute the
        # affected suffix and fold it into the cached base value.
        if not extra_succ:
            return self._base_cp
        affected: Set[int] = set()
        stack = [succ for succs in extra_succ.values() for succ in succs]
        affected.update(stack)
        while stack:
            node = stack.pop()
            for nxt in base_succ[node]:
                if nxt not in affected:
                    affected.add(nxt)
                    stack.append(nxt)
            for nxt in extra_succ.get(node, ()):
                if nxt not in affected:
                    affected.add(nxt)
                    stack.append(nxt)
        source = wtpg._source
        pairs = wtpg._pairs
        base_dist = self._base_dist
        dist: Dict[int, float] = {}
        empty: Set[int] = set()
        for start in affected:
            if start in dist:
                continue
            work: List[Tuple[int, bool]] = [(start, False)]
            while work:
                node, expanded = work.pop()
                if node in dist:
                    continue
                if node not in affected:
                    dist[node] = base_dist[node]
                    continue
                preds = base_pred[node] | extra_pred.get(node, empty)
                if not expanded:
                    work.append((node, True))
                    for pred in preds:
                        if pred not in dist:
                            work.append((pred, False))
                else:
                    best = source[node]
                    for pred in preds:
                        cand = (dist[pred]
                                + pairs[_pair(node, pred)].weight_to(node))
                        if cand > best:
                            best = cand
                    dist[node] = best
        sink = wtpg._sink
        peak = max(dist[node] + sink[node] for node in affected)
        return peak if peak > self._base_cp else self._base_cp


def _reaches(base: _Adj, extra: _Adj, start: int, goal: int) -> bool:
    """Is ``goal`` reachable from ``start`` over base plus overlay edges?"""
    seen: Set[int] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        nxt = base.get(node)
        if nxt:
            stack.extend(nxt)
        nxt = extra.get(node)
        if nxt:
            stack.extend(nxt)
    return False


def _combined_closure(base: _Adj, extra: _Adj, start: int) -> Set[int]:
    """Transitive closure of ``start`` over base plus overlay edges."""
    seen: Set[int] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        for nxt in base.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
        for nxt in extra.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    seen.discard(start)
    return seen


def _estimate_reference(wtpg: WTPG, tid: int,
                        implied_resolutions: Sequence[Resolution]) -> float:
    """The legacy copy-based evaluation (kept for differential testing)."""
    if tid not in wtpg:
        raise WTPGError(f"T{tid} is not in the WTPG")

    graph = wtpg.copy()
    for predecessor, successor in implied_resolutions:
        pair = graph.pair(predecessor, successor)
        if pair is None:
            raise WTPGError(
                f"implied resolution T{predecessor}->T{successor} has no "
                "conflicting-edge — declarations and graph are out of sync")
        if pair.resolved and pair.resolved_to != successor:
            return INFINITE_CONTENTION  # would flip a fixed order: deadlock
        graph.resolve(predecessor, successor)

    if graph.has_precedence_cycle():
        return INFINITE_CONTENTION

    before = graph.ancestors(tid)
    after = graph.descendants(tid)
    if before & after:
        return INFINITE_CONTENTION  # cycle through T

    # Step 2: resolve conflicting-edges crossing before(T) -> after(T).
    for edge in graph.unresolved_pairs():
        if edge.a in before and edge.b in after:
            graph.resolve(edge.a, edge.b)
        elif edge.b in before and edge.a in after:
            graph.resolve(edge.b, edge.a)

    if graph.has_precedence_cycle():
        # Transitively forced resolutions closed a cycle: deadlock.
        return INFINITE_CONTENTION

    # Step 3: remaining conflicting-edges are deleted — the critical-path
    # routine ignores unresolved pairs, which is exactly that deletion.
    return graph.critical_path_length()
