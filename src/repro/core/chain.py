"""Chain-form WTPGs (Definition 2, Section 3.2).

A WTPG is *chain-form* when its transactions can be labelled ``1..N`` such
that each node conflicts only with its label neighbours.  Equivalently: the
undirected *conflict graph* (one vertex per transaction, one edge per pair
edge — resolved or not) is a disjoint union of simple paths.  Components
can then be concatenated in any order to produce the labelling, and the
critical-path optimisation decomposes per component (the overall critical
path is the max over components, so minimising each minimises the whole).

The CHAIN scheduler (CC1) aborts any arriving transaction that would break
this property; the test here is the linear-time degree/acyclicity check the
paper implements with a depth-first traverse.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core.wtpg import WTPG
from repro.errors import NotChainFormError


def conflict_adjacency(wtpg: WTPG) -> Dict[int, Set[int]]:
    """Undirected conflict adjacency of a WTPG (pair edges, any state)."""
    return {tid: wtpg.conflict_neighbors(tid) for tid in wtpg.transactions}


def chain_components(wtpg: WTPG) -> List[List[int]]:
    """Decompose a chain-form WTPG into ordered path components.

    Each component is returned as the node sequence along its path,
    starting from the endpoint with the smallest tid (singletons are
    one-element lists).  Raises :class:`NotChainFormError` if any node has
    conflict degree > 2 or the conflict graph contains a cycle.
    """
    adjacency = conflict_adjacency(wtpg)
    for tid, nbrs in adjacency.items():
        if len(nbrs) > 2:
            raise NotChainFormError(
                f"T{tid} conflicts with {len(nbrs)} transactions; "
                "chain-form allows at most 2")

    components: List[List[int]] = []
    visited: Set[int] = set()

    # Walk each path from its endpoints (degree <= 1) first.
    endpoints = sorted(t for t, nbrs in adjacency.items() if len(nbrs) <= 1)
    for start in endpoints:
        if start in visited:
            continue
        component = [start]
        visited.add(start)
        previous, current = None, start
        while True:
            next_nodes = [n for n in adjacency[current] if n != previous]
            if not next_nodes:
                break
            if len(next_nodes) > 1:  # defensive; degree check above covers it
                raise NotChainFormError(f"T{current} branches inside a chain")
            previous, current = current, next_nodes[0]
            if current in visited:
                raise NotChainFormError("conflict graph contains a cycle")
            component.append(current)
            visited.add(current)
        components.append(component)

    # Any node still unvisited lies on a cycle (every tree path was walked).
    leftovers = set(adjacency) - visited
    if leftovers:
        raise NotChainFormError(
            f"conflict graph contains a cycle through {sorted(leftovers)}")
    return components


def is_chain_form(wtpg: WTPG) -> bool:
    """True when the WTPG satisfies Definition 2."""
    try:
        chain_components(wtpg)
    except NotChainFormError:
        return False
    return True


def would_remain_chain_form(wtpg: WTPG, new_tid: int,
                            new_neighbors: Iterable[int]) -> bool:
    """Chain-form test for admitting ``new_tid`` conflicting with the given set.

    Pure check — the WTPG is not modified.  ``new_neighbors`` are the
    existing transactions the newcomer's declarations conflict with.
    """
    neighbors = set(new_neighbors)
    if len(neighbors) > 2:
        return False
    adjacency = conflict_adjacency(wtpg)
    for tid in neighbors:
        if len(adjacency.get(tid, ())) >= 2:
            return False  # the neighbour would reach conflict degree 3
    if len(neighbors) == 2:
        # Joining two chain ends must not close a cycle: the two
        # neighbours must belong to different components.
        first, second = sorted(neighbors)
        if _same_component(adjacency, first, second):
            return False
    return True


def _same_component(adjacency: Dict[int, Set[int]], a: int, b: int) -> bool:
    seen = {a}
    stack = [a]
    while stack:
        node = stack.pop()
        if node == b:
            return True
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return b in seen
