"""Execution-history recording and conflict-serializability validation.

The simulator records, for every committed transaction, the interval during
which each partition lock was held (grant time to commit time) and its
mode.  Because all schedulers except NODC use strict partition-level
locking, a correct run must satisfy:

1. *Lock exclusion* — no two conflicting holds on the same partition
   overlap in time.
2. *Acyclic precedence* — ordering committed transactions by the time
   order of their conflicting accesses yields an acyclic graph (conflict
   serializability).

NODC intentionally violates both; the integration tests assert that the
validator catches it (which also proves the validator has teeth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.transaction import LockMode
from repro.errors import SerializationViolationError


@dataclass(frozen=True)
class HoldRecord:
    """One partition lock held by one transaction over a time interval."""

    tid: int
    partition: int
    mode: LockMode
    granted_at: float
    released_at: float

    def overlaps(self, other: "HoldRecord") -> bool:
        """Open-interval overlap: back-to-back release/grant is legal."""
        return (self.granted_at < other.released_at
                and other.granted_at < self.released_at)


@dataclass
class History:
    """All lock holds of committed transactions in one simulation run."""

    holds: List[HoldRecord] = field(default_factory=list)

    def record(self, tid: int, partition: int, mode: LockMode,
               granted_at: float, released_at: float) -> None:
        if released_at < granted_at:
            raise SerializationViolationError(
                f"T{tid} released P{partition} before acquiring it")
        self.holds.append(HoldRecord(tid, partition, mode,
                                     granted_at, released_at))

    @property
    def transactions(self) -> Set[int]:
        return {h.tid for h in self.holds}

    def conflicting_hold_pairs(self) -> List[Tuple[HoldRecord, HoldRecord]]:
        """Every pair of conflicting holds (same partition, modes clash)."""
        by_partition: Dict[int, List[HoldRecord]] = {}
        for hold in self.holds:
            by_partition.setdefault(hold.partition, []).append(hold)
        pairs: List[Tuple[HoldRecord, HoldRecord]] = []
        for records in by_partition.values():
            for i, first in enumerate(records):
                for second in records[i + 1:]:
                    if (first.tid != second.tid
                            and first.mode.conflicts_with(second.mode)):
                        pairs.append((first, second))
        return pairs

    def check_lock_exclusion(self) -> None:
        """Raise if two conflicting holds ever overlapped in time."""
        for first, second in self.conflicting_hold_pairs():
            if first.overlaps(second):
                raise SerializationViolationError(
                    f"conflicting holds overlap on P{first.partition}: "
                    f"T{first.tid} [{first.granted_at}, {first.released_at}) "
                    f"vs T{second.tid} [{second.granted_at}, "
                    f"{second.released_at})")

    def precedence_edges(self) -> Set[Tuple[int, int]]:
        """Directed conflict-order edges between committed transactions."""
        edges: Set[Tuple[int, int]] = set()
        for first, second in self.conflicting_hold_pairs():
            if first.overlaps(second):
                raise SerializationViolationError(
                    f"conflicting holds overlap on P{first.partition}")
            if first.released_at <= second.granted_at:
                edges.add((first.tid, second.tid))
            else:
                edges.add((second.tid, first.tid))
        return edges

    def check_serializable(self) -> List[int]:
        """Verify conflict serializability; returns a serialization order.

        Raises :class:`SerializationViolationError` if the conflict
        precedence graph has a cycle (or locks overlapped).
        """
        edges = self.precedence_edges()
        nodes = self.transactions
        successors: Dict[int, Set[int]] = {tid: set() for tid in nodes}
        indegree: Dict[int, int] = {tid: 0 for tid in nodes}
        for a, b in edges:
            if b not in successors[a]:
                successors[a].add(b)
                indegree[b] += 1

        import heapq
        heap = [tid for tid, deg in indegree.items() if deg == 0]
        heapq.heapify(heap)
        order: List[int] = []
        while heap:
            tid = heapq.heappop(heap)
            order.append(tid)
            for succ in successors[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(heap, succ)
        if len(order) != len(nodes):
            stuck = sorted(set(nodes) - set(order))
            raise SerializationViolationError(
                f"conflict precedence cycle among transactions {stuck}")
        return order
