"""Optimal resolution of a chain-form WTPG (Section 3.2 + appendix).

Problem: given a chain of transactions ``n[0] .. n[N-1]`` with source
weights ``r[k] = w(T0 -> n[k])`` and, between some consecutive pairs, a
conflicting edge carrying weights ``down = w(n[k] -> n[k+1])`` and
``up = w(n[k+1] -> n[k])``, choose an orientation for every *free* edge
(some may already be resolved, i.e. fixed) such that the critical path of
the resolved graph — the longest ``T0 -> Tf`` path — is minimal.

The paper gives an O(N^2) right-to-left dynamic program (``Lcomp`` /
``Rcomp`` in the appendix, partially corrupted in the scanned text).  We
implement an equivalent exact optimiser as a left-to-right DP over Pareto
frontiers, which has the same O(N^2) worst case, plus an exhaustive
reference (`brute_force_chain`) used by the property tests to prove
optimality on small instances.

Key structural fact making both DPs work: in an oriented chain, every
``T0 -> Tf`` path enters at one node, follows a maximal run of
consistently-directed edges, and exits to ``Tf`` (sink weights are zero in
the paper's model).  Because all weights are non-negative, the best path
inside a *down*-run ending at node ``k`` is summarised by one scalar
(``D`` — best ``r[s] + sum of down-weights`` so far), and inside an
*up*-run by the accumulated up-weight sum (``B`` — the best entry point of
a leftward path from a newly appended node is always the run's start).
The DP state after edge ``k`` is just (direction, scalar); Pareto pruning
on (scalar, best-achievable-max) keeps frontiers small.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WTPGError

DOWN = "down"
UP = "up"

Orientation = Optional[str]  # DOWN, UP, or None for an absent edge


@dataclass(frozen=True)
class ChainPair:
    """The conflicting edge between consecutive chain nodes k and k+1.

    ``down`` is ``w(n[k] -> n[k+1])``, ``up`` is ``w(n[k+1] -> n[k])``.
    ``fixed`` pins the orientation of an already-resolved pair.
    """

    down: float
    up: float
    fixed: Orientation = None

    def __post_init__(self) -> None:
        if self.down < 0 or self.up < 0:
            raise WTPGError("chain pair weights must be non-negative")
        if self.fixed not in (None, DOWN, UP):
            raise WTPGError(f"invalid fixed orientation: {self.fixed!r}")

    @property
    def choices(self) -> Tuple[str, ...]:
        return (self.fixed,) if self.fixed else (DOWN, UP)


def _validate(source_weights: Sequence[float],
              pairs: Sequence[Optional[ChainPair]]) -> None:
    if len(pairs) != max(0, len(source_weights) - 1):
        raise WTPGError(
            f"a chain of {len(source_weights)} nodes needs "
            f"{max(0, len(source_weights) - 1)} pair slots, got {len(pairs)}")
    if any(w < 0 for w in source_weights):
        raise WTPGError("source weights must be non-negative")


def chain_critical_path(source_weights: Sequence[float],
                        pairs: Sequence[Optional[ChainPair]],
                        orientations: Sequence[Orientation]) -> float:
    """Critical path of the chain resolved by ``orientations``.

    Reference evaluator: builds the explicit DAG and runs a longest-path
    pass, independent of the run-decomposition reasoning the optimiser
    uses.  ``orientations[k]`` orients ``pairs[k]``; it must be None
    exactly where the pair is absent, and must match any fixed direction.
    """
    _validate(source_weights, pairs)
    if len(orientations) != len(pairs):
        raise WTPGError("orientations must align with pairs")
    n = len(source_weights)
    if n == 0:
        return 0.0

    incoming: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    outdeg_order: List[int] = []
    for k, (pair, orient) in enumerate(zip(pairs, orientations)):
        if pair is None:
            if orient is not None:
                raise WTPGError(f"slot {k} has no pair but an orientation")
            continue
        if orient not in (DOWN, UP):
            raise WTPGError(f"slot {k} needs an orientation")
        if pair.fixed and orient != pair.fixed:
            raise WTPGError(f"slot {k} is fixed {pair.fixed}, got {orient}")
        if orient == DOWN:
            incoming[k + 1].append((k, pair.down))
        else:
            incoming[k].append((k + 1, pair.up))

    # The oriented chain is always acyclic; a left-to-right then
    # right-to-left relaxation pass settles all distances because every
    # path is a monotone run.
    dist = [float(w) for w in source_weights]
    for k in range(n):
        for pred, weight in incoming[k]:
            if pred < k:
                dist[k] = max(dist[k], dist[pred] + weight)
    for k in range(n - 1, -1, -1):
        for pred, weight in incoming[k]:
            if pred > k:
                dist[k] = max(dist[k], dist[pred] + weight)
    return max(dist)


def brute_force_chain(source_weights: Sequence[float],
                      pairs: Sequence[Optional[ChainPair]],
                      ) -> Tuple[float, List[Orientation]]:
    """Exhaustive optimum — exponential; for tests and tiny chains only."""
    _validate(source_weights, pairs)
    slots: List[Tuple[Orientation, ...]] = [
        p.choices if p is not None else (None,) for p in pairs]
    best_len, best_orients = float("inf"), [p.fixed if p else None for p in pairs]
    for combo in product(*slots):
        length = chain_critical_path(source_weights, pairs, list(combo))
        if length < best_len:
            best_len, best_orients = length, list(combo)
    if not pairs:
        best_len = max([float(w) for w in source_weights], default=0.0)
    return best_len, best_orients


class _State:
    """One Pareto point of the DP frontier after a given edge slot."""

    __slots__ = ("direction", "scalar", "peak", "parent", "choice")

    def __init__(self, direction: str, scalar: float, peak: float,
                 parent: Optional["_State"], choice: Orientation) -> None:
        self.direction = direction  # "none", DOWN or UP
        self.scalar = scalar        # D for down-runs, B for up-runs, 0 else
        self.peak = peak            # best achievable critical path so far
        self.parent = parent
        self.choice = choice        # orientation chosen at this slot


def _prune(states: List[_State]) -> List[_State]:
    """Keep the Pareto frontier: minimal peaks over increasing scalars."""
    by_dir: Dict[str, List[_State]] = {}
    for state in states:
        by_dir.setdefault(state.direction, []).append(state)
    kept: List[_State] = []
    for group in by_dir.values():
        group.sort(key=lambda s: (s.scalar, s.peak))
        best_peak = float("inf")
        for state in group:
            if state.peak < best_peak:
                kept.append(state)
                best_peak = state.peak
    return kept


def optimise_chain(source_weights: Sequence[float],
                   pairs: Sequence[Optional[ChainPair]],
                   ) -> Tuple[float, List[Orientation]]:
    """Orientations of the free pairs minimising the critical path.

    Returns ``(optimal_length, orientations)`` where ``orientations[k]``
    is ``"down"``/``"up"`` for present pairs (fixed ones keep their
    direction) and None for absent slots.  This is the full SR-order ``W``
    of the CHAIN scheduler, restricted to one chain component.
    """
    _validate(source_weights, pairs)
    n = len(source_weights)
    if n == 0:
        return 0.0, []

    frontier = [_State("none", 0.0, float(source_weights[0]), None, None)]
    for k, pair in enumerate(pairs):
        r_here = float(source_weights[k])
        r_next = float(source_weights[k + 1])
        nxt: List[_State] = []
        for state in frontier:
            if pair is None:
                nxt.append(_State("none", 0.0, max(state.peak, r_next),
                                  state, None))
                continue
            for choice in pair.choices:
                if choice == DOWN:
                    run_best = state.scalar if state.direction == DOWN else r_here
                    new_d = max(run_best + pair.down, r_next)
                    nxt.append(_State(DOWN, new_d, max(state.peak, new_d),
                                      state, DOWN))
                else:  # UP
                    run_sum = (state.scalar + pair.up
                               if state.direction == UP else pair.up)
                    contribution = r_next + run_sum
                    nxt.append(_State(UP, run_sum,
                                      max(state.peak, contribution),
                                      state, UP))
        frontier = _prune(nxt)

    best = min(frontier, key=lambda s: s.peak)
    orientations: List[Orientation] = []
    state: Optional[_State] = best
    while state is not None and state.parent is not None:
        orientations.append(state.choice)
        state = state.parent
    orientations.reverse()
    return best.peak, orientations
