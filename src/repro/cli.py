"""Command-line interface: run simulations and regenerate paper figures.

Usage examples::

    python -m repro table1
    python -m repro run --scheduler K2 --rate 0.5 --clocks 400000
    python -m repro exp1 --clocks 400000
    python -m repro exp2 --clocks 400000 --num-hots 4,8
    python -m repro exp4 --sigmas 0,0.5,1 --clocks 400000

``--clocks 2000000`` (the default) reproduces the paper's full-length
runs; smaller values trade fidelity for speed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import format_table
from repro.config import SimulationParameters
from repro.experiments import (ExperimentConfig, run_experiment1,
                               run_experiment2, run_experiment3,
                               run_experiment4)
from repro.experiments.experiment4 import DEFAULT_SCHEDULERS as EXP4_SCHEDULERS
from repro.experiments.report import (report_experiment1, report_experiment2,
                                      report_experiment3, report_experiment4)
from repro.machine import run_simulation
from repro.workloads import pattern1, pattern1_catalog


def _floats(text: str) -> List[float]:
    return [float(token) for token in text.split(",") if token.strip()]


def _ints(text: str) -> List[int]:
    return [int(token) for token in text.split(",") if token.strip()]


def _names(text: str) -> List[str]:
    return [token.strip().upper() for token in text.split(",") if token.strip()]


def _experiment_config(args: argparse.Namespace,
                       default_schedulers: Sequence[str]) -> ExperimentConfig:
    return ExperimentConfig(
        sim_clocks=args.clocks,
        seed=args.seed,
        schedulers=(_names(args.schedulers) if args.schedulers
                    else tuple(default_schedulers)),
        arrival_rates=(tuple(_floats(args.rates)) if args.rates
                       else ExperimentConfig().arrival_rates),
        progress=(None if args.quiet
                  else lambda message: print(f"  [{message}]",
                                             file=sys.stderr)),
        max_workers=args.jobs,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clocks", type=float, default=2_000_000,
                        help="simulation horizon in clocks (1 clock = 1 ms)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rates", type=str, default=None,
                        help="comma-separated arrival rates (TPS)")
    parser.add_argument("--schedulers", type=str, default=None,
                        help="comma-separated scheduler names")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress lines")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the point grid "
                             "(results identical for every value)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WTPG concurrency control for BATs (ICDE 1990) — "
                    "simulations and paper experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="print the Table 1 parameters")

    run = sub.add_parser("run", help="one simulation run with Pattern1")
    run.add_argument("--scheduler", default="K2")
    run.add_argument("--rate", type=float, default=0.5)
    run.add_argument("--clocks", type=float, default=400_000)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--control-nodes", type=int, default=1,
                     help="shard the control plane over N control nodes "
                          "(partition p -> CN p mod N; cross-shard BATs "
                          "commit by 2PC, see docs/control_plane.md)")
    run.add_argument("--faults", type=str, default=None, metavar="PLAN.json",
                     help="fault-injection plan (JSON, see docs/faults.md)")

    verify = sub.add_parser(
        "verify", help="check every paper claim on scaled runs (PASS/FAIL)")
    verify.add_argument("--clocks", type=float, default=200_000)
    verify.add_argument("--seed", type=int, default=1)
    verify.add_argument("--quiet", action="store_true")

    mixed = sub.add_parser(
        "mixed", help="extension: BATs mixed with short transactions")
    mixed.add_argument("--clocks", type=float, default=400_000)
    mixed.add_argument("--seed", type=int, default=1)
    mixed.add_argument("--rate", type=float, default=2.0)

    placement = sub.add_parser(
        "placement", help="extension: range partitioning vs declustering")
    placement.add_argument("--clocks", type=float, default=400_000)
    placement.add_argument("--seed", type=int, default=1)
    placement.add_argument("--rate", type=float, default=0.9)

    for name, help_text in (
            ("exp1", "Figures 6-7: arrival rate sweep, Pattern1"),
            ("exp2", "Figure 8: hot-set sizes, Pattern2"),
            ("exp3", "Figure 9: arrival rate sweep, Pattern3"),
            ("exp4", "Figure 10: declared-cost error sweep")):
        exp = sub.add_parser(name, help=help_text)
        _add_common(exp)
        if name == "exp2":
            exp.add_argument("--num-hots", type=str, default="4,8,16,32")
        if name == "exp4":
            exp.add_argument("--sigmas", type=str, default="0,0.25,0.5,0.75,1")

    sweep = sub.add_parser(
        "sweep", help="checkpointed parallel sweeps (run/resume/status)")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser(
        "run", help="run a replicated grid, checkpointing as it goes")
    sweep_run.add_argument("--workload", default="pattern1",
                           choices=("pattern1", "pattern2", "pattern3"))
    sweep_run.add_argument("--schedulers", type=str, default="CHAIN,K2")
    sweep_run.add_argument("--rates", type=str, default="0.3,0.6,0.9")
    sweep_run.add_argument("--clocks", type=float, default=2_000_000)
    sweep_run.add_argument("--num-hots", type=int, default=8)
    sweep_run.add_argument("--sigma", type=float, default=0.0)
    sweep_run.add_argument("--faults", type=str, default=None,
                           metavar="PLAN.json",
                           help="fault plan applied to every point")
    sweep_run.add_argument("--replications", type=int, default=1)
    sweep_run.add_argument("--root-seed", type=int, default=1,
                           help="root of the per-task derived seeds")
    sweep_run.add_argument("--jobs", type=int, default=1)
    sweep_run.add_argument("--checkpoint", type=str, default=None,
                           metavar="GRID.jsonl")
    sweep_run.add_argument("--task-budget", type=int, default=None,
                           help="stop after N tasks (checkpoint stays "
                                "resumable; exit code 3)")
    sweep_run.add_argument("--quiet", action="store_true")

    sweep_resume = sweep_sub.add_parser(
        "resume", help="finish an interrupted checkpointed sweep")
    sweep_resume.add_argument("--checkpoint", type=str, required=True,
                              metavar="GRID.jsonl")
    sweep_resume.add_argument("--jobs", type=int, default=1)
    sweep_resume.add_argument("--task-budget", type=int, default=None)
    sweep_resume.add_argument("--quiet", action="store_true")

    sweep_status = sweep_sub.add_parser(
        "status", help="progress and freshness of a checkpoint")
    sweep_status.add_argument("--checkpoint", type=str, required=True,
                              metavar="GRID.jsonl")
    return parser


def _cmd_table1() -> int:
    table = SimulationParameters().table1()
    print("Table 1: simulation parameters")
    print(format_table(["parameter", "value"], list(table.items())))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    params = SimulationParameters(scheduler=args.scheduler,
                                  arrival_rate_tps=args.rate,
                                  sim_clocks=args.clocks, seed=args.seed,
                                  num_partitions=16,
                                  num_control_nodes=args.control_nodes)
    fault_plan = None
    if args.faults is not None:
        from repro.faults import FaultPlan
        fault_plan = FaultPlan.from_file(args.faults)
    result = run_simulation(params, pattern1(), catalog=pattern1_catalog(),
                            fault_plan=fault_plan)
    m = result.metrics
    rows = [
        ("scheduler", m.scheduler),
        ("arrival rate", f"{m.arrival_rate_tps:g} TPS"),
        ("arrivals", m.arrivals),
        ("commits", m.commits),
        ("throughput", f"{m.throughput_tps:.3f} TPS"),
        ("mean response time", f"{m.mean_response_time / 1000:.1f} s"),
        ("DN utilization", f"{m.dn_utilization:.1%}"),
        ("CN utilization", f"{m.cn_utilization:.1%}"),
        ("lock retries", m.lock_retries),
    ]
    if args.control_nodes > 1:
        rows += [
            ("CN utilization (per shard)",
             " ".join(f"{u:.1%}" for u in m.cn_utilizations)),
            ("2PC commit rounds", m.twopc_rounds),
        ]
    if m.cn_crashes or m.cn_recoveries:
        rows += [
            ("CN crashes", m.cn_crashes),
            ("CN recoveries", m.cn_recoveries),
            ("log records replayed", m.recovery_records),
            ("recovery downtime", f"{m.recovery_clocks:.0f} clocks"),
        ]
    if fault_plan is not None:
        rows += [
            ("aborts (all causes)", m.aborts),
            ("  injected", m.fault_aborts),
            ("  node crash", m.crash_aborts),
            ("  cascade", m.cascade_aborts),
            ("restarts completed", m.restarts),
            ("node crashes", m.node_crashes),
            ("wasted objects", f"{m.wasted_objects:.1f}"),
            ("fault timeline events", len(m.fault_timeline)),
        ]
    print(format_table(["metric", "value"], rows))
    return 0


def _print_sweep_result(result: "object") -> None:
    from repro.experiments.parallel import SweepResult
    assert isinstance(result, SweepResult)
    rows = []
    for row in result.grid():
        rows.append((
            f"{row['workload']}/{row['scheduler']}",
            f"{row['arrival_rate_tps']:g}",
            f"{int(row['replications'])}",
            f"{row['throughput_tps']:.3f} ± {row['throughput_tps_ci']:.3f}",
            f"{row['mean_response_time'] / 1000:.1f} "
            f"± {row['mean_response_time_ci'] / 1000:.1f}",
        ))
    print(format_table(
        ["point", "λ (TPS)", "reps", "throughput (TPS)", "mean RT (s)"],
        rows))
    print(f"tasks: {result.executed} executed, {result.reused} resumed "
          f"from checkpoint"
          + (f" ({result.checkpoint})" if result.checkpoint else ""))


def _sweep_progress(quiet: bool):
    if quiet:
        return None
    return lambda message: print(f"  [{message}]", file=sys.stderr)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.errors import SweepInterrupted
    from repro.experiments.parallel import (SweepSpec, run_sweep,
                                            sweep_status)
    from repro.experiments.runner import sweep_specs

    if args.sweep_command == "status":
        status = sweep_status(args.checkpoint)
        print(format_table(["field", "value"],
                           [(key, str(value))
                            for key, value in status.items()]))
        return 0

    if args.sweep_command == "run":
        fault_json = None
        if args.faults is not None:
            from repro.faults import FaultPlan
            fault_json = FaultPlan.from_file(args.faults).to_json()
        points = tuple(sweep_specs(
            args.workload, _names(args.schedulers), _floats(args.rates),
            sim_clocks=args.clocks, num_hots=args.num_hots,
            error_sigma=args.sigma, fault_plan_json=fault_json))
        sweep = SweepSpec(points=points, root_seed=args.root_seed,
                          replications=args.replications)
    else:  # resume: the checkpoint header carries the sweep definition
        from repro.experiments.parallel import SweepSpec as _SweepSpec
        from repro.experiments.parallel import read_checkpoint
        header, _ = read_checkpoint(args.checkpoint)
        sweep = _SweepSpec.from_dict(header["sweep"])

    checkpoint = args.checkpoint
    try:
        result = run_sweep(sweep, max_workers=args.jobs,
                           checkpoint=checkpoint,
                           progress=_sweep_progress(args.quiet),
                           task_budget=args.task_budget)
    except SweepInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 3
    _print_sweep_result(result)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "verify":
        from repro.experiments.verify import (report_verification,
                                              verify_paper_claims)
        progress = (None if args.quiet else
                    lambda message: print(f"  [{message}]", file=sys.stderr))
        checks = verify_paper_claims(sim_clocks=args.clocks, seed=args.seed,
                                     progress=progress)
        print(report_verification(checks))
        return 0 if all(c.passed for c in checks) else 1
    if args.command == "mixed":
        from repro.experiments.mixed import (report_mixed,
                                             run_mixed_experiment)
        result = run_mixed_experiment(arrival_rate_tps=args.rate,
                                      sim_clocks=args.clocks,
                                      seed=args.seed)
        print(report_mixed(result))
        return 0
    if args.command == "placement":
        from repro.experiments.placement import (report_placement,
                                                 run_placement_experiment)
        result = run_placement_experiment(arrival_rate_tps=args.rate,
                                          sim_clocks=args.clocks,
                                          seed=args.seed)
        print(report_placement(result))
        return 0
    if args.command == "exp1":
        config = _experiment_config(args, ("ASL", "C2PL", "CHAIN", "K2",
                                           "NODC"))
        print(report_experiment1(run_experiment1(config)))
        return 0
    if args.command == "exp2":
        config = _experiment_config(args, ("ASL", "C2PL", "CHAIN", "K2"))
        result = run_experiment2(config,
                                 num_hots_values=_ints(args.num_hots))
        print(report_experiment2(result))
        return 0
    if args.command == "exp3":
        config = _experiment_config(args, ("ASL", "C2PL", "CHAIN", "K2"))
        print(report_experiment3(run_experiment3(config)))
        return 0
    if args.command == "exp4":
        config = _experiment_config(args, EXP4_SCHEDULERS)
        result = run_experiment4(config, sigmas=_floats(args.sigmas))
        print(report_experiment4(result))
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
