"""Coarse ASCII line charts for terminal output."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple


def ascii_chart(series: Dict[str, Sequence[Tuple[float, float]]],
                width: int = 60, height: int = 16,
                x_label: str = "", y_label: str = "",
                y_max: Optional[float] = None) -> str:
    """Plot named (x, y) series on a character grid.

    Each series is drawn with its own marker (first letter of its name,
    falling back through digits on collision).  Infinite/NaN points are
    skipped.  The result is a multi-line string.
    """
    points = {
        name: [(x, y) for x, y in values
               if not (math.isinf(y) or math.isnan(y))]
        for name, values in series.items()}
    all_points = [p for values in points.values() for p in values]
    if not all_points:
        return "(no finite data)"

    x_lo = min(p[0] for p in all_points)
    x_hi = max(p[0] for p in all_points)
    y_lo = 0.0
    y_hi = y_max if y_max is not None else max(p[1] for p in all_points)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    used_markers: Set[str] = set()
    legend: List[str] = []
    for name, values in points.items():
        marker = next((ch for ch in name.upper() + "0123456789*"
                       if ch not in used_markers and not ch.isspace()), "*")
        used_markers.add(marker)
        legend.append(f"{marker}={name}")
        for x, y in values:
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            y_clamped = min(y, y_hi)
            row = round((y_clamped - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    top = f"{y_hi:.3g}"
    bottom = f"{y_lo:.3g}"
    margin = max(len(top), len(bottom))
    for index, row in enumerate(grid):
        prefix = top if index == 0 else (
            bottom if index == height - 1 else "")
        lines.append(f"{prefix.rjust(margin)} |{''.join(row)}")
    lines.append(f"{' ' * margin} +{'-' * width}")
    axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(f"{' ' * margin}  {axis}")
    if x_label:
        lines.append(f"{' ' * margin}  {x_label.center(width)}")
    lines.append("  ".join(legend))
    return "\n".join(lines)
