"""Graphviz DOT export of a WTPG.

``wtpg_to_dot`` renders the paper's figures from live scheduler state:
solid arrows for precedence-edges, dashed double arrows for unresolved
conflicting-edges, node labels carrying ``w(T0 -> Ti)``.  Paste the
output into any DOT renderer.
"""

from __future__ import annotations

from repro.core.wtpg import WTPG


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def wtpg_to_dot(wtpg: WTPG, title: str = "WTPG",
                include_t0: bool = True) -> str:
    """The WTPG as a Graphviz digraph string."""
    lines = [f"digraph {_quote(title)} {{",
             "  rankdir=LR;",
             '  node [shape=circle, fontsize=11];']
    if include_t0 and len(wtpg):
        lines.append('  T0 [shape=doublecircle, label="T0"];')
    for tid in sorted(wtpg.transactions):
        weight = wtpg.source_weight(tid)
        lines.append(
            f'  T{tid} [label="T{tid}\\nw={weight:g}"];')
        if include_t0:
            lines.append(f'  T0 -> T{tid} [label="{weight:g}", '
                         'color=gray, fontcolor=gray];')
    for edge in wtpg.pairs():
        a, b = edge.a, edge.b
        if edge.resolved:
            pred = edge.predecessor()
            succ = edge.resolved_to
            lines.append(
                f'  T{pred} -> T{succ} '
                f'[label="{edge.weight_to(succ):g}", penwidth=1.5];')
        else:
            lines.append(
                f'  T{a} -> T{b} [label="{edge.weight_to(b):g}", '
                'style=dashed, dir=both, constraint=false];')
    lines.append("}")
    return "\n".join(lines)
