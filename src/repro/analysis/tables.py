"""Aligned text tables for experiment output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 ) -> str:
    """A simple aligned table with a header rule."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(["" if value is None else
                      (f"{value:.3f}" if isinstance(value, float) else
                       str(value))
                      for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines: List[str] = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series_table(x_label: str, xs: Sequence[object],
                        series: Dict[str, Sequence[Optional[float]]],
                        ) -> str:
    """One column of x values, one column per named series.

    This is the text rendering of a paper figure: x on rows, schedulers
    on columns.
    """
    headers = [x_label] + list(series)
    rows: List[List[object]] = []
    for index, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else None)
        rows.append(row)
    return format_table(headers, rows)
