"""Presentation helpers: text tables and ASCII line charts.

The paper's figures are line charts; on a terminal we render the same
series as aligned tables (exact numbers) and coarse ASCII charts (shape
at a glance).  Nothing here affects measurement.
"""

from repro.analysis.tables import format_series_table, format_table
from repro.analysis.plots import ascii_chart
from repro.analysis.dot import wtpg_to_dot

__all__ = ["ascii_chart", "format_series_table", "format_table",
           "wtpg_to_dot"]
