"""Deterministic fault injection for the simulated machine.

The subsystem has two halves:

* :mod:`repro.faults.plan` — the declarative injection-plan DSL
  (:class:`FaultPlan`): node crashes/recoveries at fixed times, forced
  BAT aborts at a given step, a stochastic abort rate, declared-cost
  distortion (the Experiment 4 error model plus a systematic factor),
  partition I/O slowdown windows, cascade-abort semantics and the
  retry/backoff policy used for restarts.  Plans round-trip through JSON
  (``repro-bat run --faults plan.json``).
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which executes
  a plan inside one simulation: it draws every stochastic decision from
  named :class:`~repro.engine.rng.RandomStreams` substreams, so a fault
  schedule replays bit-identically for a given master seed, and it
  schedules the timed faults as ordinary engine processes.

With no plan (or an empty plan) the machine consumes no extra
randomness and schedules no extra events, so fault-free runs remain
bit-identical to runs of the code before this subsystem existed.
"""

from repro.faults.plan import (ControlCrash, FaultPlan, NodeCrash,
                               PartitionSlowdown, RetryPolicy, StepAbort)
from repro.faults.injector import FaultInjector

__all__ = [
    "ControlCrash",
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "PartitionSlowdown",
    "RetryPolicy",
    "StepAbort",
]
