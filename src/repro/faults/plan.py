"""The fault-injection plan DSL.

A :class:`FaultPlan` is a frozen, declarative description of every fault
a run should suffer.  It carries no randomness of its own: stochastic
elements (the abort rate, declared-cost error) only fix *distributions*;
the draws happen inside :class:`~repro.faults.injector.FaultInjector`
on named :class:`~repro.engine.rng.RandomStreams` substreams, so the
realised fault schedule is a pure function of (plan, master seed).

Plans serialise to JSON (:meth:`FaultPlan.to_json`) and back
(:meth:`FaultPlan.from_json` / :meth:`FaultPlan.from_file`), which is
the format the CLI's ``--faults plan.json`` option reads.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional, Tuple

from repro.errors import FaultPlanError

RETRY_KINDS = ("fixed", "immediate", "exponential")


@dataclass(frozen=True)
class NodeCrash:
    """Data node ``node`` crashes at time ``at``.

    Every step resident on the node fails (its transaction aborts and
    restarts), and new dispatches to the node fail until ``recover_at``.
    ``recover_at = None`` means the node never comes back.
    """

    node: int
    at: float
    recover_at: Optional[float] = None

    def validate(self) -> None:
        if self.node < 0:
            raise FaultPlanError(f"crash node must be >= 0, got {self.node}")
        if self.at < 0:
            raise FaultPlanError(f"crash time must be >= 0, got {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise FaultPlanError(
                f"recovery at {self.recover_at} must follow the crash "
                f"at {self.at}")


@dataclass(frozen=True)
class ControlCrash:
    """Control node (shard) ``cn`` crashes at time ``at``.

    The shard's volatile scheduler state (lock table + WTPG slice) is
    lost; transactions *coordinated* by the shard abort through the
    restart path, while transactions merely holding locks there stall
    until recovery.  At ``recover_at`` the shard replays its dependency
    log into a fresh scheduler and resumes service; ``recover_at = None``
    means the shard never comes back (its partitions stay unavailable).
    """

    cn: int
    at: float
    recover_at: Optional[float] = None

    def validate(self) -> None:
        if self.cn < 0:
            raise FaultPlanError(f"crash cn must be >= 0, got {self.cn}")
        if self.at < 0:
            raise FaultPlanError(f"crash time must be >= 0, got {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise FaultPlanError(
                f"recovery at {self.recover_at} must follow the crash "
                f"at {self.at}")


@dataclass(frozen=True)
class StepAbort:
    """Abort transaction ``tid`` when it reaches step ``step``.

    Fires once, on execution attempt number ``attempt`` (1-based), just
    before the step's lock request; ``step`` equal to the transaction's
    step count aborts it between its last step and its commit.
    """

    tid: int
    step: int
    attempt: int = 1

    def validate(self) -> None:
        if self.step < 0:
            raise FaultPlanError(f"abort step must be >= 0, got {self.step}")
        if self.attempt < 1:
            raise FaultPlanError(
                f"abort attempt is 1-based, got {self.attempt}")


@dataclass(frozen=True)
class PartitionSlowdown:
    """I/O on ``partition``'s node is ``factor`` x slower on [at, until).

    The slowdown applies to the whole node holding the partition (I/O
    degradation is a device property, not a partition property); a
    declustered partition slows every node.  Overlapping windows
    compose multiplicatively.
    """

    partition: int
    factor: float
    at: float
    until: float

    def validate(self) -> None:
        if self.partition < 0:
            raise FaultPlanError(
                f"slowdown partition must be >= 0, got {self.partition}")
        if self.factor <= 0:
            raise FaultPlanError(
                f"slowdown factor must be positive, got {self.factor}")
        if self.at < 0 or self.until <= self.at:
            raise FaultPlanError(
                f"slowdown window [{self.at}, {self.until}) is empty or "
                "negative")


@dataclass(frozen=True)
class RetryPolicy:
    """How long an aborted transaction waits before re-admission.

    * ``fixed`` — always ``delay`` (``None`` means the machine's
      configured ``retry_delay``);
    * ``immediate`` — re-submit in the same instant;
    * ``exponential`` — ``delay * 2**(attempt-1)``, clamped at ``cap``
      (``cap = None`` means unbounded).
    """

    kind: str = "fixed"
    delay: Optional[float] = None
    cap: Optional[float] = None

    def validate(self) -> None:
        if self.kind not in RETRY_KINDS:
            raise FaultPlanError(
                f"retry kind must be one of {RETRY_KINDS}, got {self.kind!r}")
        if self.delay is not None and self.delay < 0:
            raise FaultPlanError(
                f"retry delay must be >= 0, got {self.delay}")
        if self.cap is not None and self.cap <= 0:
            raise FaultPlanError(f"retry cap must be positive, got {self.cap}")

    def delay_for(self, attempt: int, default_delay: float) -> float:
        """The wait before re-admission attempt number ``attempt`` + 1.

        ``attempt`` counts completed attempts (>= 1 after the first
        abort); ``default_delay`` is the machine's ``retry_delay``.
        """
        if self.kind == "immediate":
            return 0.0
        base = self.delay if self.delay is not None else default_delay
        if self.kind == "fixed":
            return base
        backoff = base * (2.0 ** max(0, attempt - 1))
        if self.cap is not None and backoff > self.cap:
            return self.cap
        return backoff


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong during one run.

    ``abort_rate`` is the per-admission probability that the admitted
    attempt is assassinated at a uniformly random point of its life;
    ``declared_cost_factor`` scales every declared ``costof`` (values
    below 1 model systematic under-declaration) and
    ``declared_cost_sigma`` adds the Experiment 4 relative normal error
    on top.  ``cascade`` extends every abort to the victim's direct
    precedence successors in the WTPG.  ``retry = None`` defers to the
    machine's configured retry policy.
    """

    crashes: Tuple[NodeCrash, ...] = ()
    control_crashes: Tuple[ControlCrash, ...] = ()
    step_aborts: Tuple[StepAbort, ...] = ()
    slowdowns: Tuple[PartitionSlowdown, ...] = ()
    abort_rate: float = 0.0
    declared_cost_sigma: float = 0.0
    declared_cost_factor: float = 1.0
    cascade: bool = False
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "control_crashes",
                           tuple(self.control_crashes))
        object.__setattr__(self, "step_aborts", tuple(self.step_aborts))
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        if not 0.0 <= self.abort_rate <= 1.0:
            raise FaultPlanError(
                f"abort_rate must lie in [0, 1], got {self.abort_rate}")
        if self.declared_cost_sigma < 0:
            raise FaultPlanError(
                "declared_cost_sigma must be >= 0, got "
                f"{self.declared_cost_sigma}")
        if self.declared_cost_factor <= 0:
            raise FaultPlanError(
                "declared_cost_factor must be positive, got "
                f"{self.declared_cost_factor}")
        for item in (*self.crashes, *self.control_crashes,
                     *self.step_aborts, *self.slowdowns):
            item.validate()
        if self.retry is not None:
            self.retry.validate()
        seen = set()
        for abort in self.step_aborts:
            key = (abort.tid, abort.attempt)
            if key in seen:
                raise FaultPlanError(
                    f"duplicate step abort for T{abort.tid} attempt "
                    f"{abort.attempt}")
            seen.add(key)

    def empty(self) -> bool:
        """True when the plan injects nothing and overrides nothing."""
        return (not self.crashes and not self.control_crashes
                and not self.step_aborts
                and not self.slowdowns and self.abort_rate == 0.0
                and self.declared_cost_sigma == 0.0
                and self.declared_cost_factor == 1.0
                and not self.cascade and self.retry is None)

    def distorts_declarations(self) -> bool:
        return (self.declared_cost_sigma > 0.0
                or self.declared_cost_factor != 1.0)

    # -- JSON round-trip ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        raw = asdict(self)
        raw["crashes"] = [asdict(c) for c in self.crashes]
        raw["control_crashes"] = [asdict(c) for c in self.control_crashes]
        raw["step_aborts"] = [asdict(a) for a in self.step_aborts]
        raw["slowdowns"] = [asdict(s) for s in self.slowdowns]
        raw["retry"] = None if self.retry is None else asdict(self.retry)
        return raw

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan fields: {sorted(unknown)}")
        data = dict(raw)
        try:
            data["crashes"] = tuple(
                NodeCrash(**c) for c in data.get("crashes", ()))
            data["control_crashes"] = tuple(
                ControlCrash(**c) for c in data.get("control_crashes", ()))
            data["step_aborts"] = tuple(
                StepAbort(**a) for a in data.get("step_aborts", ()))
            data["slowdowns"] = tuple(
                PartitionSlowdown(**s) for s in data.get("slowdowns", ()))
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault entry: {exc}") from exc
        retry = data.get("retry")
        if retry is not None:
            try:
                data["retry"] = RetryPolicy(**retry)
            except TypeError as exc:
                raise FaultPlanError(
                    f"malformed retry policy: {exc}") from exc
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())
