"""Executes a :class:`~repro.faults.plan.FaultPlan` inside one run.

The injector owns every stochastic fault decision and every timed fault
process:

* workload distortion (:meth:`FaultInjector.distort`) applies the
  declared-cost factor and the Experiment 4 relative normal error on the
  ``"faults-declared-error"`` stream;
* per-admission assassination (:meth:`FaultInjector.plan_abort`) draws
  on the ``"faults-aborts"`` stream, and explicit
  :class:`~repro.faults.plan.StepAbort` entries fire deterministically
  on their configured attempt;
* node crashes/recoveries and partition slowdown windows run as engine
  processes scheduled at absolute plan times
  (:meth:`FaultInjector.install`).

All draws go through :class:`~repro.engine.rng.RandomStreams`, so the
realised fault schedule is a pure function of (plan, master seed) and
replays bit-identically.
"""

from __future__ import annotations

from typing import (Any, Dict, Generator, List, Optional, Tuple,
                    TYPE_CHECKING)

from repro.core.transaction import (Step, TransactionRuntime,
                                    TransactionSpec)
from repro.engine import Environment, Event, RandomStreams
from repro.faults.plan import (ControlCrash, FaultPlan, NodeCrash,
                               PartitionSlowdown)

if TYPE_CHECKING:  # pragma: no cover - type hints only, no runtime import
    from repro.machine.data_node import DataNode
    from repro.machine.partition import Catalog
    from repro.machine.shard import ControlPlane
    from repro.metrics.collector import MetricsCollector
    from repro.machine.trace import Tracer

STREAM_ABORTS = "faults-aborts"
STREAM_DECLARED = "faults-declared-error"


class FaultInjector:
    """Turns a declarative plan into concrete, seeded fault events."""

    def __init__(self, plan: FaultPlan, streams: RandomStreams) -> None:
        self.plan = plan
        self.streams = streams
        # (tid, attempt) -> step for the explicit one-shot aborts.
        self._step_aborts: Dict[Tuple[int, int], int] = {
            (abort.tid, abort.attempt): abort.step
            for abort in plan.step_aborts}
        self._metrics: Optional["MetricsCollector"] = None
        self._tracer: Optional["Tracer"] = None

    # -- workload distortion --------------------------------------------------

    def distort(self, spec: TransactionSpec) -> TransactionSpec:
        """The spec the *scheduler* sees: declared costs distorted.

        Actual costs are untouched — only the pre-declared ``costof``
        the WTPG weights are built from is wrong, exactly like the
        paper's Experiment 4.
        """
        if not self.plan.distorts_declarations():
            return spec
        steps = list(spec.steps)
        if self.plan.declared_cost_sigma > 0.0:
            # Imported here: workloads pulls in the machine layer, which
            # imports this module — a top-level import would be circular.
            from repro.workloads.errors import declare_with_error
            steps = declare_with_error(steps, self.streams,
                                       self.plan.declared_cost_sigma,
                                       stream_name=STREAM_DECLARED)
        factor = self.plan.declared_cost_factor
        if factor != 1.0:
            # Applied after the noise: declare_with_error rebuilds the
            # declaration from the true cost, so scaling first would be
            # silently discarded.  Multiplication commutes, the order of
            # operations does not.
            steps = [Step(step.partition, step.mode, step.cost,
                          declared_cost=(
                              step.declared_cost
                              if step.declared_cost is not None
                              else step.cost) * factor)
                     for step in steps]
        return TransactionSpec(spec.tid, steps, label=spec.label)

    # -- per-admission assassination ------------------------------------------

    def plan_abort(self, txn: TransactionRuntime) -> Optional[int]:
        """The step at which this admitted attempt dies, or None.

        A returned value of ``len(steps)`` means "after the last step,
        before commit".  Explicit :class:`StepAbort` entries take
        precedence (and consume no randomness); otherwise the abort-rate
        draw decides.  Called exactly once per successful admission, so
        stream consumption — and thus the whole schedule — is
        reproducible.
        """
        explicit = self._step_aborts.get((txn.tid, txn.attempts + 1))
        if explicit is not None:
            return min(explicit, len(txn.spec.steps))
        if self.plan.abort_rate <= 0.0:
            return None
        stream = self.streams.stream(STREAM_ABORTS)
        if stream.random() >= self.plan.abort_rate:
            return None
        return stream.randint(0, len(txn.spec.steps))

    # -- timed faults ----------------------------------------------------------

    def install(self, env: Environment, data_nodes: List["DataNode"],
                catalog: "Catalog",
                metrics: Optional["MetricsCollector"] = None,
                tracer: Optional["Tracer"] = None) -> None:
        """Spawn the engine processes realising the plan's timed faults."""
        self._metrics = metrics
        self._tracer = tracer
        for crash in self.plan.crashes:
            if crash.node < len(data_nodes):
                env.process(self._crash_process(env, data_nodes[crash.node],
                                                crash))
        for slowdown in self.plan.slowdowns:
            nodes = self._nodes_of_partition(slowdown, data_nodes, catalog)
            if nodes:
                env.process(self._slowdown_process(env, nodes, slowdown))

    def install_control(self, env: Environment,
                        plane: "ControlPlane") -> None:
        """Spawn the plan's control-node crash/recovery processes.

        Called only when the run uses the sharded control plane; a plan
        whose ``control_crashes`` target shards beyond the plane's size
        silently skips them (mirroring data-node crash handling).
        """
        for crash in self.plan.control_crashes:
            if crash.cn < plane.num_shards:
                env.process(self._cn_crash_process(env, plane, crash))

    @staticmethod
    def _nodes_of_partition(slowdown: PartitionSlowdown,
                            data_nodes: List["DataNode"],
                            catalog: "Catalog") -> List["DataNode"]:
        if slowdown.partition >= len(catalog):
            return []
        partition = catalog.partition(slowdown.partition)
        if partition.declustered:
            return list(data_nodes)
        if partition.node >= len(data_nodes):
            return []
        return [data_nodes[partition.node]]

    def _crash_process(self, env: Environment, node: "DataNode",
                       crash: NodeCrash) -> Generator[Event, Any, None]:
        if crash.at > env.now:
            yield env.timeout(crash.at - env.now)
        node.crash()
        self._record("node_crash", env.now, node=node.node_id)
        if crash.recover_at is None:
            return
        yield env.timeout(crash.recover_at - env.now)
        node.recover()
        self._record("node_recovery", env.now, node=node.node_id)

    def _cn_crash_process(self, env: Environment, plane: "ControlPlane",
                          crash: ControlCrash) -> Generator[Event, Any, None]:
        if crash.at > env.now:
            yield env.timeout(crash.at - env.now)
        doomed = plane.crash_shard(crash.cn)
        self._record("cn_crash", env.now, cn=crash.cn, doomed=doomed)
        if crash.recover_at is None:
            return
        yield env.timeout(crash.recover_at - env.now)
        records = plane.recover_shard(crash.cn)
        self._record("cn_recovery", env.now, cn=crash.cn, records=records)

    def _slowdown_process(self, env: Environment, nodes: List["DataNode"],
                          slowdown: PartitionSlowdown,
                          ) -> Generator[Event, Any, None]:
        if slowdown.at > env.now:
            yield env.timeout(slowdown.at - env.now)
        tokens = [(node, node.apply_slowdown(slowdown.factor))
                  for node in nodes]
        self._record("slowdown_start", env.now,
                     partition=slowdown.partition, factor=slowdown.factor,
                     nodes=[n.node_id for n in nodes])
        yield env.timeout(slowdown.until - env.now)
        for node, token in tokens:
            node.clear_slowdown(token)
        self._record("slowdown_end", env.now, partition=slowdown.partition,
                     factor=slowdown.factor)

    def _record(self, kind: str, now: float, **detail: object) -> None:
        if self._metrics is not None:
            self._metrics.record_fault(kind, now, **detail)
        if self._tracer is not None:
            from repro.machine.trace import EventType
            trace_kind = {"node_crash": EventType.NODE_CRASHED,
                          "node_recovery": EventType.NODE_RECOVERED,
                          "cn_crash": EventType.CN_CRASHED,
                          "cn_recovery": EventType.CN_RECOVERED}.get(kind)
            if trace_kind is not None:
                self._tracer.emit(now, trace_kind, -1, **detail)
