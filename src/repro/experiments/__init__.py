"""The paper's evaluation (Section 4): all four experiments.

Each module regenerates the corresponding figures:

* :mod:`repro.experiments.experiment1` — Figures 6 and 7 (arrival rate vs
  mean response time / throughput, Pattern1, the blocking case);
* :mod:`repro.experiments.experiment2` — Figure 8 (NumHots vs throughput
  at RT = 70 s, Pattern2, the hot-set case);
* :mod:`repro.experiments.experiment3` — Figure 9 (arrival rate vs mean
  response time, Pattern3, longer blocking);
* :mod:`repro.experiments.experiment4` — Figure 10 (declared-cost error
  ratio vs throughput at RT = 70 s, Pattern1, incl. the CHAIN-C2PL and
  K2-C2PL lower bounds).

:mod:`repro.experiments.paper` holds the anchor values the paper reports,
used by EXPERIMENTS.md and the shape-checking tests.
"""

from repro.experiments.base import (ExperimentConfig, SchedulerCurve,
                                    run_scheduler_grid, sweep_arrival_rates)
from repro.experiments.experiment1 import Experiment1Result, run_experiment1
from repro.experiments.experiment2 import Experiment2Result, run_experiment2
from repro.experiments.experiment3 import Experiment3Result, run_experiment3
from repro.experiments.experiment4 import Experiment4Result, run_experiment4
from repro.experiments.export import (export_experiment1,
                                      export_experiment2,
                                      export_experiment3,
                                      export_experiment4)
from repro.experiments.mixed import (MixedExperimentResult,
                                     run_mixed_experiment)
from repro.experiments.placement import (PlacementExperimentResult,
                                         run_placement_experiment)
from repro.experiments.parallel import (SweepResult, SweepSpec, run_sweep,
                                        run_tasks, sweep_status, task_seed)
from repro.experiments.runner import PointSpec, run_points, sweep_specs
from repro.experiments.verify import verify_paper_claims

__all__ = [
    "Experiment1Result",
    "Experiment2Result",
    "Experiment3Result",
    "Experiment4Result",
    "ExperimentConfig",
    "MixedExperimentResult",
    "PlacementExperimentResult",
    "PointSpec",
    "SchedulerCurve",
    "SweepResult",
    "SweepSpec",
    "export_experiment1",
    "export_experiment2",
    "export_experiment3",
    "export_experiment4",
    "run_placement_experiment",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
    "run_experiment4",
    "run_mixed_experiment",
    "run_points",
    "run_scheduler_grid",
    "run_sweep",
    "run_tasks",
    "sweep_arrival_rates",
    "sweep_specs",
    "sweep_status",
    "task_seed",
    "verify_paper_claims",
]
