"""One-shot verification of the paper's qualitative claims.

``python -m repro verify`` runs a scaled battery of simulations and
checks each headline claim of the paper (plus the extensions' claims)
against the measured orderings.  It is the same logic as the shape
regression tests, packaged for humans: a PASS/FAIL table with the
numbers that justify each verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.config import SimulationParameters
from repro.machine import Catalog, run_simulation
from repro.machine.cluster import WorkloadFn
from repro.workloads import (pattern1, pattern1_catalog, pattern2,
                             pattern2_catalog, pattern3, pattern3_catalog)


@dataclass(frozen=True)
class ClaimCheck:
    """One verified paper claim."""

    experiment: str
    claim: str
    passed: bool
    evidence: str


def _tps(scheduler: str, workload: WorkloadFn,
         catalog: Optional[Catalog], rate: float,
         num_partitions: int, sim_clocks: float, seed: int,
         declustered: bool = False) -> float:
    if declustered:
        catalog = Catalog.uniform(num_partitions, 5.0, 8, declustered=True)
    params = SimulationParameters(scheduler=scheduler,
                                  arrival_rate_tps=rate,
                                  sim_clocks=sim_clocks, seed=seed,
                                  num_partitions=num_partitions)
    return run_simulation(params, workload, catalog=catalog
                          ).metrics.throughput_tps


def verify_paper_claims(sim_clocks: float = 200_000.0,
                        seed: int = 1,
                        progress: Optional[Callable[[str], None]] = None,
                        ) -> List[ClaimCheck]:
    """Run the battery; returns one :class:`ClaimCheck` per claim."""
    checks: List[ClaimCheck] = []

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    # -- Experiment 1: the blocking case -----------------------------------
    note("experiment 1 battery")
    exp1: Dict[str, float] = {
        name: _tps(name, pattern1(16), pattern1_catalog(), 0.6, 16,
                   sim_clocks, seed)
        for name in ("ASL", "C2PL", "CHAIN", "K2", "NODC")}
    ratio = min(exp1[n] / exp1["C2PL"] for n in ("ASL", "CHAIN", "K2"))
    checks.append(ClaimCheck(
        "exp1", "ASL/CHAIN/K2 far above C2PL under blocking (paper ~2x)",
        ratio > 1.5,
        f"min ratio {ratio:.2f}x (" + ", ".join(
            f"{n}={exp1[n]:.3f}" for n in exp1) + ")"))
    tracked = min(exp1["CHAIN"], exp1["K2"]) / exp1["ASL"]
    checks.append(ClaimCheck(
        "exp1", "CHAIN and K2 avoid blocking chains as well as ASL",
        tracked > 0.8, f"CHAIN,K2 at {tracked:.0%} of ASL"))

    # -- Experiment 2: the hot set -------------------------------------------
    note("experiment 2 battery")
    small = {name: _tps(name, pattern2(num_hots=4),
                        pattern2_catalog(num_hots=4), 0.9, 12,
                        sim_clocks, seed)
             for name in ("ASL", "C2PL", "CHAIN", "K2")}
    checks.append(ClaimCheck(
        "exp2", "K2 best on a small hot set",
        small["K2"] == max(small.values()),
        ", ".join(f"{n}={v:.3f}" for n, v in small.items())))
    checks.append(ClaimCheck(
        "exp2", "ASL worst on a small hot set",
        small["ASL"] == min(small.values()),
        f"ASL={small['ASL']:.3f}"))
    large = {name: _tps(name, pattern2(num_hots=16),
                        pattern2_catalog(num_hots=16), 0.9, 24,
                        sim_clocks, seed)
             for name in ("C2PL", "CHAIN", "K2")}
    checks.append(ClaimCheck(
        "exp2", "both WTPG schedulers beat C2PL at NumHots=16",
        large["CHAIN"] > large["C2PL"] and large["K2"] > large["C2PL"],
        ", ".join(f"{n}={v:.3f}" for n, v in large.items())))

    # -- Experiment 3: blocking-time sensitivity ---------------------------------
    note("experiment 3 battery")
    c2pl_p2 = _tps("C2PL", pattern2(num_hots=8), pattern2_catalog(num_hots=8),
                   0.9, 16, sim_clocks, seed)
    c2pl_p3 = _tps("C2PL", pattern3(num_hots=8), pattern3_catalog(num_hots=8),
                   0.9, 16, sim_clocks, seed)
    checks.append(ClaimCheck(
        "exp3", "C2PL degrades when blocking time grows (Pattern2 -> 3)",
        c2pl_p3 < c2pl_p2,
        f"Pattern2 {c2pl_p2:.3f} -> Pattern3 {c2pl_p3:.3f} TPS"))

    # -- Experiment 4: erroneous declarations ---------------------------------------
    note("experiment 4 battery")
    robust = True
    evidence: List[str] = []
    for name in ("CHAIN", "K2"):
        exact = _tps(name, pattern1(16), pattern1_catalog(), 0.6, 16,
                     sim_clocks, seed)
        noisy = _tps(name, pattern1(16, error_sigma=1.0),
                     pattern1_catalog(), 0.6, 16, sim_clocks, seed)
        loss = 1 - noisy / exact
        evidence.append(f"{name} loses {loss:+.1%}")
        robust = robust and loss < 0.35 and noisy > 1.3 * exp1["C2PL"]
    checks.append(ClaimCheck(
        "exp4", "WTPG schedulers survive sigma=1 cost errors",
        robust, ", ".join(evidence)))

    # -- Conclusion 4: intra-transaction parallelism ------------------------------------
    note("declustering battery")
    ranged = _tps("K2", pattern1(16), pattern1_catalog(), 0.9, 16,
                  sim_clocks, seed)
    spread = _tps("K2", pattern1(16), None, 0.9, 16, sim_clocks, seed,
                  declustered=True)
    checks.append(ClaimCheck(
        "conclusion-4", "declustering lifts BAT throughput (intra-txn "
        "parallelism)", spread > ranged,
        f"range-partitioned {ranged:.3f} vs declustered {spread:.3f} TPS"))

    # -- Premise: aborting BATs is ruinous --------------------------------------------
    note("abort-cost battery")
    twopl = _tps("2PL", pattern1(16), pattern1_catalog(), 0.6, 16,
                 sim_clocks, seed)
    checks.append(ClaimCheck(
        "premise", "classic 2PL-with-restarts collapses on BATs",
        twopl < 0.5 * exp1["C2PL"] or twopl < 0.25 * exp1["K2"],
        f"2PL {twopl:.3f} vs C2PL {exp1['C2PL']:.3f} vs K2 "
        f"{exp1['K2']:.3f} TPS"))

    return checks


def report_verification(checks: List[ClaimCheck]) -> str:
    """Render the PASS/FAIL table."""
    from repro.analysis import format_table
    rows = [[c.experiment, "PASS" if c.passed else "FAIL", c.claim,
             c.evidence] for c in checks]
    table = format_table(["exp", "verdict", "claim", "evidence"], rows)
    failed = sum(1 for c in checks if not c.passed)
    summary = (f"\n{len(checks) - failed}/{len(checks)} paper claims "
               "verified" + (f"; {failed} FAILED" if failed else ""))
    return table + summary
