"""CSV export of experiment results, for external plotting.

Each function writes one tidy (long-form) CSV: one measured point per
row, columns named after the paper's axes.  Any plotting tool can then
regenerate the figures; nothing in this module affects measurement.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Tuple, Union

from repro.experiments.experiment1 import Experiment1Result
from repro.experiments.experiment2 import Experiment2Result
from repro.experiments.experiment3 import Experiment3Result
from repro.experiments.experiment4 import Experiment4Result

PathLike = Union[str, Path]


def _write(path: PathLike, header: Sequence[str],
           rows: Iterable[Tuple[object, ...]]) -> int:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        count = 0
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_experiment1(result: Experiment1Result, path: PathLike) -> int:
    """Figures 6 and 7 as rows of (scheduler, rate, rt_s, tps, ...)."""
    def rows() -> Iterator[Tuple[object, ...]]:
        for name, curve in result.curves.items():
            for point in curve.points:
                yield (name, point.arrival_rate_tps,
                       point.mean_response_time / 1000.0,
                       point.throughput_tps, point.dn_utilization,
                       point.cn_utilization, point.commits)

    return _write(path, ["scheduler", "arrival_rate_tps",
                         "mean_rt_seconds", "throughput_tps",
                         "dn_utilization", "cn_utilization", "commits"],
                  rows())


def export_experiment2(result: Experiment2Result, path: PathLike) -> int:
    """Figure 8 as rows of (scheduler, num_hots, rate, rt_s, tps)."""
    def rows() -> Iterator[Tuple[object, ...]]:
        for num_hots, per_sched in result.curves.items():
            for name, curve in per_sched.items():
                for point in curve.points:
                    yield (name, num_hots, point.arrival_rate_tps,
                           point.mean_response_time / 1000.0,
                           point.throughput_tps)

    return _write(path, ["scheduler", "num_hots", "arrival_rate_tps",
                         "mean_rt_seconds", "throughput_tps"], rows())


def export_experiment3(result: Experiment3Result, path: PathLike) -> int:
    """Figure 9, same shape as experiment 1's export."""
    def rows() -> Iterator[Tuple[object, ...]]:
        for name, curve in result.curves.items():
            for point in curve.points:
                yield (name, point.arrival_rate_tps,
                       point.mean_response_time / 1000.0,
                       point.throughput_tps)

    return _write(path, ["scheduler", "arrival_rate_tps",
                         "mean_rt_seconds", "throughput_tps"], rows())


def export_experiment4(result: Experiment4Result, path: PathLike) -> int:
    """Figure 10 as rows of (scheduler, sigma, rate, rt_s, tps)."""
    def rows() -> Iterator[Tuple[object, ...]]:
        for sigma, per_sched in result.curves.items():
            for name, curve in per_sched.items():
                for point in curve.points:
                    yield (name, sigma, point.arrival_rate_tps,
                           point.mean_response_time / 1000.0,
                           point.throughput_tps)

    return _write(path, ["scheduler", "sigma", "arrival_rate_tps",
                         "mean_rt_seconds", "throughput_tps"], rows())
