"""Deterministic parallel sweep runner with checkpoint/resume.

The paper's results are all parameter sweeps (arrival rate, NumHots,
declared-cost error, abort rate) over independent simulation runs, and
every run is a pure function of its :class:`~repro.experiments.runner.
PointSpec` and a seed.  That makes sweeps embarrassingly parallel —
*provided* parallelism cannot perturb the results.  This module makes
that guarantee structural:

**Seed derivation.**  Each task's simulation seed is a stable hash of
the sweep's root seed and the task's key (:func:`task_seed`, built on
the same SHA-256 splitter — :func:`repro.engine.rng.derive_seed` — that
the simulator uses for its named streams).  A task's seed therefore
depends only on *what* the task is, never on which worker ran it, how
many workers there were, or in what order tasks were submitted: serial
and parallel execution are bit-identical by construction, and the
equivalence is regression-tested in
``tests/experiments/test_parallel_runner.py``.

**Checkpointing.**  With ``checkpoint=<path>``, every completed task is
appended to a JSONL grid file as it finishes.  An interrupted sweep
resumes by re-running :func:`run_sweep` with the same arguments:
finished tasks are loaded, pending ones executed.  The file's header
carries a fingerprint of the sweep definition *and* of the simulator's
source (:func:`code_fingerprint`), so a checkpoint written by a
different grid — or by different code — is rejected loudly
(:class:`~repro.errors.CheckpointError`) instead of silently merging
incomparable results.

**Merging.**  Replications of one point are summarised on the parent
with the Student-t confidence intervals of
:mod:`repro.metrics.replication`; :meth:`SweepResult.grid` is the
merged per-point table.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Set, Tuple, Union)

from repro.engine.rng import derive_seed
from repro.errors import CheckpointError, ExperimentError, SweepInterrupted
from repro.experiments.runner import PointSpec
from repro.machine import run_simulation
from repro.metrics.collector import RunMetrics

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT = 1

#: Stream-name prefix under which task seeds are derived from the root
#: seed (see repro.engine.rng.derive_seed — the named-stream splitter).
TASK_SEED_STREAM = "sweep-task"

ProgressFn = Callable[[str], None]


# ---------------------------------------------------------------------------
# Task model
# ---------------------------------------------------------------------------

def point_key(spec: PointSpec) -> str:
    """A stable, human-greppable identity for one grid point.

    Every field except ``seed`` participates (the sweep runner derives
    the simulation seed itself, so two specs differing only in ``seed``
    denote the same point).  The encoding is canonical JSON, so the key
    is independent of field declaration order and process hash seeds.
    """
    raw = asdict(spec)
    raw.pop("seed", None)
    return json.dumps(raw, sort_keys=True, separators=(",", ":"))


def task_seed(root_seed: int, key: str) -> int:
    """The derived simulation seed for task ``key`` under ``root_seed``.

    A pure function of its arguments — worker scheduling, pool size and
    submission order cannot influence it.
    """
    return derive_seed(root_seed, f"{TASK_SEED_STREAM}:{key}")


@dataclass(frozen=True)
class SweepTask:
    """One unit of work: a point spec, a replication index, a seed."""

    spec: PointSpec
    replication: int
    key: str
    seed: int


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: grid points x replications under one seed."""

    points: Tuple[PointSpec, ...]
    root_seed: int = 1
    replications: int = 1

    def __post_init__(self) -> None:
        if not self.points:
            raise ExperimentError("a sweep needs at least one point")
        if self.replications < 1:
            raise ExperimentError("replications must be >= 1")
        keys = [point_key(p) for p in self.points]
        if len(set(keys)) != len(keys):
            raise ExperimentError(
                "duplicate sweep points (seed does not distinguish points; "
                "the runner derives per-task seeds itself)")

    def tasks(self) -> List[SweepTask]:
        """Every task, in definition order (replications innermost)."""
        out: List[SweepTask] = []
        for spec in self.points:
            base = point_key(spec)
            for r in range(self.replications):
                key = f"{base}#r{r}"
                out.append(SweepTask(spec=spec, replication=r, key=key,
                                     seed=task_seed(self.root_seed, key)))
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "points": [asdict(p) for p in self.points],
            "root_seed": self.root_seed,
            "replications": self.replications,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SweepSpec":
        try:
            points = tuple(PointSpec(**p) for p in raw["points"])
            return cls(points=points, root_seed=int(raw["root_seed"]),
                       replications=int(raw["replications"]))
        except (KeyError, TypeError) as exc:
            raise CheckpointError(
                f"malformed sweep definition: {exc}") from exc


# ---------------------------------------------------------------------------
# Fingerprints: reject stale checkpoints loudly
# ---------------------------------------------------------------------------

#: Sub-packages of repro whose source participates in the code
#: fingerprint — exactly the layers that determine simulation results.
#: Tooling (lint/), reporting (analysis/) and the CLI are excluded so a
#: docs or linter change does not invalidate half-finished grids.
_FINGERPRINTED = ("config.py", "errors.py", "core", "engine", "machine",
                  "faults", "workloads", "metrics", "experiments")

_code_fingerprint_memo: Dict[str, str] = {}


def code_fingerprint() -> str:
    """SHA-256 over the simulator's own source files (sorted walk).

    Any change to result-bearing code yields a new fingerprint, which
    invalidates outstanding checkpoints: resuming a grid across a code
    change would otherwise merge runs from two different simulators.
    """
    if "value" in _code_fingerprint_memo:
        return _code_fingerprint_memo["value"]
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for entry in _FINGERPRINTED:
        path = package_root / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for source in files:
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\x00")
            digest.update(source.read_bytes())
            digest.update(b"\x00")
    value = digest.hexdigest()
    _code_fingerprint_memo["value"] = value
    return value


def sweep_fingerprint(sweep: SweepSpec) -> str:
    """Identity of (sweep definition, checkpoint format, code)."""
    payload = json.dumps(
        {"format": CHECKPOINT_FORMAT, "sweep": sweep.as_dict(),
         "code": code_fingerprint()},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Checkpoint file (JSONL): one header line, one line per finished task
# ---------------------------------------------------------------------------

def _header_line(sweep: SweepSpec, fingerprint: str) -> str:
    return json.dumps({
        "kind": "header", "format": CHECKPOINT_FORMAT,
        "fingerprint": fingerprint, "total_tasks": len(sweep.tasks()),
        "sweep": sweep.as_dict(),
    }, sort_keys=True)


def _result_line(task: SweepTask, metrics: RunMetrics) -> str:
    return json.dumps({
        "kind": "result", "key": task.key, "seed": task.seed,
        "metrics": metrics.as_dict(),
    }, sort_keys=True)


def _metrics_from_dict(raw: Mapping[str, Any]) -> RunMetrics:
    try:
        return RunMetrics(**raw)
    except TypeError as exc:
        raise CheckpointError(
            f"unreadable metrics in checkpoint: {exc}") from exc


def read_checkpoint(path: Union[str, Path],
                    ) -> Tuple[Dict[str, Any], Dict[str, RunMetrics]]:
    """Parse a checkpoint file into (header, results-by-task-key).

    A truncated *final* line is dropped silently — that is the normal
    debris of a kill mid-append, and the task it described simply re-runs.
    Corruption anywhere else, a missing header, or duplicate task keys
    raise :class:`CheckpointError`: those mean the file is not the
    append-only log this runner writes.
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise CheckpointError(f"checkpoint {path} is empty")
    records: List[Dict[str, Any]] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                break  # interrupted mid-append; the task will re-run
            raise CheckpointError(
                f"corrupt checkpoint {path}: line {index + 1} is not "
                f"JSON ({exc})") from exc
    if not records or records[0].get("kind") != "header":
        raise CheckpointError(
            f"checkpoint {path} does not start with a header line")
    header = records[0]
    if header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has format {header.get('format')!r}; "
            f"this runner writes format {CHECKPOINT_FORMAT}")
    results: Dict[str, RunMetrics] = {}
    for index, record in enumerate(records[1:], start=2):
        if record.get("kind") != "result":
            raise CheckpointError(
                f"corrupt checkpoint {path}: line {index} has kind "
                f"{record.get('kind')!r}")
        key = record.get("key")
        if not isinstance(key, str):
            raise CheckpointError(
                f"corrupt checkpoint {path}: line {index} lacks a task key")
        if key in results:
            raise CheckpointError(
                f"corrupt checkpoint {path}: task {key!r} recorded twice")
        results[key] = _metrics_from_dict(record.get("metrics", {}))
    return header, results


def sweep_status(path: Union[str, Path]) -> Dict[str, Any]:
    """Inspect a checkpoint: progress, and whether it is still fresh.

    ``stale`` is True when the sweep definition recorded in the header
    no longer fingerprints to the header's value — i.e. the simulator's
    code changed since the checkpoint was written and a resume would be
    rejected.
    """
    header, results = read_checkpoint(path)
    sweep = SweepSpec.from_dict(header["sweep"])
    expected = {t.key for t in sweep.tasks()}
    fingerprint = header.get("fingerprint", "")
    return {
        "path": str(path),
        "total_tasks": len(expected),
        "done_tasks": len([k for k in results if k in expected]),
        "points": len(sweep.points),
        "replications": sweep.replications,
        "root_seed": sweep.root_seed,
        "fingerprint": fingerprint,
        "stale": sweep_fingerprint(sweep) != fingerprint,
    }


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _execute_task(task: SweepTask) -> Tuple[str, RunMetrics]:
    """Run one task (top-level so it pickles for pool workers)."""
    workload, catalog, params = task.spec.build()
    params = params.with_overrides(seed=task.seed)
    metrics = run_simulation(params, workload, catalog=catalog,
                             fault_plan=task.spec.fault_plan()).metrics
    return task.key, metrics


def resolve_workers(max_workers: Optional[int], tasks: int) -> int:
    """Effective worker count: clamp to the task count, None = all cores."""
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 1:
        raise ExperimentError(f"max_workers must be >= 1, got {max_workers}")
    return min(max_workers, tasks) if tasks else 1


def run_tasks(tasks: Sequence[SweepTask],
              max_workers: Optional[int] = 1,
              on_result: Optional[Callable[[SweepTask, RunMetrics],
                                           None]] = None,
              ) -> Dict[str, RunMetrics]:
    """Execute tasks, optionally across a process pool.

    Returns results keyed by task key, in *task definition order*
    regardless of completion order, so callers see identical structures
    for every worker count.  ``on_result`` fires as each task finishes
    (checkpoint appends, progress lines); in pool mode its invocation
    order follows completion and is the only thing scheduling may vary.

    If a pool cannot be created (restricted platforms), execution
    degrades to in-process — results are identical by construction.
    """
    tasks = list(tasks)
    if not tasks:
        return {}
    by_key = {t.key: t for t in tasks}
    workers = resolve_workers(max_workers, len(tasks))
    done: Dict[str, RunMetrics] = {}
    if workers > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor, as_completed
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_execute_task, t) for t in tasks]
                for future in as_completed(futures):
                    key, metrics = future.result()
                    done[key] = metrics
                    if on_result is not None:
                        on_result(by_key[key], metrics)
        except (OSError, ValueError, ImportError):
            done.clear()  # pool unavailable: degrade to in-process
    if len(done) < len(tasks):
        for task in tasks:
            if task.key in done:
                continue
            key, metrics = _execute_task(task)
            done[key] = metrics
            if on_result is not None:
                on_result(task, metrics)
    return {t.key: done[t.key] for t in tasks}


@dataclass
class SweepResult:
    """A completed sweep: per-task metrics plus merged per-point rows."""

    sweep: SweepSpec
    results: Dict[str, RunMetrics]   # task key -> metrics, task order
    reused: int = 0                  # tasks loaded from the checkpoint
    executed: int = 0                # tasks actually run by this call
    checkpoint: Optional[str] = None
    _tasks: List[SweepTask] = field(default_factory=list, repr=False)

    def tasks(self) -> List[SweepTask]:
        if not self._tasks:
            self._tasks = self.sweep.tasks()
        return self._tasks

    def point_runs(self, spec: PointSpec) -> List[RunMetrics]:
        """All replications of one point, in replication order."""
        base = point_key(spec)
        return [self.results[t.key] for t in self.tasks()
                if point_key(t.spec) == base]

    def point_summary(self, spec: PointSpec) -> Dict[str, float]:
        """Merged metrics for one point: mean and 95% CI half-width."""
        runs = self.point_runs(spec)
        if not runs:
            raise ExperimentError(f"no runs for point {point_key(spec)}")
        summary: Dict[str, float] = {"replications": float(len(runs))}
        for name in ("throughput_tps", "mean_response_time"):
            values = [float(getattr(run, name)) for run in runs]
            if len(values) >= 2:
                from repro.metrics.stats import mean_confidence_interval
                mean, half = mean_confidence_interval(values)
            else:
                mean, half = values[0], 0.0
            summary[name] = mean
            summary[f"{name}_ci"] = half
        summary["commits"] = float(sum(run.commits for run in runs))
        return summary

    def grid(self) -> List[Dict[str, object]]:
        """One merged row per point, in sweep definition order."""
        rows: List[Dict[str, object]] = []
        for spec in self.sweep.points:
            row: Dict[str, object] = {
                "workload": spec.workload, "scheduler": spec.scheduler,
                "arrival_rate_tps": spec.arrival_rate_tps,
            }
            row.update(self.point_summary(spec))
            rows.append(row)
        return rows


def _validate_checkpoint(header: Dict[str, Any],
                         recorded: Dict[str, RunMetrics],
                         fingerprint: str,
                         expected: Set[str],
                         path: Path) -> None:
    """Reject a loaded checkpoint unless it belongs to exactly this sweep.

    Split out of :func:`run_sweep` so the loaded -> validated -> merged
    protocol is a visible call sequence (RL016 checks it): results from
    :func:`read_checkpoint` must pass through here before they may be
    merged into the sweep's ``done`` map.
    """
    if header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"stale checkpoint {path}: it was written for a "
            "different sweep, configuration or code version "
            "(fingerprint mismatch); delete it to start over")
    unknown = set(recorded) - expected
    if unknown:
        raise CheckpointError(
            f"checkpoint {path} contains {len(unknown)} task(s) "
            "not in this sweep")


def run_sweep(sweep: SweepSpec,
              max_workers: Optional[int] = 1,
              checkpoint: Optional[Union[str, Path]] = None,
              progress: Optional[ProgressFn] = None,
              task_budget: Optional[int] = None) -> SweepResult:
    """Run (or resume) a sweep; the one-call entry point.

    * ``max_workers`` — process-pool width; 1 runs in-process.  Results
      are bit-identical for every value (per-task derived seeds).
    * ``checkpoint`` — JSONL grid file.  If it exists it must carry this
      sweep's fingerprint (else :class:`CheckpointError`); finished
      tasks are loaded and only pending ones run.
    * ``task_budget`` — stop after that many *newly executed* tasks and
      raise :class:`SweepInterrupted` (tests and smoke runs use this to
      simulate a mid-grid kill; the checkpoint stays resumable).
    """
    tasks = sweep.tasks()
    fingerprint = sweep_fingerprint(sweep)
    done: Dict[str, RunMetrics] = {}
    handle = None
    if checkpoint is not None:
        path = Path(checkpoint)
        if path.exists():
            header, recorded = read_checkpoint(path)
            expected = {t.key for t in tasks}
            _validate_checkpoint(header, recorded, fingerprint,
                                 expected, path)
            done.update(recorded)
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(_header_line(sweep, fingerprint) + "\n")
        handle = path.open("a")
    reused = len(done)
    pending = [t for t in tasks if t.key not in done]
    interrupted = (task_budget is not None and task_budget < len(pending))
    if interrupted:
        assert task_budget is not None
        pending = pending[:task_budget]

    def on_result(task: SweepTask, metrics: RunMetrics) -> None:
        if handle is not None:
            handle.write(_result_line(task, metrics) + "\n")
            handle.flush()
        if progress is not None:
            progress(f"{task.spec.scheduler} "
                     f"λ={task.spec.arrival_rate_tps:.2f} r{task.replication}"
                     f": TPS={metrics.throughput_tps:.3f}")

    try:
        done.update(run_tasks(pending, max_workers=max_workers,
                              on_result=on_result))
    finally:
        if handle is not None:
            handle.close()
    if interrupted:
        raise SweepInterrupted(
            f"sweep stopped by task budget: {len(done)}/{len(tasks)} tasks "
            f"checkpointed{' to ' + str(checkpoint) if checkpoint else ''}; "
            "re-run with the same checkpoint to resume")
    ordered = {t.key: done[t.key] for t in tasks}
    return SweepResult(sweep=sweep, results=ordered, reused=reused,
                       executed=len(pending),
                       checkpoint=None if checkpoint is None
                       else str(checkpoint))
