"""Experiment 2 — the hot-set case (Figure 8).

Pattern2: a 5-object scan of a read-only partition followed by two
1-object updates on a hot set of ``NumHots`` partitions (4, 8, 16 or 32).
Figure 8 plots NumHots vs throughput at mean RT = 70 s.  Paper readings:

* K2 performs best at every NumHots (no WTPG shape constraint);
* ASL is worst (its WTPG is isolated points: least concurrency);
* CHAIN suffers at NumHots = 4 and 8 (chain-form rejections);
* C2PL is beaten by both WTPG schedulers at NumHots = 16 and 32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.base import (RT_TARGET_CLOCKS, ExperimentConfig,
                                    SchedulerCurve, run_scheduler_grid)

DEFAULT_NUM_HOTS = (4, 8, 16, 32)
NUM_READONLY = 8


@dataclass
class Experiment2Result:
    """Per (scheduler, NumHots): a sweep curve + the RT=70 s reading."""

    config: ExperimentConfig
    num_hots_values: Sequence[int]
    curves: Dict[int, Dict[str, SchedulerCurve]] = field(default_factory=dict)

    def throughput_at_rt(self, scheduler: str, num_hots: int,
                         target: float = RT_TARGET_CLOCKS) -> Optional[float]:
        return self.curves[num_hots][scheduler].throughput_at_rt(target)

    def figure8_series(self) -> Dict[str, List[Optional[float]]]:
        """scheduler -> [TPS@RT70 for each NumHots] (the Figure 8 lines)."""
        series: Dict[str, List[Optional[float]]] = {}
        for scheduler in self.config.schedulers:
            series[scheduler] = [
                self.throughput_at_rt(scheduler, h)
                for h in self.num_hots_values]
        return series


def run_experiment2(config: Optional[ExperimentConfig] = None,
                    num_hots_values: Sequence[int] = DEFAULT_NUM_HOTS,
                    ) -> Experiment2Result:
    """Regenerate Figure 8."""
    config = config or ExperimentConfig()
    result = Experiment2Result(config, tuple(num_hots_values))
    for num_hots in num_hots_values:
        result.curves[num_hots] = run_scheduler_grid(
            config, "pattern2", num_hots=num_hots)
        config.report(f"NumHots={num_hots} done")
    return result
