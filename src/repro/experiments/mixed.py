"""Extension experiment: mixed BAT / short-transaction service.

Not in the paper's evaluation — it is the study its conclusion calls for
("in mixed transaction processing, different schedulers are necessary
for different classes of jobs").  We sweep the BAT share of a mixed
arrival stream and report per-class mean response times and total
throughput per scheduler, quantifying how partition-granule BAT locking
poisons an on-line short-transaction service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SimulationParameters
from repro.machine import run_simulation
from repro.metrics.collector import RunMetrics
from repro.workloads import (MixedWorkload, pattern1, pattern1_catalog,
                             short_transactions)
from repro.workloads.mixed import BAT_LABEL, SHORT_LABEL

DEFAULT_BAT_FRACTIONS = (0.0, 0.05, 0.1, 0.2)
DEFAULT_SCHEDULERS = ("C2PL", "CHAIN", "K2")


@dataclass
class MixedExperimentResult:
    """metrics[scheduler][bat_fraction] for the swept mixture."""

    bat_fractions: Sequence[float]
    schedulers: Sequence[str]
    metrics: Dict[str, Dict[float, RunMetrics]] = field(default_factory=dict)

    def short_rt(self, scheduler: str, fraction: float) -> Optional[float]:
        """Mean short-transaction RT (clocks) at one mixture point."""
        point = self.metrics[scheduler][fraction]
        return point.response_time_by_label.get(SHORT_LABEL)

    def bat_rt(self, scheduler: str, fraction: float) -> Optional[float]:
        point = self.metrics[scheduler][fraction]
        return point.response_time_by_label.get(BAT_LABEL)

    def short_rt_inflation(self, scheduler: str) -> Optional[float]:
        """Short-txn RT at max BAT share over the BAT-free baseline."""
        baseline = self.short_rt(scheduler, self.bat_fractions[0])
        loaded = self.short_rt(scheduler, self.bat_fractions[-1])
        if not baseline or not loaded:
            return None
        return loaded / baseline

    def table_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for scheduler in self.schedulers:
            for fraction in self.bat_fractions:
                point = self.metrics[scheduler][fraction]
                short = self.short_rt(scheduler, fraction)
                bat = self.bat_rt(scheduler, fraction)
                rows.append([
                    scheduler, f"{fraction:.0%}",
                    round(point.throughput_tps, 3),
                    None if short is None else round(short / 1000, 2),
                    None if bat is None else round(bat / 1000, 2)])
        return rows


def run_mixed_experiment(
        bat_fractions: Sequence[float] = DEFAULT_BAT_FRACTIONS,
        schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
        arrival_rate_tps: float = 2.0,
        sim_clocks: float = 400_000.0,
        seed: int = 1) -> MixedExperimentResult:
    """Sweep the BAT share of a mixed stream per scheduler."""
    result = MixedExperimentResult(tuple(bat_fractions), tuple(schedulers))
    for scheduler in schedulers:
        per_fraction: Dict[float, RunMetrics] = {}
        for fraction in bat_fractions:
            workload = MixedWorkload(pattern1(16), short_transactions(16),
                                     bat_fraction=fraction)
            params = SimulationParameters(
                scheduler=scheduler, arrival_rate_tps=arrival_rate_tps,
                sim_clocks=sim_clocks, seed=seed, num_partitions=16)
            per_fraction[fraction] = run_simulation(
                params, workload, catalog=pattern1_catalog()).metrics
        result.metrics[scheduler] = per_fraction
    return result


def report_mixed(result: MixedExperimentResult) -> str:
    """Text report of the mixture sweep."""
    from repro.analysis import format_table
    parts = ["Extension experiment: mixed BAT / short-transaction service",
             ""]
    parts.append(format_table(
        ["scheduler", "BAT share", "TPS", "short RT (s)", "BAT RT (s)"],
        result.table_rows()))
    parts.append("")
    for scheduler in result.schedulers:
        inflation = result.short_rt_inflation(scheduler)
        if inflation is not None:
            parts.append(
                f"  {scheduler}: short-transaction RT inflates "
                f"{inflation:.1f}x at {result.bat_fractions[-1]:.0%} BATs")
    return "\n".join(parts)
