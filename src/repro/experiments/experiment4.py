"""Experiment 4 — sensitivity to erroneous I/O declarations (Figure 10).

Pattern1 with declared costs ``C = C0 (1 + x)``, ``x ~ N(0, σ)`` (clipped
at -1): as σ grows the WTPG weights mislead the optimisers.  Figure 10
plots σ vs throughput at mean RT = 70 s for CHAIN and K2 plus their
lower bounds CHAIN-C2PL / K2-C2PL (C2PL with only the admission
constraint — what's left when weights carry no information).  Paper
readings at σ = 1:

* CHAIN loses only ≈ 4.6 % of its σ = 0 throughput (its chain-form
  constraint does much of the work: CHAIN-C2PL ≈ 0.58 TPS);
* K2 loses ≈ 13.8 % (its power is in the weights: K2-C2PL ≈ 0.36 TPS);
* both stay far above plain C2PL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.base import (RT_TARGET_CLOCKS, ExperimentConfig,
                                    SchedulerCurve, run_scheduler_grid)

NUM_PARTITIONS = 16
DEFAULT_SIGMAS = (0.0, 0.25, 0.5, 0.75, 1.0)
DEFAULT_SCHEDULERS = ("CHAIN", "K2", "CHAIN-C2PL", "K2-C2PL", "C2PL")


@dataclass
class Experiment4Result:
    config: ExperimentConfig
    sigmas: Sequence[float]
    # curves[sigma][scheduler]; the hybrids ignore weights so only their
    # sigma = 0 entry is populated (their behaviour is sigma-independent).
    curves: Dict[float, Dict[str, SchedulerCurve]] = field(default_factory=dict)

    def throughput_at_rt(self, scheduler: str, sigma: float,
                         target: float = RT_TARGET_CLOCKS) -> Optional[float]:
        per_sigma = self.curves.get(sigma, {})
        if scheduler not in per_sigma:
            # Weight-free schedulers are sigma-invariant: fall back to 0.
            per_sigma = self.curves.get(0.0, {})
        curve = per_sigma.get(scheduler)
        return curve.throughput_at_rt(target) if curve else None

    def degradation(self, scheduler: str, sigma: float) -> Optional[float]:
        """Fractional throughput loss at ``sigma`` vs σ = 0."""
        at_zero = self.throughput_at_rt(scheduler, 0.0)
        at_sigma = self.throughput_at_rt(scheduler, sigma)
        if at_zero is None or at_sigma is None or at_zero == 0:
            return None
        return 1.0 - at_sigma / at_zero

    def figure10_series(self) -> Dict[str, List[Optional[float]]]:
        """scheduler -> [TPS@RT70 per σ] (the Figure 10 lines)."""
        return {scheduler: [self.throughput_at_rt(scheduler, sigma)
                            for sigma in self.sigmas]
                for scheduler in self.config.schedulers}


# Schedulers whose behaviour does not depend on declared weights: they
# are measured once (σ has no effect on them by construction).
_SIGMA_INVARIANT = {"C2PL", "CHAIN-C2PL", "K2-C2PL", "ASL", "NODC"}


def run_experiment4(config: Optional[ExperimentConfig] = None,
                    sigmas: Sequence[float] = DEFAULT_SIGMAS,
                    ) -> Experiment4Result:
    """Regenerate Figure 10."""
    if config is None:
        config = ExperimentConfig(schedulers=DEFAULT_SCHEDULERS)
    result = Experiment4Result(config, tuple(sigmas))
    for sigma in sigmas:
        wanted = [scheduler for scheduler in config.schedulers
                  if sigma == 0.0 or scheduler not in _SIGMA_INVARIANT]
        result.curves[sigma] = (run_scheduler_grid(
            config, "pattern1", error_sigma=sigma, schedulers=wanted)
            if wanted else {})
        config.report(f"sigma={sigma:g} done")
    return result
