"""Experiment 1 — the blocking case (Figures 6 and 7).

Pattern1 on 16 partitions of 5 objects: the first two steps take S locks
that later upgrade to X, producing chains of blocking in naive
schedulers.  Figure 6 plots arrival rate vs mean response time, Figure 7
arrival rate vs throughput; the paper's readings at mean RT = 70 s:

* ASL, CHAIN and K2 achieve 1.9-2.0x the throughput of C2PL;
* NODC saturates at λ_S ≈ 1.08 TPS (resources only);
* useful utilization of the good schedulers ≈ 64 % (0.7 / 1.1 TPS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import (RT_TARGET_CLOCKS, ExperimentConfig,
                                    SchedulerCurve, run_scheduler_grid,
                                    useful_utilization)

NUM_PARTITIONS = 16


@dataclass
class Experiment1Result:
    """Curves per scheduler plus the paper's derived readings."""

    config: ExperimentConfig
    curves: Dict[str, SchedulerCurve] = field(default_factory=dict)

    def throughput_at_rt(self, scheduler: str,
                         target: float = RT_TARGET_CLOCKS) -> Optional[float]:
        return self.curves[scheduler].throughput_at_rt(target)

    def useful_utilization(self, scheduler: str) -> Optional[float]:
        if "NODC" not in self.curves:
            return None
        return useful_utilization(self.curves[scheduler], self.curves["NODC"])

    def saturation_rate_nodc(self) -> Optional[float]:
        """λ_S: the arrival rate where NODC's mean RT reaches 70 s."""
        if "NODC" not in self.curves:
            return None
        return self.curves["NODC"].saturation_rate()

    def figure6_series(self) -> Dict[str, List[float]]:
        """Arrival rate -> mean RT (seconds) per scheduler."""
        return {name: curve.response_times_seconds
                for name, curve in self.curves.items()}

    def figure7_series(self) -> Dict[str, List[float]]:
        """Arrival rate -> throughput (TPS) per scheduler."""
        return {name: curve.throughputs for name, curve in self.curves.items()}


def run_experiment1(config: Optional[ExperimentConfig] = None,
                    ) -> Experiment1Result:
    """Regenerate Figures 6 and 7 (parallel across config.max_workers)."""
    config = config or ExperimentConfig()
    result = Experiment1Result(config)
    result.curves = run_scheduler_grid(config, "pattern1")
    return result
