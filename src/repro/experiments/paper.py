"""Anchor values reported in the paper, for shape comparison.

These are the quantitative claims extractable from the paper's text (the
figures themselves are only available as low-resolution scans).  Our
reproduction targets the *shape* — who wins, by roughly what factor,
where behaviour changes — rather than absolute numbers, since Table 1's
control-cost entries are partially illegible and the authors' simulator
is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# -- Experiment 1 (Figures 6 and 7) -------------------------------------------

#: ASL/CHAIN/K2 achieve 1.9-2.0x the throughput of C2PL at RT = 70 s.
EXP1_GOOD_OVER_C2PL: Tuple[float, float] = (1.9, 2.0)

#: Resources saturate at λ_S = 1.08 TPS (NODC's RT hits 70 s there).
EXP1_NODC_SATURATION_TPS: float = 1.08

#: Useful utilization of ASL/CHAIN/K2 ≈ 64 % (≈ 0.7 TPS / 1.1 TPS).
EXP1_USEFUL_UTILIZATION: float = 0.64

#: Good schedulers' throughput at RT = 70 s ≈ 0.7 TPS.
EXP1_GOOD_TPS: float = 0.7

# -- Experiment 2 (Figure 8) ----------------------------------------------------

#: C2PL's throughput at RT = 70 s, NumHots = 8 (referenced by Experiment 3).
EXP2_C2PL_TPS_AT_8_HOTS: float = 0.7

#: Qualitative ordering per NumHots: K2 best everywhere, ASL worst;
#: CHAIN degraded at 4 and 8; C2PL below K2 and CHAIN at 16 and 32.
EXP2_ORDERINGS: Dict[int, Tuple[str, ...]] = {
    4: ("K2",),                # K2 on top; CHAIN hurt by chain-form
    8: ("K2",),
    16: ("K2", "CHAIN"),       # both WTPG schedulers above C2PL
    32: ("K2", "CHAIN"),
}

#: Resource congestion of C2PL at NumHots = 16/32 ≈ 70 %.
EXP2_C2PL_CONGESTION: float = 0.70

# -- Experiment 3 (Figure 9) -------------------------------------------------------

#: C2PL collapses to 0.5 TPS at RT = 70 s (30 % below Experiment 2's 0.7).
EXP3_C2PL_TPS: float = 0.5

#: CHAIN and K2 keep 1.2-1.8x the throughput of ASL and C2PL.
EXP3_WTPG_ADVANTAGE: Tuple[float, float] = (1.2, 1.8)

# -- Experiment 4 (Figure 10) ----------------------------------------------------------

#: Throughput loss at σ = 1 relative to σ = 0.
EXP4_CHAIN_LOSS_AT_SIGMA1: float = 0.046
EXP4_K2_LOSS_AT_SIGMA1: float = 0.138

#: Lower bounds at RT = 70 s.
EXP4_CHAIN_C2PL_TPS: float = 0.58
EXP4_K2_C2PL_TPS: float = 0.36

# -- Headline ----------------------------------------------------------------------

#: Abstract: both WTPG schedulers achieve 1.2-1.8x the throughput of ASL
#: and C2PL (across the hot-set experiments).
HEADLINE_SPEEDUP: Tuple[float, float] = (1.2, 1.8)


@dataclass(frozen=True)
class Anchor:
    """One paper claim with a tolerance band for EXPERIMENTS.md tables."""

    experiment: str
    description: str
    paper_value: float
    unit: str = ""

    def compare(self, measured: Optional[float]) -> str:
        if measured is None:
            return "n/a"
        return f"{measured:.3g}{self.unit} (paper: {self.paper_value:g}{self.unit})"


ANCHORS = [
    Anchor("exp1", "ASL/CHAIN/K2 throughput advantage over C2PL", 1.95, "x"),
    Anchor("exp1", "NODC saturation arrival rate", 1.08, " TPS"),
    Anchor("exp1", "useful utilization of good schedulers", 0.64),
    Anchor("exp2", "C2PL TPS at RT=70s, NumHots=8", 0.7, " TPS"),
    Anchor("exp3", "C2PL TPS at RT=70s", 0.5, " TPS"),
    Anchor("exp3", "CHAIN/K2 advantage over ASL/C2PL (low end)", 1.2, "x"),
    Anchor("exp4", "CHAIN throughput loss at sigma=1", 0.046),
    Anchor("exp4", "K2 throughput loss at sigma=1", 0.138),
    Anchor("exp4", "CHAIN-C2PL TPS at RT=70s", 0.58, " TPS"),
    Anchor("exp4", "K2-C2PL TPS at RT=70s", 0.36, " TPS"),
]
