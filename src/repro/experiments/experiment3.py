"""Experiment 3 — longer blocking time on the hot set (Figure 9).

Pattern3 = Pattern2 with a shorter first step (4 objects) and a heavier
final hot update (2 objects) at NumHots = 8: once a transaction holds its
hot X locks it works longer before committing, so waiters queue longer.
Figure 9 plots arrival rate vs mean response time.  Paper readings:

* C2PL collapses to ≈ 0.5 TPS at RT = 70 s — 30 % below its Experiment 2
  value at the same NumHots (very sensitive to blocking time);
* CHAIN and K2 keep 1.2-1.8x the throughput of ASL and C2PL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import (RT_TARGET_CLOCKS, ExperimentConfig,
                                    SchedulerCurve, run_scheduler_grid)

NUM_HOTS = 8
NUM_READONLY = 8


@dataclass
class Experiment3Result:
    config: ExperimentConfig
    curves: Dict[str, SchedulerCurve] = field(default_factory=dict)

    def throughput_at_rt(self, scheduler: str,
                         target: float = RT_TARGET_CLOCKS) -> Optional[float]:
        return self.curves[scheduler].throughput_at_rt(target)

    def figure9_series(self) -> Dict[str, List[float]]:
        """Arrival rate -> mean RT (seconds) per scheduler."""
        return {name: curve.response_times_seconds
                for name, curve in self.curves.items()}

    def advantage_over(self, winner: str, loser: str) -> Optional[float]:
        """TPS ratio at RT = 70 s (the paper's 1.2-1.8x claims)."""
        a = self.throughput_at_rt(winner)
        b = self.throughput_at_rt(loser)
        if a is None or b is None or b == 0:
            return None
        return a / b


def run_experiment3(config: Optional[ExperimentConfig] = None,
                    ) -> Experiment3Result:
    """Regenerate Figure 9."""
    config = config or ExperimentConfig()
    result = Experiment3Result(config)
    result.curves = run_scheduler_grid(config, "pattern3",
                                       num_hots=NUM_HOTS)
    return result
