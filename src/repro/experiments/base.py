"""Shared experiment infrastructure: arrival-rate sweeps per scheduler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SimulationParameters
from repro.machine.cluster import WorkloadFn, run_simulation
from repro.machine.partition import Catalog
from repro.metrics.collector import RunMetrics
from repro.metrics.interpolate import throughput_at_response_time
from repro.errors import ExperimentError

# The paper compares schedulers at a mean response time of 70 seconds.
RT_TARGET_CLOCKS = 70_000.0

# Default full-fidelity horizon (the paper's run length).
PAPER_CLOCKS = 2_000_000.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs every experiment accepts (scaled down for quick runs)."""

    sim_clocks: float = PAPER_CLOCKS
    seed: int = 1
    schedulers: Sequence[str] = ("ASL", "C2PL", "CHAIN", "K2", "NODC")
    arrival_rates: Sequence[float] = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1)
    progress: Optional[Callable[[str], None]] = None
    max_workers: int = 1
    """Process-pool width for the point grid (1 = in-process).  Results
    are identical for every value: each point is an isolated simulation
    seeded by its spec, executed via repro.experiments.runner."""

    def report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


@dataclass
class SchedulerCurve:
    """One scheduler's measured points over an arrival-rate sweep."""

    scheduler: str
    points: List[RunMetrics] = field(default_factory=list)

    @property
    def arrival_rates(self) -> List[float]:
        return [p.arrival_rate_tps for p in self.points]

    @property
    def response_times(self) -> List[float]:
        return [p.mean_response_time for p in self.points]

    @property
    def response_times_seconds(self) -> List[float]:
        return [p.mean_response_time / 1000.0 for p in self.points]

    @property
    def throughputs(self) -> List[float]:
        return [p.throughput_tps for p in self.points]

    def throughput_at_rt(self, target: float = RT_TARGET_CLOCKS,
                         ) -> Optional[float]:
        """The paper's 'throughput at RT = 70 s' reading of this curve."""
        if not self.points:
            return None
        return throughput_at_response_time(
            self.arrival_rates, self.response_times, self.throughputs, target)

    def saturation_rate(self, target: float = RT_TARGET_CLOCKS,
                        ) -> Optional[float]:
        """Arrival rate where mean RT crosses the target."""
        from repro.metrics.interpolate import interpolate_crossing
        if not self.points:
            return None
        return interpolate_crossing(self.arrival_rates, self.response_times,
                                    target)


def sweep_arrival_rates(scheduler: str, config: ExperimentConfig,
                        workload_factory: Callable[[], WorkloadFn],
                        catalog_factory: Callable[[], Catalog],
                        base_params: SimulationParameters,
                        ) -> SchedulerCurve:
    """Run one scheduler across every arrival rate of the config."""
    if not config.arrival_rates:
        raise ExperimentError("need at least one arrival rate")
    curve = SchedulerCurve(scheduler)
    for rate in config.arrival_rates:
        params = base_params.with_overrides(
            scheduler=scheduler, arrival_rate_tps=rate,
            sim_clocks=config.sim_clocks, seed=config.seed)
        result = run_simulation(params, workload_factory(),
                                catalog=catalog_factory())
        curve.points.append(result.metrics)
        config.report(
            f"{scheduler} λ={rate:.2f}: TPS={result.metrics.throughput_tps:.3f} "
            f"RT={result.metrics.mean_response_time / 1000:.1f}s")
    return curve


def run_scheduler_grid(config: ExperimentConfig, workload: str,
                       num_hots: int = 8, error_sigma: float = 0.0,
                       schedulers: Optional[Sequence[str]] = None,
                       ) -> Dict[str, SchedulerCurve]:
    """Run the full schedulers x arrival-rates grid of ``config``.

    The grid is expressed as declarative :class:`PointSpec`s and fanned
    across ``config.max_workers`` processes by the deterministic
    executor (:mod:`repro.experiments.runner`); curves come back in
    config order with points in arrival-rate order, bit-identical to a
    serial nested loop.  Workloads must be spec-expressible (pattern1/2/3
    — all four paper experiments are); custom-workload sweeps use
    :func:`sweep_arrival_rates` instead.
    """
    from repro.experiments.runner import PointSpec, run_points

    if schedulers is None:
        schedulers = tuple(config.schedulers)
    if not config.arrival_rates:
        raise ExperimentError("need at least one arrival rate")
    specs = [PointSpec(workload=workload, scheduler=scheduler,
                       arrival_rate_tps=rate, sim_clocks=config.sim_clocks,
                       seed=config.seed, num_hots=num_hots,
                       error_sigma=error_sigma)
             for scheduler in schedulers for rate in config.arrival_rates]

    def progress(spec: "PointSpec", metrics: RunMetrics) -> None:
        config.report(
            f"{spec.scheduler} λ={spec.arrival_rate_tps:.2f}: "
            f"TPS={metrics.throughput_tps:.3f} "
            f"RT={metrics.mean_response_time / 1000:.1f}s")

    metrics = run_points(specs, processes=config.max_workers,
                         progress=progress if config.progress else None)
    curves: Dict[str, SchedulerCurve] = {}
    for spec, point in zip(specs, metrics):
        curves.setdefault(spec.scheduler,
                          SchedulerCurve(spec.scheduler)).points.append(point)
    return curves


def useful_utilization(curve: SchedulerCurve, nodc: SchedulerCurve,
                       target: float = RT_TARGET_CLOCKS) -> Optional[float]:
    """The paper's useful-utilization ratio: TPS(scheduler)/TPS(NODC).

    Figure 7's discussion expresses each scheduler's useful resource
    utilization as its throughput at RT = 70 s over NODC's.
    """
    own = curve.throughput_at_rt(target)
    bound = nodc.throughput_at_rt(target)
    if own is None or bound is None or bound == 0:
        return None
    return own / bound
