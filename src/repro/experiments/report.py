"""Render experiment results as the paper's figures (text form)."""

from __future__ import annotations

from typing import Mapping

from repro.analysis import ascii_chart, format_series_table
from repro.experiments.base import SchedulerCurve
from repro.experiments.experiment1 import Experiment1Result
from repro.experiments.experiment2 import Experiment2Result
from repro.experiments.experiment3 import Experiment3Result
from repro.experiments.experiment4 import Experiment4Result


def _rt_chart(curves: Mapping[str, SchedulerCurve], title: str) -> str:
    series = {
        name: list(zip(curve.arrival_rates, curve.response_times_seconds))
        for name, curve in curves.items()}
    chart = ascii_chart(series, x_label="arrival rate (TPS)",
                        y_label="mean RT (s)", y_max=200.0)
    return f"{title}\n{chart}"


def report_experiment1(result: Experiment1Result) -> str:
    """Figures 6 and 7 plus the derived readings."""
    rates = next(iter(result.curves.values())).arrival_rates
    parts = ["Experiment 1 (Pattern1, NumParts=16)", ""]
    parts.append("Figure 6: arrival rate vs mean response time (seconds)")
    parts.append(format_series_table(
        "lambda", rates,
        {name: curve.response_times_seconds
         for name, curve in result.curves.items()}))
    parts.append("")
    parts.append(_rt_chart(result.curves, "Figure 6 (chart)"))
    parts.append("")
    parts.append("Figure 7: arrival rate vs throughput (TPS)")
    parts.append(format_series_table(
        "lambda", rates,
        {name: curve.throughputs for name, curve in result.curves.items()}))
    parts.append("")
    parts.append("Readings at mean RT = 70 s:")
    for name in result.curves:
        tps = result.throughput_at_rt(name)
        util = result.useful_utilization(name)
        util_text = f", useful utilization {util:.0%}" if util else ""
        parts.append(f"  {name:10s} TPS@RT70 = "
                     f"{tps:.3f}{util_text}" if tps is not None
                     else f"  {name:10s} TPS@RT70 = n/a")
    saturation = result.saturation_rate_nodc()
    if saturation is not None:
        parts.append(f"  NODC saturation rate λ_S = {saturation:.2f} TPS "
                     "(paper: 1.08)")
    return "\n".join(parts)


def report_experiment2(result: Experiment2Result) -> str:
    """Figure 8, plus the underlying sweep per hot-set size."""
    parts = ["Experiment 2 (Pattern2, hot set)", ""]
    parts.append("Figure 8: NumHots vs throughput at RT = 70 s (TPS)")
    parts.append(format_series_table(
        "NumHots", list(result.num_hots_values), result.figure8_series()))
    for num_hots in result.num_hots_values:
        per_sched = result.curves.get(num_hots, {})
        if not per_sched:
            continue
        rates = next(iter(per_sched.values())).arrival_rates
        parts.append("")
        parts.append(f"NumHots = {num_hots}: arrival rate vs TPS / RT (s)")
        parts.append(format_series_table(
            "lambda", rates,
            {name: curve.throughputs for name, curve in per_sched.items()}))
        parts.append(format_series_table(
            "lambda", rates,
            {name: curve.response_times_seconds
             for name, curve in per_sched.items()}))
    return "\n".join(parts)


def report_experiment3(result: Experiment3Result) -> str:
    """Figure 9 plus the advantage ratios."""
    rates = next(iter(result.curves.values())).arrival_rates
    parts = ["Experiment 3 (Pattern3, NumHots=8)", ""]
    parts.append("Figure 9: arrival rate vs mean response time (seconds)")
    parts.append(format_series_table(
        "lambda", rates, result.figure9_series()))
    parts.append("")
    parts.append(_rt_chart(result.curves, "Figure 9 (chart)"))
    parts.append("")
    parts.append("Readings at mean RT = 70 s:")
    for name in result.curves:
        tps = result.throughput_at_rt(name)
        parts.append(f"  {name:10s} TPS@RT70 = "
                     + (f"{tps:.3f}" if tps is not None else "n/a"))
    for winner in ("CHAIN", "K2"):
        for loser in ("ASL", "C2PL"):
            if winner in result.curves and loser in result.curves:
                ratio = result.advantage_over(winner, loser)
                if ratio is not None:
                    parts.append(f"  {winner} / {loser} = {ratio:.2f}x "
                                 "(paper: 1.2-1.8x)")
    return "\n".join(parts)


def report_experiment4(result: Experiment4Result) -> str:
    """Figure 10 plus the sensitivity readings."""
    parts = ["Experiment 4 (Pattern1 with erroneous declarations)", ""]
    parts.append("Figure 10: error ratio sigma vs throughput at RT = 70 s")
    parts.append(format_series_table(
        "sigma", list(result.sigmas), result.figure10_series()))
    parts.append("")
    for scheduler, paper_loss in (("CHAIN", 0.046), ("K2", 0.138)):
        if scheduler in result.config.schedulers:
            loss = result.degradation(scheduler, max(result.sigmas))
            if loss is not None:
                parts.append(
                    f"  {scheduler} loss at sigma={max(result.sigmas):g}: "
                    f"{loss:.1%} (paper at sigma=1: {paper_loss:.1%})")
    return "\n".join(parts)
