"""Extension experiment: file placement (conclusion 4 of the paper).

Range partitioning minimises message overhead but bounds a BAT's
parallelism to one node per step — so data contention caps useful
utilization well below resources (≈64 % in Experiment 1).  The paper's
conclusion: ">90 % useful utilization needs intra-transaction
parallelism", i.e. declustering files over all nodes.  This experiment
measures both placements under the same workload and schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.config import SimulationParameters
from repro.machine import Catalog, run_simulation
from repro.metrics.collector import RunMetrics
from repro.workloads import pattern1

PLACEMENTS = ("range-partitioned", "declustered")
DEFAULT_SCHEDULERS = ("K2", "C2PL", "NODC")


@dataclass
class PlacementExperimentResult:
    """metrics[scheduler][placement] at one arrival rate."""

    arrival_rate_tps: float
    schedulers: Sequence[str]
    metrics: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)

    def speedup(self, scheduler: str) -> float:
        """Declustered over range-partitioned throughput."""
        pair = self.metrics[scheduler]
        return (pair["declustered"].throughput_tps
                / pair["range-partitioned"].throughput_tps)

    def useful_utilization(self, scheduler: str, placement: str) -> float:
        """Scheduler TPS over NODC TPS under the same placement."""
        if "NODC" not in self.metrics:
            raise KeyError("NODC must be among the measured schedulers")
        bound = self.metrics["NODC"][placement].throughput_tps
        own = self.metrics[scheduler][placement].throughput_tps
        return own / bound if bound else 0.0

    def table_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for scheduler in self.schedulers:
            for placement in PLACEMENTS:
                point = self.metrics[scheduler][placement]
                rows.append([scheduler, placement,
                             round(point.throughput_tps, 3),
                             round(point.mean_response_time / 1000, 1),
                             round(point.dn_utilization, 2)])
        return rows


def run_placement_experiment(
        schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
        arrival_rate_tps: float = 0.9,
        sim_clocks: float = 400_000.0,
        num_partitions: int = 16,
        seed: int = 1) -> PlacementExperimentResult:
    """Measure both placements for every scheduler."""
    result = PlacementExperimentResult(arrival_rate_tps, tuple(schedulers))
    for scheduler in schedulers:
        per_placement: Dict[str, RunMetrics] = {}
        for placement in PLACEMENTS:
            catalog = Catalog.uniform(
                num_partitions, 5.0, 8,
                declustered=(placement == "declustered"))
            params = SimulationParameters(
                scheduler=scheduler, arrival_rate_tps=arrival_rate_tps,
                sim_clocks=sim_clocks, seed=seed,
                num_partitions=num_partitions)
            per_placement[placement] = run_simulation(
                params, pattern1(num_partitions), catalog=catalog).metrics
        result.metrics[scheduler] = per_placement
    return result


def report_placement(result: PlacementExperimentResult) -> str:
    from repro.analysis import format_table
    parts = ["Extension experiment: file placement "
             f"(Pattern1, lambda={result.arrival_rate_tps:g})", ""]
    parts.append(format_table(
        ["scheduler", "placement", "TPS", "mean RT (s)", "DN util"],
        result.table_rows()))
    parts.append("")
    for scheduler in result.schedulers:
        if scheduler == "NODC":
            continue
        speedup = result.speedup(scheduler)
        line = f"  {scheduler}: declustering x{speedup:.2f} throughput"
        if "NODC" in result.schedulers:
            ranged = result.useful_utilization(scheduler,
                                               "range-partitioned")
            spread = result.useful_utilization(scheduler, "declustered")
            line += (f"; useful utilization {ranged:.0%} -> {spread:.0%} "
                     "(paper: >90 % requires intra-txn parallelism)")
        parts.append(line)
    return "\n".join(parts)
