"""Parallel execution of simulation points across processes.

A full-fidelity experiment is dozens of independent 2,000,000-clock
simulations; they parallelise perfectly.  Because worker processes need
picklable work items, a point is described *declaratively* by
:class:`PointSpec` (workload/catalog factories are resolved inside the
worker from the spec), and :func:`run_points` fans them out over a
``multiprocessing`` pool — falling back to in-process execution for
``processes=1`` (or when a pool cannot be created, e.g. on exotic
platforms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimulationParameters
from repro.errors import ExperimentError
from repro.machine import run_simulation
from repro.metrics.collector import RunMetrics
from repro.workloads import (pattern1, pattern1_catalog, pattern2,
                             pattern2_catalog, pattern3, pattern3_catalog)

#: Known workload families a PointSpec can name.
WORKLOADS = ("pattern1", "pattern2", "pattern3")


@dataclass(frozen=True)
class PointSpec:
    """One simulation point, fully described by plain data."""

    workload: str                 # one of WORKLOADS
    scheduler: str
    arrival_rate_tps: float
    sim_clocks: float = 2_000_000.0
    seed: int = 1
    num_hots: int = 8             # pattern2/3 hot-set size
    error_sigma: float = 0.0      # pattern1 declared-cost error

    def build(self) -> Tuple[object, object, SimulationParameters]:
        """Resolve (workload_fn, catalog, parameters) for this point."""
        if self.workload == "pattern1":
            workload = pattern1(16, error_sigma=self.error_sigma)
            catalog = pattern1_catalog()
            num_partitions = 16
        elif self.workload == "pattern2":
            workload = pattern2(num_hots=self.num_hots)
            catalog = pattern2_catalog(num_hots=self.num_hots)
            num_partitions = 8 + self.num_hots
        elif self.workload == "pattern3":
            workload = pattern3(num_hots=self.num_hots)
            catalog = pattern3_catalog(num_hots=self.num_hots)
            num_partitions = 8 + self.num_hots
        else:
            raise ExperimentError(
                f"unknown workload {self.workload!r}; "
                f"choose from {WORKLOADS}")
        params = SimulationParameters(
            scheduler=self.scheduler, arrival_rate_tps=self.arrival_rate_tps,
            sim_clocks=self.sim_clocks, seed=self.seed,
            num_partitions=num_partitions)
        return workload, catalog, params


def run_point(spec: PointSpec) -> RunMetrics:
    """Execute one point (top-level so it pickles for pool workers)."""
    workload, catalog, params = spec.build()
    return run_simulation(params, workload, catalog=catalog).metrics


def run_points(specs: Sequence[PointSpec],
               processes: Optional[int] = None) -> List[RunMetrics]:
    """Run every point, optionally across a process pool.

    Results come back in input order regardless of completion order.
    ``processes=None`` uses ``os.cpu_count()``; ``processes=1`` runs
    in-process (exact same results — each point is an isolated,
    seed-deterministic simulation either way).
    """
    specs = list(specs)
    if not specs:
        return []
    if processes == 1 or len(specs) == 1:
        return [run_point(spec) for spec in specs]
    try:
        import multiprocessing
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(run_point, specs)
    except (OSError, ValueError):
        # No pool available (restricted environment): degrade gracefully.
        return [run_point(spec) for spec in specs]


def sweep_specs(workload: str, schedulers: Sequence[str],
                arrival_rates: Sequence[float], **kwargs) -> List[PointSpec]:
    """The cross product schedulers x rates as PointSpecs."""
    return [PointSpec(workload=workload, scheduler=scheduler,
                      arrival_rate_tps=rate, **kwargs)
            for scheduler in schedulers for rate in arrival_rates]


def group_by_scheduler(specs: Sequence[PointSpec],
                       metrics: Sequence[RunMetrics],
                       ) -> Dict[str, List[RunMetrics]]:
    """Re-assemble pool results into per-scheduler curves (input order)."""
    if len(specs) != len(metrics):
        raise ExperimentError("specs and metrics must align")
    grouped: Dict[str, List[RunMetrics]] = {}
    for spec, metric in zip(specs, metrics):
        grouped.setdefault(spec.scheduler, []).append(metric)
    return grouped
