"""Declarative simulation points and their parallel execution.

A full-fidelity experiment is dozens of independent 2,000,000-clock
simulations; they parallelise perfectly.  Because worker processes need
picklable work items, a point is described *declaratively* by
:class:`PointSpec` (workload/catalog/fault-plan factories are resolved
inside the worker from the spec).  :func:`run_points` fans specs across
cores via the deterministic executor in
:mod:`repro.experiments.parallel` — one runner, one code path, for the
experiments, the benchmarks, the CLI sweeps and the property harness
alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimulationParameters
from repro.errors import ExperimentError
from repro.faults import FaultPlan
from repro.machine import Catalog, run_simulation
from repro.machine.cluster import WorkloadFn
from repro.metrics.collector import RunMetrics
from repro.workloads import (pattern1, pattern1_catalog, pattern2,
                             pattern2_catalog, pattern3, pattern3_catalog)

#: Known workload families a PointSpec can name.
WORKLOADS = ("pattern1", "pattern2", "pattern3")


@dataclass(frozen=True)
class PointSpec:
    """One simulation point, fully described by plain data.

    ``fault_plan_json`` carries an optional serialized
    :class:`~repro.faults.FaultPlan` (``plan.to_json()``): plans are
    kept in their JSON form so the spec stays hashable, picklable and
    checkpoint-serialisable; the plan object is rebuilt inside the
    worker.
    """

    workload: str                 # one of WORKLOADS
    scheduler: str
    arrival_rate_tps: float
    sim_clocks: float = 2_000_000.0
    seed: int = 1
    num_hots: int = 8             # pattern2/3 hot-set size
    error_sigma: float = 0.0      # pattern1 declared-cost error
    fault_plan_json: Optional[str] = None

    def build(self) -> Tuple[WorkloadFn, Catalog, SimulationParameters]:
        """Resolve (workload_fn, catalog, parameters) for this point."""
        if self.workload == "pattern1":
            workload = pattern1(16, error_sigma=self.error_sigma)
            catalog = pattern1_catalog()
            num_partitions = 16
        elif self.workload == "pattern2":
            workload = pattern2(num_hots=self.num_hots)
            catalog = pattern2_catalog(num_hots=self.num_hots)
            num_partitions = 8 + self.num_hots
        elif self.workload == "pattern3":
            workload = pattern3(num_hots=self.num_hots)
            catalog = pattern3_catalog(num_hots=self.num_hots)
            num_partitions = 8 + self.num_hots
        else:
            raise ExperimentError(
                f"unknown workload {self.workload!r}; "
                f"choose from {WORKLOADS}")
        params = SimulationParameters(
            scheduler=self.scheduler, arrival_rate_tps=self.arrival_rate_tps,
            sim_clocks=self.sim_clocks, seed=self.seed,
            num_partitions=num_partitions)
        return workload, catalog, params

    def fault_plan(self) -> Optional[FaultPlan]:
        """The point's fault plan, rebuilt from its JSON form."""
        if self.fault_plan_json is None:
            return None
        return FaultPlan.from_json(self.fault_plan_json)

    def with_fault_plan(self, plan: Optional[FaultPlan]) -> "PointSpec":
        """A copy of this spec carrying ``plan`` (None clears it)."""
        from dataclasses import replace
        return replace(self, fault_plan_json=None if plan is None
                       else plan.to_json())


def run_point(spec: PointSpec) -> RunMetrics:
    """Execute one point (top-level so it pickles for pool workers)."""
    workload, catalog, params = spec.build()
    return run_simulation(params, workload, catalog=catalog,
                          fault_plan=spec.fault_plan()).metrics


def run_points(specs: Sequence[PointSpec],
               processes: Optional[int] = None,
               progress: Optional[Callable[[PointSpec, RunMetrics],
                                           None]] = None,
               ) -> List[RunMetrics]:
    """Run every point, optionally across a process pool.

    Results come back in input order regardless of completion order.
    ``processes=None`` uses ``os.cpu_count()``; ``processes=1`` runs
    in-process.  Either way the results are bit-identical: each point is
    an isolated simulation seeded by its own spec.  Execution delegates
    to :func:`repro.experiments.parallel.run_tasks` — the same executor
    the checkpointed sweep runner uses.  ``progress`` fires once per
    finished point (in completion order under a pool).
    """
    from repro.experiments.parallel import SweepTask, run_tasks

    specs = list(specs)
    if not specs:
        return []
    # Explicit-seed mode: each spec keeps its own seed and the key is
    # simply its input position (run_sweep derives seeds instead).
    tasks = [SweepTask(spec=spec, replication=0, key=str(index),
                       seed=spec.seed)
             for index, spec in enumerate(specs)]
    on_result: Optional[Callable[[SweepTask, RunMetrics], None]] = None
    if progress is not None:
        callback = progress

        def _notify(task: SweepTask, metrics: RunMetrics) -> None:
            callback(task.spec, metrics)

        on_result = _notify
    results = run_tasks(tasks, max_workers=processes, on_result=on_result)
    return [results[str(index)] for index in range(len(specs))]


def sweep_specs(workload: str, schedulers: Sequence[str],
                arrival_rates: Sequence[float],
                **kwargs: Any) -> List[PointSpec]:
    """The cross product schedulers x rates as PointSpecs."""
    return [PointSpec(workload=workload, scheduler=scheduler,
                      arrival_rate_tps=rate, **kwargs)
            for scheduler in schedulers for rate in arrival_rates]


def group_by_scheduler(specs: Sequence[PointSpec],
                       metrics: Sequence[RunMetrics],
                       ) -> Dict[str, List[RunMetrics]]:
    """Re-assemble pool results into per-scheduler curves (input order)."""
    if len(specs) != len(metrics):
        raise ExperimentError("specs and metrics must align")
    grouped: Dict[str, List[RunMetrics]] = {}
    for spec, metric in zip(specs, metrics):
        grouped.setdefault(spec.scheduler, []).append(metric)
    return grouped
