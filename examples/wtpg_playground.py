#!/usr/bin/env python
"""WTPG playground: the paper's running example, step by step.

Builds Figure 1's three transactions, shows the WTPG of Figure 2-(a),
enumerates every full serialization order with its critical path, runs
the CHAIN optimiser, and walks Example 3.3 (why CHAIN delays r2(C:1)).
No simulator involved — this is the core library by itself.

Run:  python examples/wtpg_playground.py
"""

from itertools import product

from repro.core import (ChainPair, LockTable, Step, TransactionRuntime,
                        TransactionSpec, WTPG, chain_components,
                        chain_critical_path, optimise_chain)
from repro.core.builder import add_transaction
from repro.core.schedulers import ChainScheduler

A, B, C, D = 0, 1, 2, 3
PARTITION_NAMES = {A: "A", B: "B", C: "C", D: "D"}


def figure1_specs():
    t1 = TransactionSpec(1, [Step.read(A, 1), Step.read(B, 3), Step.write(A, 1)])
    t2 = TransactionSpec(2, [Step.read(C, 1), Step.write(A, 1)])
    t3 = TransactionSpec(3, [Step.write(C, 1), Step.read(D, 3)])
    return t1, t2, t3


def build_figure2_wtpg():
    table, wtpg = LockTable(), WTPG()
    for spec in figure1_specs():
        table.register(spec)
        add_transaction(wtpg, table, spec)
    return table, wtpg


def show_graph(wtpg: WTPG) -> None:
    print("  nodes (w(T0->Ti) = declared remaining work):")
    for tid in sorted(wtpg.transactions):
        print(f"    T{tid}: {wtpg.source_weight(tid):g} objects")
    print("  conflicting-edges (weights are the dues of the blocked side):")
    for edge in wtpg.pairs():
        print(f"    (T{edge.a},T{edge.b}): "
              f"w(T{edge.a}->T{edge.b})={edge.weight_to(edge.b):g}, "
              f"w(T{edge.b}->T{edge.a})={edge.weight_to(edge.a):g}")


def enumerate_orders(wtpg: WTPG) -> None:
    print("\nEvery full SR-order and its critical path "
          "(shorter = less contention):")
    pairs = wtpg.unresolved_pairs()
    for choices in product(*(((e.a, e.b), (e.b, e.a)) for e in pairs)):
        trial = wtpg.copy()
        for pred, succ in choices:
            trial.resolve(pred, succ)
        if trial.has_precedence_cycle():
            continue
        length, path = trial.critical_path()
        order = ", ".join(f"T{p}->T{s}" for p, s in choices)
        witness = " -> ".join(f"T{t}" for t in path)
        print(f"  {{{order}}}: length {length:g} (T0 -> {witness})")


def run_chain_optimiser(wtpg: WTPG) -> None:
    print("\nCHAIN's O(N^2) optimiser on the chain decomposition:")
    for component in chain_components(wtpg):
        if len(component) < 2:
            continue
        sources = [wtpg.source_weight(t) for t in component]
        pairs = []
        for left, right in zip(component, component[1:]):
            edge = wtpg.pair(left, right)
            pairs.append(ChainPair(down=edge.weight_to(right),
                                   up=edge.weight_to(left)))
        length, orientations = optimise_chain(sources, pairs)
        print(f"  chain {'-'.join(f'T{t}' for t in component)}: "
              f"optimal critical path {length:g}")
        for (left, right), orient in zip(zip(component, component[1:]),
                                         orientations):
            pred, succ = (left, right) if orient == "down" else (right, left)
            print(f"    resolve (T{left},T{right}) as T{pred} -> T{succ}")
        check = chain_critical_path(sources, pairs, orientations)
        assert check == length


def walk_example_3_3() -> None:
    print("\nExample 3.3 — CHAIN in action:")
    scheduler = ChainScheduler()
    runtimes = [TransactionRuntime(spec) for spec in figure1_specs()]
    for txn in runtimes:
        response = scheduler.admit(txn)
        print(f"  admit T{txn.tid}: "
              f"{'accepted' if response.admitted else response.reason}")
    t1, t2, t3 = runtimes
    response = scheduler.request_lock(t2)
    step = t2.step()
    print(f"  T2 requests {step.mode}-lock on "
          f"{PARTITION_NAMES[step.partition]}: {response.decision.value}"
          f" ({response.reason})")
    response = scheduler.request_lock(t1)
    print(f"  T1 requests its first lock: {response.decision.value}")
    response = scheduler.request_lock(t3)
    print(f"  T3 requests its first lock: {response.decision.value}")
    print("  -> exactly the paper: r2(C:1) is delayed because granting it"
          " would fix T2 before T3, against W = {T1->T2, T3->T2}.")


def main() -> None:
    print(__doc__)
    _, wtpg = build_figure2_wtpg()
    print("Figure 2-(a): the WTPG after T1, T2, T3 start")
    show_graph(wtpg)
    enumerate_orders(wtpg)
    run_chain_optimiser(wtpg)
    walk_example_3_3()


if __name__ == "__main__":
    main()
