#!/usr/bin/env python
"""How wrong can the optimizer's cost estimates be before it stops helping?

Both WTPG schedulers need each BAT to pre-declare its I/O demands; in
practice those come from optimizer estimates and are wrong.  This example
reproduces Experiment 4's question at small scale: distort every declared
cost by a relative error x ~ N(0, sigma) and watch throughput.

The paper's answer (Figure 10): CHAIN barely cares (its chain-form
admission constraint does most of the work), K-WTPG loses more (its power
is in the weights), and even at sigma = 1 both beat plain C2PL.

Run:  python examples/declared_cost_errors.py
"""

from repro import SimulationParameters, run_simulation
from repro.analysis import format_series_table
from repro.workloads import pattern1, pattern1_catalog

SIGMAS = (0.0, 0.5, 1.0)
SCHEDULERS = ("CHAIN", "K2", "C2PL")
CLOCKS = 400_000
RATE = 0.6


def throughput(scheduler: str, sigma: float) -> float:
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=RATE,
                                  sim_clocks=CLOCKS, seed=9,
                                  num_partitions=16)
    workload = pattern1(error_sigma=sigma)
    result = run_simulation(params, workload, catalog=pattern1_catalog())
    return result.metrics.throughput_tps


def main() -> None:
    print(__doc__)
    series = {name: [] for name in SCHEDULERS}
    for sigma in SIGMAS:
        print(f"simulating sigma = {sigma:g} ...")
        for name in SCHEDULERS:
            if name == "C2PL" and sigma != 0.0:
                series[name].append(series[name][0])  # weight-free
                continue
            series[name].append(throughput(name, sigma))

    print()
    print("Throughput (TPS) vs declared-cost error sigma:")
    print(format_series_table("sigma", list(SIGMAS), series))
    print()
    for name in ("CHAIN", "K2"):
        loss = 1 - series[name][-1] / series[name][0]
        print(f"{name}: {loss:+.1%} throughput change at sigma = "
              f"{SIGMAS[-1]:g} (paper: CHAIN -4.6%, K2 -13.8%)")
    print("Both remain above C2PL "
          f"({series['C2PL'][0]:.2f} TPS) even with sigma = 1 estimates.")


if __name__ == "__main__":
    main()
