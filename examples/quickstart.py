#!/usr/bin/env python
"""Quickstart: schedule a batch of Bulk Access Transactions.

Runs the paper's Pattern1 workload (join two files, update both) on the
simulated 8-node shared-nothing machine under two schedulers — plain
Cautious 2PL and the paper's K-conflict WTPG scheduler — and prints how
much of C2PL's chain-of-blocking pain K-WTPG avoids.

Run:  python examples/quickstart.py
"""

from repro import SimulationParameters, run_simulation
from repro.analysis import format_table
from repro.workloads import pattern1, pattern1_catalog


def run_one(scheduler: str):
    params = SimulationParameters(
        scheduler=scheduler,
        arrival_rate_tps=0.6,      # moderately heavy load
        sim_clocks=400_000,        # 400 seconds of machine time
        num_partitions=16,
        seed=42,
    )
    result = run_simulation(params, pattern1(), catalog=pattern1_catalog(),
                            record_history=True)
    # Every run is checkable: serializability of the lock-hold history
    # plus scheduler-state consistency, in one call.
    result.validate()
    return result.metrics


def main() -> None:
    print(__doc__)
    rows = []
    for scheduler in ("C2PL", "K2"):
        metrics = run_one(scheduler)
        rows.append((scheduler,
                     metrics.commits,
                     f"{metrics.throughput_tps:.3f}",
                     f"{metrics.mean_response_time / 1000:.1f}",
                     f"{metrics.dn_utilization:.1%}",
                     metrics.lock_retries))
    print(format_table(
        ["scheduler", "commits", "TPS", "mean RT (s)", "DN util",
         "lock retries"], rows))
    print()
    c2pl_tps = float(rows[0][2])
    k2_tps = float(rows[1][2])
    print(f"K-WTPG over C2PL: {k2_tps / c2pl_tps:.2f}x throughput "
          "(the paper reports 1.2-2.0x depending on workload)")


if __name__ == "__main__":
    main()
