#!/usr/bin/env python
"""Banking batch window: master-file updates against a shrinking hot set.

The paper's motivating scenario (Section 1): an off-line banking service
must push many BATs — "read history files for statistic analysis, then
update master files according to this analysis" — through a short batch
window.  The master files are a *hot set*: every BAT ends by updating two
of them.

This example models a night window on the 8-node machine and asks: as the
bank consolidates master files (NumHots shrinking 16 -> 4), which
scheduler keeps the window short?  It reproduces Experiment 2's insight —
ASL's preclaiming collapses first, CHAIN's chain-form admissions choke on
small hot sets, K-WTPG degrades most gracefully.

Run:  python examples/banking_batch_window.py
"""

from repro import SimulationParameters, run_simulation
from repro.analysis import ascii_chart, format_series_table
from repro.workloads import pattern2, pattern2_catalog

WINDOW_CLOCKS = 400_000          # a ~7-minute slice of the batch window
ARRIVAL_RATE = 0.8               # batch jobs queued aggressively
SCHEDULERS = ("ASL", "C2PL", "CHAIN", "K2")
MASTER_FILE_COUNTS = (4, 8, 16)


def throughput(scheduler: str, num_hots: int) -> float:
    params = SimulationParameters(
        scheduler=scheduler, arrival_rate_tps=ARRIVAL_RATE,
        sim_clocks=WINDOW_CLOCKS, seed=7,
        num_partitions=8 + num_hots)
    result = run_simulation(params, pattern2(num_hots=num_hots),
                            catalog=pattern2_catalog(num_hots=num_hots))
    return result.metrics.throughput_tps


def main() -> None:
    print(__doc__)
    series = {name: [] for name in SCHEDULERS}
    for num_hots in MASTER_FILE_COUNTS:
        print(f"simulating hot set of {num_hots} master files ...")
        for name in SCHEDULERS:
            series[name].append(throughput(name, num_hots))

    print()
    print("Batch throughput (TPS) by number of master files:")
    print(format_series_table("masters", list(MASTER_FILE_COUNTS), series))
    print()
    print(ascii_chart(
        {name: list(zip(MASTER_FILE_COUNTS, values))
         for name, values in series.items()},
        x_label="hot master files", y_label="TPS"))
    print()
    best_small = max(SCHEDULERS, key=lambda n: series[n][0])
    print(f"With only {MASTER_FILE_COUNTS[0]} master files, "
          f"{best_small} clears the most jobs "
          f"({series[best_small][0]:.2f} TPS) — the paper's Experiment 2 "
          "conclusion: local WTPG optimisation wins on hot sets.")


if __name__ == "__main__":
    main()
