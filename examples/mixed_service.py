#!/usr/bin/env python
"""Mixed service: what BATs do to on-line transactions (and vice versa).

The paper ends on an open problem: "in mixed transaction processing,
different schedulers are necessary for different classes of jobs."  This
example quantifies why.  We run an on-line stream of debit-credit-style
short transactions (~150 ms of work each) and inject a fraction of BATs
(Pattern1, ~7.2 s of bulk work), all under one partition-level scheduler.

Watch the short transactions' mean response time: a single BAT holding an
X lock on a partition stalls every short job behind it for the BAT's
whole lifetime.  The WTPG schedulers help the BATs, not the short jobs —
class-aware scheduling (or finer granules for the on-line class) is the
missing piece, exactly as the paper concludes.

Run:  python examples/mixed_service.py
"""

from repro import SimulationParameters, run_simulation
from repro.analysis import format_table
from repro.workloads import (MixedWorkload, pattern1, pattern1_catalog,
                             short_transactions)
from repro.workloads.mixed import BAT_LABEL, SHORT_LABEL

CLOCKS = 400_000
RATE = 2.0            # mostly short jobs, so a higher arrival rate
BAT_FRACTIONS = (0.0, 0.1, 0.2)
SCHEDULER = "K2"


def run(bat_fraction: float):
    workload = MixedWorkload(pattern1(16), short_transactions(16),
                             bat_fraction=bat_fraction)
    params = SimulationParameters(scheduler=SCHEDULER, arrival_rate_tps=RATE,
                                  sim_clocks=CLOCKS, seed=21,
                                  num_partitions=16)
    return run_simulation(params, workload, catalog=pattern1_catalog())


def main() -> None:
    print(__doc__)
    rows = []
    for fraction in BAT_FRACTIONS:
        metrics = run(fraction).metrics
        by_label = metrics.response_time_by_label
        short_rt = by_label.get(SHORT_LABEL, float("nan")) / 1000
        bat_rt = by_label.get(BAT_LABEL, float("nan")) / 1000
        rows.append((f"{fraction:.0%}", f"{metrics.throughput_tps:.2f}",
                     f"{short_rt:.2f}",
                     "-" if fraction == 0 else f"{bat_rt:.1f}"))
    print(format_table(
        ["BAT share", "total TPS", "short-txn RT (s)", "BAT RT (s)"], rows))
    print()
    baseline = float(rows[0][2])
    loaded = float(rows[-1][2])
    print(f"Mixing in {BAT_FRACTIONS[-1]:.0%} BATs inflates the on-line "
          f"class's response time {loaded / baseline:.0f}x under scheduler "
          f"{SCHEDULER} — partition-granule locks make the classes "
          "incompatible, which is the paper's closing argument.")


if __name__ == "__main__":
    main()
