#!/usr/bin/env python
"""Observability tour: traces, histories, invariants, record/replay.

A production scheduler is only trustworthy if you can see what it did.
This example tours the library's observability stack on one contended
run:

1. record a full structured event trace (and validate every lifecycle);
2. print one transaction's timeline — watch it get delayed and why;
3. prove the run conflict-serializable from its lock-hold history;
4. snapshot the workload to a JSONL trace file and replay it bit-exact.

Run:  python examples/observability_tour.py
"""

import tempfile
from pathlib import Path

from repro import SimulationParameters
from repro.machine import Cluster
from repro.machine.trace import EventType, Tracer, validate_trace
from repro.workloads import (ReplayWorkload, pattern1, pattern1_catalog,
                             record_workload, save_trace, load_trace)


def run_traced(workload):
    tracer = Tracer()
    params = SimulationParameters(scheduler="K2", arrival_rate_tps=0.7,
                                  sim_clocks=200_000, seed=17,
                                  num_partitions=16)
    cluster = Cluster(params, workload, catalog=pattern1_catalog(),
                      tracer=tracer, record_history=True)
    result = cluster.run()
    return tracer, result


def show_timeline(tracer, tid):
    print(f"\nTimeline of T{tid}:")
    for event in tracer.timeline(tid):
        detail = ", ".join(f"{k}={v}" for k, v in sorted(
            event.detail.items()))
        print(f"  t={event.time / 1000:8.2f}s  {event.kind.value:20s} "
              f"{detail}")


def main() -> None:
    print(__doc__)

    # 1 + 2: trace a live run and inspect a delayed transaction.
    tracer, result = run_traced(pattern1())
    validate_trace(tracer)
    print(f"traced {len(tracer)} events over "
          f"{result.metrics.commits} commits; lifecycle validated")
    print("event counts:", {k: v for k, v in tracer.summary().items() if v})
    delayed = tracer.of_kind(EventType.LOCK_DELAYED)
    if delayed:
        show_timeline(tracer, delayed[0].tid)

    # 3: serializability proof from the lock-hold history.
    result.history.check_lock_exclusion()
    order = result.history.check_serializable()
    print(f"\nrun is conflict-serializable; a witness order starts "
          f"{order[:8]} ...")

    # 4: record/replay.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.jsonl"
        save_trace(path, record_workload(pattern1(), count=300, seed=17))
        replay = ReplayWorkload(load_trace(path))
        _, first = run_traced(replay)
        _, second = run_traced(replay)
        assert (first.metrics.mean_response_time
                == second.metrics.mean_response_time)
        print(f"\nreplayed {len(replay)} recorded transactions twice: "
              f"bit-identical metrics "
              f"(mean RT {first.metrics.mean_response_time / 1000:.1f}s)")


if __name__ == "__main__":
    main()
