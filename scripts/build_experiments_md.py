#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from the full-fidelity reports in results/.

Parses the key readings out of each experiment's text report (written by
scripts/run_paper_experiments.py), compares them against the paper's
stated values, and emits the paper-vs-measured record.  Re-runnable:
regenerate the reports, re-run this.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
OUT = ROOT / "EXPERIMENTS.md"

TPS_LINE = re.compile(
    r"^\s+(\S+)\s+TPS@RT70 = ([0-9.]+)(?:, useful utilization (\d+)%)?",
    re.MULTILINE)
SATURATION = re.compile(r"λ_S = ([0-9.]+) TPS")
RATIO_LINE = re.compile(r"^\s+(\S+) / (\S+) = ([0-9.]+)x", re.MULTILINE)
LOSS_LINE = re.compile(
    r"^\s+(\S+) loss at sigma=([0-9.]+): ([-0-9.]+)%", re.MULTILINE)


def read(name: str) -> str:
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        raise SystemExit(f"missing {path}; run "
                         "scripts/run_paper_experiments.py first")
    return path.read_text()


def tps_readings(text: str):
    return {m.group(1): (float(m.group(2)),
                         int(m.group(3)) if m.group(3) else None)
            for m in TPS_LINE.finditer(text)}


def figure8_table(text: str):
    """NumHots -> {scheduler: tps} from the exp2 report table."""
    lines = text.splitlines()
    header_index = next(i for i, line in enumerate(lines)
                        if line.startswith("NumHots"))
    names = lines[header_index].split()[1:]
    table = {}
    for line in lines[header_index + 2:]:
        parts = line.split()
        if len(parts) != len(names) + 1:
            break
        table[int(parts[0])] = {name: float(value)
                                for name, value in zip(names, parts[1:])}
    return table


def figure10_table(text: str):
    lines = text.splitlines()
    header_index = next(i for i, line in enumerate(lines)
                        if line.startswith("sigma"))
    names = lines[header_index].split()[1:]
    table = {}
    for line in lines[header_index + 2:]:
        parts = line.split()
        if len(parts) != len(names) + 1:
            break
        table[float(parts[0])] = {name: float(value)
                                  for name, value in zip(names, parts[1:])}
    return table


def check(ok: bool) -> str:
    return "✅" if ok else "⚠️"


def build() -> str:
    exp1 = read("exp1")
    exp2 = read("exp2")
    exp3 = read("exp3")
    exp4 = read("exp4")

    r1 = tps_readings(exp1)
    sat = float(SATURATION.search(exp1).group(1))
    fig8 = figure8_table(exp2)
    r3 = tps_readings(exp3)
    ratios3 = {(m.group(1), m.group(2)): float(m.group(3))
               for m in RATIO_LINE.finditer(exp3)}
    fig10 = figure10_table(exp4)
    losses = {m.group(1): float(m.group(3)) / 100
              for m in LOSS_LINE.finditer(exp4)}

    good_over_c2pl = min(r1[n][0] for n in ("ASL", "CHAIN", "K2")) / \
        r1["C2PL"][0]
    wtpg_util = [r1[n][1] for n in ("CHAIN", "K2") if r1[n][1] is not None]

    hots = sorted(fig8)
    k2_best_everywhere = all(
        fig8[h]["K2"] == max(fig8[h].values()) for h in hots)
    asl_worst_small = all(
        fig8[h]["ASL"] == min(fig8[h].values()) for h in hots[:3])
    chain_hurt_small = fig8[hots[0]]["CHAIN"] < fig8[hots[0]]["C2PL"]
    wtpg_beat_c2pl_large = all(
        fig8[h]["CHAIN"] > fig8[h]["C2PL"]
        and fig8[h]["K2"] > fig8[h]["C2PL"] for h in hots[2:])
    c2pl_at_8 = fig8[8]["C2PL"]
    c2pl_drop = 1 - r3["C2PL"][0] / c2pl_at_8

    sigmas = sorted(fig10)
    max_sigma = sigmas[-1]
    hybrid_gap = fig10[0.0].get("CHAIN-C2PL", 0) > fig10[0.0].get(
        "K2-C2PL", 0)

    rows = [
        ("Exp 1", "ASL/CHAIN/K2 over C2PL at RT=70 s", "1.9–2.0×",
         f"{good_over_c2pl:.2f}×", good_over_c2pl > 1.5),
        ("Exp 1", "NODC saturation rate λ_S", "1.08 TPS",
         f"{sat:.2f} TPS", abs(sat - 1.08) < 0.1),
        ("Exp 1", "useful utilization of CHAIN/K2", "≈64 %",
         "/".join(f"{u}%" for u in wtpg_util),
         all(abs(u - 64) <= 10 for u in wtpg_util)),
        ("Exp 2", "K2 best at every NumHots", "yes",
         "yes" if k2_best_everywhere else "no", k2_best_everywhere),
        ("Exp 2", "ASL worst at small hot sets", "yes",
         "yes" if asl_worst_small else "no", asl_worst_small),
        ("Exp 2", "CHAIN below C2PL at NumHots=4", "yes",
         "yes" if chain_hurt_small else "no", chain_hurt_small),
        ("Exp 2", "CHAIN & K2 above C2PL at NumHots=16/32", "yes",
         "yes" if wtpg_beat_c2pl_large else "no", wtpg_beat_c2pl_large),
        ("Exp 2", "C2PL at NumHots=8", "0.7 TPS",
         f"{c2pl_at_8:.2f} TPS", 0.3 < c2pl_at_8 < 1.0),
        ("Exp 3", "C2PL at RT=70 s", "0.5 TPS",
         f"{r3['C2PL'][0]:.2f} TPS", 0.15 < r3["C2PL"][0] < 0.7),
        ("Exp 3", "C2PL drop vs Exp 2 @ NumHots=8", "−30 %",
         f"{-c2pl_drop:.0%}", 0.1 < c2pl_drop < 0.6),
        ("Exp 3", "CHAIN/K2 over ASL/C2PL", "1.2–1.8×",
         "–".join(f"{v:.2f}" for v in sorted(ratios3.values())[:1]) + "–" +
         f"{sorted(ratios3.values())[-1]:.2f}×",
         min(ratios3.values()) > 1.0),
        ("Exp 4", "CHAIN loss at σ=1", "4.6 %",
         f"{losses.get('CHAIN', float('nan')):.1%}",
         losses.get("CHAIN", 1) < 0.25),
        ("Exp 4", "K2 loss at σ=1", "13.8 %",
         f"{losses.get('K2', float('nan')):.1%}",
         losses.get("K2", 1) < 0.35),
        ("Exp 4", "CHAIN-C2PL above K2-C2PL", "0.58 vs 0.36 TPS",
         f"{fig10[0.0].get('CHAIN-C2PL', float('nan')):.2f} vs "
         f"{fig10[0.0].get('K2-C2PL', float('nan')):.2f} TPS", hybrid_gap),
    ]

    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Full-fidelity reproduction of every figure in the paper's",
        "evaluation: 2,000,000-clock runs (the paper's horizon), 8 data",
        "nodes, MPL = ∞, exponential arrivals, seed 1.  Regenerate with",
        "`python scripts/run_paper_experiments.py` followed by",
        "`python scripts/build_experiments_md.py` (≈1 h single-process;",
        "use `repro.experiments.runner` for multi-core).",
        "",
        "Absolute numbers are not expected to match a 1990 simulator whose",
        "Table 1 control costs are partially illegible (see DESIGN.md); the",
        "*shape* — who wins, by what factor, where behaviour flips — is the",
        "reproduction target.  ✅ = shape reproduced, ⚠️ = deviation",
        "(discussed below the table).",
        "",
        "| Exp | Paper claim | Paper value | Measured | Verdict |",
        "|---|---|---|---|---|",
    ]
    for exp, claim, paper, measured, ok in rows:
        lines.append(f"| {exp} | {claim} | {paper} | {measured} "
                     f"| {check(ok)} |")

    lines += [
        "",
        "## Notes on deviations",
        "",
        "* **C2PL separation is wider than the paper's.**  We measure the",
        "  good schedulers at ~2.2–2.4× C2PL in Experiment 1 (paper:",
        "  1.9–2.0×) and C2PL lower in absolute TPS.  Our retry-polling",
        "  resubmission (500 ms fixed delay, per the paper's description)",
        "  plus deliberately overestimated control costs penalise C2PL's",
        "  enormous retry volume; the paper acknowledges the same bias",
        "  direction (\"this setting makes us overestimate the overhead of",
        "  control\").",
        "* **The K-conflict counting granularity is a calibrated choice.**",
        "  The paper's wording (\"each lock-declaration may conflict with",
        "  K lock-declarations at most\") is ambiguous on Pattern1, where a",
        "  rival's read-then-upgrade pair contributes *two* conflicting",
        "  declarations but one transaction.  Counting declarations makes",
        "  the K = 2 admission ASL-like (strong on Pattern1) and *inverts*",
        "  the paper's Experiment 4 hybrid ordering; counting distinct",
        "  transactions — our default — reproduces it (CHAIN-C2PL well",
        "  above K2-C2PL, the latter near plain C2PL).  Both modes are",
        "  implemented (`k_count_mode`) and ablated in",
        "  `benchmarks/bench_ablation_kcount.py`.",
        "* **E-minimality livelock fix.**  Property testing found that",
        "  comparing E(q) against rival declarations the rival cannot yet",
        "  issue (later steps) can livelock a trio of transactions under",
        "  the rule as literally stated; we compare against each rival's",
        "  earliest pending conflicting declaration (DESIGN.md decision 7).",
        "",
        "## Full reports",
        "",
    ]
    for name, title in (("exp1", "Experiment 1 (Figures 6 and 7)"),
                        ("exp2", "Experiment 2 (Figure 8)"),
                        ("exp3", "Experiment 3 (Figure 9)"),
                        ("exp4", "Experiment 4 (Figure 10)")):
        lines += [f"### {title}", "", "```"]
        lines += read(name).rstrip().splitlines()
        lines += ["```", ""]
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    OUT.write_text(build())
    print(f"wrote {OUT}")
