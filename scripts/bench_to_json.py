#!/usr/bin/env python
"""Measure the WTPG/estimator micro-operations and write BENCH_wtpg.json.

Timings use ``time.perf_counter`` over repeated calls (best of several
rounds, so OS noise inflates nothing).  The "before" column is the legacy
copy-based path, which is kept in-tree as the estimator's reference mode
and as ``WTPG.copy()`` + full-Kahn probes; the "after" column is the
overlay/incremental path the schedulers now use.  The headline acceptance
number is the n=256 estimator speedup (must be >= 5x).

Run:  PYTHONPATH=src python scripts/bench_to_json.py
"""

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

from bench_wtpg import build_graph  # noqa: E402
from bench_estimator import candidate  # noqa: E402
from repro.core.estimator import estimate_contention  # noqa: E402

SIZES = (16, 64, 256)
ROUNDS = 5


def best_time(fn, calls):
    """Seconds per call: best mean over ROUNDS rounds of ``calls`` calls."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = (time.perf_counter() - start) / calls
        if elapsed < best:
            best = elapsed
    return best


def calls_for(fn, target=0.05):
    """Enough calls per round to fill ~target seconds (min 5)."""
    start = time.perf_counter()
    fn()
    once = time.perf_counter() - start
    return max(5, int(target / max(once, 1e-7)))


def measure(fn):
    return best_time(fn, calls_for(fn))


def bench_graph_ops(n):
    g = build_graph(n)
    edge = g.unresolved_pairs()[0]
    out = {
        "copy_s": measure(g.copy),
        "cycle_probe_s": measure(
            lambda: g.creates_cycle_from(edge.a, [edge.b])),
    }
    # Critical path, cold vs incremental: the cold number rebuilds from
    # scratch each call (a fresh copy); the warm one re-uses the cached
    # order and recomputes only the dirtied suffix after a weight change.
    out["critical_path_cold_s"] = measure(
        lambda: g.copy().critical_path_length())

    def warm():
        g.decrement_source(n // 2, 0.0001)
        return g.critical_path_length()

    g.critical_path_length()  # prime the cache
    out["critical_path_warm_s"] = measure(warm)
    return out


def bench_estimator(n):
    g = build_graph(n)
    tid, implied = candidate(g)
    overlay = measure(lambda: estimate_contention(g, tid, implied))
    reference = measure(
        lambda: estimate_contention(g, tid, implied, reference=True))
    return {
        "overlay_s": overlay,
        "reference_s": reference,
        "speedup": reference / overlay,
    }


def main():
    report = {
        "description": "WTPG/estimator microbenchmarks: legacy copy-based "
                       "paths (before) vs overlay/incremental paths (after)",
        "units": "seconds per call (best mean of %d rounds)" % ROUNDS,
        "sizes": list(SIZES),
        "graph_ops": {},
        "estimator": {},
    }
    for n in SIZES:
        print(f"n={n}: graph ops...", file=sys.stderr)
        report["graph_ops"][str(n)] = bench_graph_ops(n)
        print(f"n={n}: estimator...", file=sys.stderr)
        report["estimator"][str(n)] = bench_estimator(n)
    headline = report["estimator"]["256"]["speedup"]
    report["estimator_speedup_n256"] = round(headline, 2)
    out = ROOT / "BENCH_wtpg.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}; estimator speedup at n=256: {headline:.1f}x",
          file=sys.stderr)
    if headline < 5.0:
        print("WARNING: below the 5x acceptance bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
