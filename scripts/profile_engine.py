#!/usr/bin/env python
"""Profile the engine hot path under the bulk-scan scale workload.

Runs one pinned-seed simulation (64 nodes, ``r(F:512) -> w(F:1)`` scans
at light load — the million-BAT regime the batched node loop targets)
under cProfile and prints the pstats table, so a hot-path regression
shows up as a changed profile rather than a vague slowdown.

Run::

    PYTHONPATH=src python scripts/profile_engine.py
    PYTHONPATH=src python scripts/profile_engine.py --mode reference \\
        --scheduler CHAIN --txns 2000 --sort cumulative
    PYTHONPATH=src python scripts/profile_engine.py --dump engine.prof

The defaults mirror ``benchmarks/bench_engine.py`` exactly (same seed,
same arrival rate, same catalog), so profile numbers line up with the
committed BENCH_engine.json throughput rows.
"""

import argparse
import cProfile
import pstats
import sys
import time

from repro.config import SimulationParameters
from repro.machine import run_simulation
from repro.workloads import bulk_scan, bulk_scan_catalog

#: Pinned defaults, shared with benchmarks/bench_engine.py.
NUM_NODES = 64
ARRIVAL_TPS = 0.002
OBJ_TIME = 20.0
SEED = 404


def scale_params(scheduler: str, txns: int, mode: str,
                 num_nodes: int = NUM_NODES) -> SimulationParameters:
    """The scale-run configuration: ``txns`` expected arrivals."""
    return SimulationParameters(
        scheduler=scheduler, arrival_rate_tps=ARRIVAL_TPS,
        sim_clocks=txns * 1000.0 / ARRIVAL_TPS, seed=SEED,
        num_nodes=num_nodes, num_partitions=num_nodes, obj_time=OBJ_TIME,
        node_mode=mode)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scheduler", default="K2",
                        choices=("CHAIN", "K2", "C2PL", "2PL"))
    parser.add_argument("--mode", default="batched",
                        choices=("batched", "reference"))
    parser.add_argument("--txns", type=int, default=1000,
                        help="expected transaction count (default 1000)")
    parser.add_argument("--nodes", type=int, default=NUM_NODES)
    parser.add_argument("--sort", default="tottime",
                        choices=("tottime", "cumulative", "ncalls"))
    parser.add_argument("--lines", type=int, default=25,
                        help="pstats rows to print (default 25)")
    parser.add_argument("--dump", metavar="PATH",
                        help="also write the raw profile for snakeviz etc.")
    args = parser.parse_args()

    params = scale_params(args.scheduler, args.txns, args.mode, args.nodes)
    workload = bulk_scan(num_partitions=args.nodes)
    catalog = bulk_scan_catalog(num_partitions=args.nodes,
                                num_nodes=args.nodes)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = run_simulation(params, workload, catalog=catalog)
    profiler.disable()
    wall = time.perf_counter() - start

    metrics = result.metrics
    quanta = metrics.weight_messages
    print(f"scheduler={args.scheduler} mode={args.mode} "
          f"nodes={args.nodes} seed={SEED}")
    print(f"commits={metrics.commits} quanta={quanta} "
          f"wall={wall:.2f}s "
          f"({quanta / wall:,.0f} quanta/s, "
          f"{metrics.commits / wall:,.0f} txns/s)")
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.lines)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"wrote {args.dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
