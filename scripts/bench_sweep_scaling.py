#!/usr/bin/env python
"""Measure sweep wall-clock: serial vs pooled, and resume vs re-run.

Writes ``BENCH_sweep.json`` at the repo root with four honest numbers:

* ``serial_s`` / ``parallel_s`` — one full grid with ``--jobs 1`` and
  ``--jobs N`` (N = ``--jobs``, default all cores).  On a multi-core
  machine the pooled run should approach ``serial_s / min(N, cores)``;
  on a 1-core container the two are the same run and the file records
  that honestly (``cpu_count`` is part of the payload).
* ``resume_s`` / ``rerun_s`` — after interrupting a checkpointed grid
  halfway, finishing it from the checkpoint vs starting over.  This
  speedup is scheduling-free and reproduces on any machine: resuming
  half a grid costs half a grid.

The script also asserts that every configuration produced bit-identical
metrics — the determinism guarantee the test suite proves, re-checked
here on the timing grid.

Run:  python scripts/bench_sweep_scaling.py [--jobs N] [--clocks C]
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.errors import SweepInterrupted
from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.runner import PointSpec

ROOT = Path(__file__).resolve().parent.parent

SCHEDULERS = ("ASL", "C2PL", "CHAIN", "K2", "NODC")
RATES = (0.3, 0.6, 0.9)


def build_sweep(clocks: float) -> SweepSpec:
    points = tuple(PointSpec("pattern1", scheduler, rate, sim_clocks=clocks)
                   for scheduler in SCHEDULERS for rate in RATES)
    return SweepSpec(points=points, root_seed=1)


def timed(label: str, fn):
    started = time.perf_counter()
    value = fn()
    elapsed = time.perf_counter() - started
    print(f"  {label}: {elapsed:.2f}s", file=sys.stderr, flush=True)
    return elapsed, value


def grid_dicts(result):
    return {key: metrics.as_dict() for key, metrics in result.results.items()}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=None,
                        help="pool width for the parallel leg "
                             "(default: all cores)")
    parser.add_argument("--clocks", type=float, default=250_000,
                        help="horizon per point (bench_experiment1 scale)")
    args = parser.parse_args()
    jobs = args.jobs or (os.cpu_count() or 1)
    sweep = build_sweep(args.clocks)
    total = len(sweep.tasks())
    print(f"grid: {total} points x {args.clocks:g} clocks, "
          f"jobs={jobs}, cores={os.cpu_count()}", file=sys.stderr)

    serial_s, serial = timed("serial (jobs=1)",
                             lambda: run_sweep(sweep, max_workers=1))
    parallel_s, parallel = timed(f"parallel (jobs={jobs})",
                                 lambda: run_sweep(sweep, max_workers=jobs))
    assert grid_dicts(serial) == grid_dicts(parallel), \
        "parallel sweep diverged from serial"

    # Resume half a checkpointed grid vs re-running the whole thing.
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "grid.jsonl"
        try:
            run_sweep(sweep, max_workers=jobs, checkpoint=ckpt,
                      task_budget=total // 2)
        except SweepInterrupted:
            pass
        resume_s, resumed = timed(
            "resume (half checkpointed)",
            lambda: run_sweep(sweep, max_workers=jobs, checkpoint=ckpt))
    assert resumed.reused == total // 2
    assert grid_dicts(resumed) == grid_dicts(serial), \
        "resumed sweep diverged from serial"
    rerun_s = parallel_s   # a fresh run of the same grid at the same width

    payload = {
        "grid_points": total,
        "sim_clocks": args.clocks,
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "resume_s": round(resume_s, 3),
        "rerun_s": round(rerun_s, 3),
        "resume_speedup": round(rerun_s / resume_s, 3),
        "deterministic": True,   # asserted above, on this very grid
    }
    out = ROOT / "BENCH_sweep.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
