#!/usr/bin/env python
"""Run all four experiments at the paper's full 2,000,000-clock horizon.

Writes one text report per experiment to results/ (used to fill
EXPERIMENTS.md).  Takes tens of minutes; progress goes to stderr.

Run:  python scripts/run_paper_experiments.py [--clocks N] [--jobs J]

``--jobs`` fans each experiment's point grid over J worker processes
(repro.experiments.runner); results are identical for every J.
"""

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (ExperimentConfig, run_experiment1,
                               run_experiment2, run_experiment3,
                               run_experiment4)
from repro.experiments.experiment4 import DEFAULT_SCHEDULERS as EXP4_SCHEDULERS
from repro.experiments.report import (report_experiment1, report_experiment2,
                                      report_experiment3, report_experiment4)

RESULTS = Path(__file__).resolve().parent.parent / "results"

EXP1_RATES = (0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1)
SWEEP_RATES = (0.3, 0.5, 0.7, 0.9, 1.1)


def progress(message: str) -> None:
    print(f"  [{time.strftime('%H:%M:%S')}] {message}", file=sys.stderr,
          flush=True)


def save(name: str, text: str) -> None:
    RESULTS.mkdir(exist_ok=True)
    path = RESULTS / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"wrote {path}", file=sys.stderr, flush=True)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--clocks", type=float, default=2_000_000)
    parser.add_argument("--only", type=str, default="1,2,3,4")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per experiment grid "
                             "(results identical for every value)")
    args = parser.parse_args()
    wanted = {token.strip() for token in args.only.split(",")}

    started = time.time()
    if "1" in wanted:
        progress("experiment 1 ...")
        config = ExperimentConfig(
            sim_clocks=args.clocks, arrival_rates=EXP1_RATES,
            schedulers=("ASL", "C2PL", "CHAIN", "K2", "NODC"),
            progress=progress, max_workers=args.jobs)
        save("exp1", report_experiment1(run_experiment1(config)))
    if "2" in wanted:
        progress("experiment 2 ...")
        config = ExperimentConfig(
            sim_clocks=args.clocks, arrival_rates=SWEEP_RATES,
            schedulers=("ASL", "C2PL", "CHAIN", "K2"), progress=progress,
            max_workers=args.jobs)
        save("exp2", report_experiment2(run_experiment2(config)))
    if "3" in wanted:
        progress("experiment 3 ...")
        config = ExperimentConfig(
            sim_clocks=args.clocks, arrival_rates=SWEEP_RATES,
            schedulers=("ASL", "C2PL", "CHAIN", "K2"), progress=progress,
            max_workers=args.jobs)
        save("exp3", report_experiment3(run_experiment3(config)))
    if "4" in wanted:
        progress("experiment 4 ...")
        config = ExperimentConfig(
            sim_clocks=args.clocks, arrival_rates=SWEEP_RATES,
            schedulers=EXP4_SCHEDULERS, progress=progress,
            max_workers=args.jobs)
        save("exp4", report_experiment4(run_experiment4(config)))
    progress(f"all done in {(time.time() - started) / 60:.1f} minutes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
