"""Microbenchmarks of the WTPG data structure itself.

These bound the control-node costs from below: every scheduler decision
is some composition of these operations.  Sizes bracket what the
simulations actually see (tens of active transactions; C2PL overload
reaches a few hundred).
"""

import pytest

from repro.core import WTPG
from repro.core.estimator import estimate_contention


def build_graph(n, conflict_stride=3, resolve_every=2):
    """n transactions; pair (i, i+stride) conflicts; some resolved."""
    g = WTPG()
    for tid in range(1, n + 1):
        g.add_transaction(tid, float(tid % 7) + 1)
    for tid in range(1, n + 1):
        other = tid + conflict_stride
        if other <= n:
            edge = g.ensure_pair(tid, other)
            edge.raise_weight_to(other, float(tid % 5))
            edge.raise_weight_to(tid, float(other % 5))
            if tid % resolve_every == 0:
                g.resolve(tid, other)
    return g


@pytest.mark.parametrize("n", [16, 64, 256])
def test_bench_critical_path(benchmark, n):
    g = build_graph(n)
    result = benchmark(g.critical_path_length)
    assert result >= 0


@pytest.mark.parametrize("n", [16, 64, 256])
def test_bench_copy(benchmark, n):
    g = build_graph(n)
    clone = benchmark(g.copy)
    assert len(clone) == n


@pytest.mark.parametrize("n", [16, 64, 256])
def test_bench_cycle_probe(benchmark, n):
    g = build_graph(n)
    edge = g.unresolved_pairs()[0]
    result = benchmark(lambda: g.creates_cycle_from(edge.a, [edge.b]))
    assert result in (True, False)


@pytest.mark.parametrize("n", [16, 64])
def test_bench_estimator(benchmark, n):
    g = build_graph(n)
    edge = g.unresolved_pairs()[0]
    value = benchmark(
        lambda: estimate_contention(g, edge.a, [(edge.a, edge.b)]))
    assert value >= 0


@pytest.mark.parametrize("n", [64, 256])
def test_bench_add_remove_transaction(benchmark, n):
    def churn():
        g = build_graph(n)
        g.add_transaction(n + 1, 3.0)
        edge = g.ensure_pair(n + 1, 1)
        edge.raise_weight_to(1, 2.0)
        g.remove_transaction(n + 1)
        return g

    g = benchmark(churn)
    assert len(g) == n
