"""Shared helpers for the benchmark suite.

Every benchmark regenerates (a scaled-down version of) one paper artifact
and prints the series it measured, so ``pytest benchmarks/
--benchmark-only -s`` doubles as a quick reproduction report.  The full-
fidelity numbers live in EXPERIMENTS.md (generated with the paper's
2,000,000-clock horizon via the CLI).
"""

from __future__ import annotations

import pytest

from repro.config import SimulationParameters
from repro.machine import run_simulation

# Scaled horizon: ~8x shorter than the paper; fast but still contended.
BENCH_CLOCKS = 250_000.0
BENCH_SEED = 1


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", action="store", type=int, default=1,
        help="worker processes for the sweep benchmarks "
             "(bench_experiment1, bench_faults); results are identical "
             "for every value — only wall-clock changes")


@pytest.fixture
def jobs(request):
    """The --jobs option: pool width for sweep-shaped benchmarks."""
    return request.config.getoption("--jobs")


def run_point(scheduler: str, rate: float, workload, catalog,
              num_partitions: int, fault_plan=None, **overrides):
    """One simulation point with the benchmark defaults."""
    params = SimulationParameters(
        scheduler=scheduler, arrival_rate_tps=rate,
        sim_clocks=overrides.pop("sim_clocks", BENCH_CLOCKS),
        seed=overrides.pop("seed", BENCH_SEED),
        num_partitions=num_partitions, **overrides)
    return run_simulation(params, workload, catalog=catalog,
                          fault_plan=fault_plan)


def print_series(title: str, x_label: str, xs, series) -> None:
    from repro.analysis import format_series_table
    print(f"\n{title}")
    print(format_series_table(x_label, xs, series))
