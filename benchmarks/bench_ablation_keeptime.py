"""Ablation benchmark: the control-saving period (DESIGN.md decision 2).

Section 3.4 reuses W / E(q) for up to ``keeptime`` (5000 ms) instead of
recomputing on every request.  keeptime = 0 recomputes always (maximum
control CPU, freshest decisions); large keeptime risks stale decisions.
This sweep measures the trade on both WTPG schedulers.
"""

import pytest

from conftest import print_series, run_point
from repro.workloads import pattern1, pattern1_catalog

KEEPTIMES = (0.0, 5000.0, 60_000.0)
RATE = 0.6

_results = {}


@pytest.mark.parametrize("scheduler", ("CHAIN", "K2"))
def test_keeptime_sensitivity(benchmark, scheduler):
    def sweep():
        out = []
        for keeptime in KEEPTIMES:
            result = run_point(scheduler, RATE, pattern1(16),
                               pattern1_catalog(), num_partitions=16,
                               keep_time=keeptime)
            out.append(result.metrics)
        return out

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _results[scheduler] = points
    assert all(p.commits > 0 for p in points)
    if len(_results) == 2:
        print_series(
            f"Keeptime ablation (lambda={RATE}): TPS", "keeptime_ms",
            list(KEEPTIMES),
            {name: [p.throughput_tps for p in pts]
             for name, pts in _results.items()})
        print_series(
            "Keeptime ablation: control computations "
            "(W optimisations / E calls)", "keeptime_ms",
            list(KEEPTIMES),
            {name: [p.scheduler_stats.get("optimizations", 0)
                    + p.scheduler_stats.get("estimator_calls", 0)
                    for p in pts]
             for name, pts in _results.items()})
