"""Overlay vs reference E(q) microbenchmarks.

The K-WTPG scheduler evaluates E(q) for the requester and every rival in
C(q) on each non-blocked lock request, so estimator latency is the
dominant control cost at high conflict rates.  These benchmarks compare
the copy-free overlay evaluator against the legacy deep-copy reference
path on the same graphs and candidate sets; the acceptance bar for the
rewrite is >= 5x at n = 256 (see BENCH_wtpg.json at the repo root).
"""

import pytest

from bench_wtpg import build_graph

from repro.core.estimator import ContentionBatch, estimate_contention

SIZES = [16, 64, 256]


def candidate(g):
    """A representative request: grant the first unresolved pair's a-side,
    implying precedence over its three lowest-numbered unresolved rivals."""
    edges = g.unresolved_pairs()
    tid = edges[0].a
    implied = []
    for edge in edges:
        other = edge.b if edge.a == tid else edge.a if edge.b == tid else None
        if other is not None:
            implied.append((tid, other))
    return tid, implied[:3] or [(edges[0].a, edges[0].b)]


@pytest.mark.parametrize("n", SIZES)
def test_bench_estimator_overlay(benchmark, n):
    g = build_graph(n)
    tid, implied = candidate(g)
    value = benchmark(lambda: estimate_contention(g, tid, implied))
    assert value >= 0


@pytest.mark.parametrize("n", SIZES)
def test_bench_estimator_reference(benchmark, n):
    g = build_graph(n)
    tid, implied = candidate(g)
    value = benchmark(
        lambda: estimate_contention(g, tid, implied, reference=True))
    assert value >= 0


@pytest.mark.parametrize("n", SIZES)
def test_bench_estimator_batch_decision(benchmark, n):
    """A whole scheduler decision: one shared batch evaluating the
    requester plus every rival — the pattern `_evaluate_grant` runs."""
    g = build_graph(n)
    tid, implied = candidate(g)
    rivals = [(e.a, [(e.a, e.b)]) for e in g.unresolved_pairs()[:8]]

    def decision():
        batch = ContentionBatch(g)
        values = [batch.estimate(tid, implied)]
        values.extend(batch.estimate(r, imp) for r, imp in rivals)
        return values

    values = benchmark(decision)
    assert all(v >= 0 for v in values)


@pytest.mark.parametrize("n", SIZES)
def test_modes_agree_on_bench_graphs(benchmark, n):
    """Sanity inside the bench suite: both modes agree on these graphs."""
    g = build_graph(n)
    tid, implied = candidate(g)
    overlay = benchmark(lambda: estimate_contention(g, tid, implied))
    assert overlay == estimate_contention(g, tid, implied, reference=True)
