"""Benchmark: regenerate Figure 9 (Experiment 3, scaled).

Pattern3 (longer blocking time) at NumHots = 8.  Expected shape: C2PL's
response time blows up well before the WTPG schedulers'; CHAIN and K2
stay 1.2-1.8x above ASL and C2PL in throughput.
"""

import pytest

from conftest import print_series, run_point
from repro.workloads import pattern3, pattern3_catalog

RATES = (0.4, 0.7, 0.9)
SCHEDULERS = ("ASL", "C2PL", "CHAIN", "K2")

_results = {}


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_figure9_sweep(benchmark, scheduler):
    def sweep():
        points = []
        for rate in RATES:
            result = run_point(scheduler, rate, pattern3(num_hots=8),
                               pattern3_catalog(num_hots=8),
                               num_partitions=16)
            points.append(result.metrics)
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _results[scheduler] = points
    assert all(p.commits > 0 for p in points)
    if len(_results) == len(SCHEDULERS):
        print_series(
            "Figure 9 (scaled): arrival rate vs mean RT (s)", "lambda",
            list(RATES),
            {name: [p.mean_response_time / 1000 for p in pts]
             for name, pts in _results.items()})
        print_series(
            "Figure 9 companion: arrival rate vs throughput (TPS)", "lambda",
            list(RATES),
            {name: [p.throughput_tps for p in pts]
             for name, pts in _results.items()})
