"""Ablation benchmark: the chain optimiser vs exhaustive enumeration.

DESIGN.md decision 3: we replaced the paper's (corrupted-in-scan)
Lcomp/Rcomp dynamic program with an equivalent Pareto-frontier DP.  This
benchmark shows why that's viable: the DP stays polynomial where brute
force explodes, while producing identical optima (asserted here and
proven property-based in the test suite).
"""

import random

import pytest

from repro.core import ChainPair, optimise_chain
from repro.core.chain_opt import brute_force_chain


def random_chain(n, seed):
    rng = random.Random(seed)
    sources = [rng.uniform(0, 10) for _ in range(n)]
    pairs = [ChainPair(down=rng.uniform(0, 5), up=rng.uniform(0, 5))
             for _ in range(n - 1)]
    return sources, pairs


@pytest.mark.parametrize("n", [8, 16, 64, 256])
def test_pareto_dp_scales(benchmark, n):
    sources, pairs = random_chain(n, seed=n)
    length, orientations = benchmark(lambda: optimise_chain(sources, pairs))
    assert length >= max(sources)
    assert len(orientations) == n - 1


@pytest.mark.parametrize("n", [8, 12, 16])
def test_brute_force_reference(benchmark, n):
    """Exponential reference: 2^(n-1) evaluations; compare the columns."""
    sources, pairs = random_chain(n, seed=n)
    expected, _ = benchmark.pedantic(
        lambda: brute_force_chain(sources, pairs), rounds=1, iterations=1)
    got, _ = optimise_chain(sources, pairs)
    assert got == pytest.approx(expected)
