"""Control-plane benchmark: decision throughput and recovery time.

Two series, written to ``BENCH_control.json``:

* **Decision throughput vs CN count** (1/2/4/8).  The workload is
  deliberately *control-bound*: one-object read steps (data nodes are
  never the bottleneck) under arrivals far above single-CN capacity, so
  the per-BAT control costs (admission + startup + lock + commit)
  dominate and throughput is set by control CPU.  Partitions spread
  uniformly, so sharding the control plane (partition p -> CN p mod N)
  divides the decision load; decision throughput must grow
  monotonically from 1 to 4 CNs.  A BAT is cross-shard with the
  second-step probability below, so the sweep also exercises (and
  reports) 2PC rounds.  The sweep runs under NODC: control-CPU scaling
  is a property of the machine's costing, not of any scheduling rule,
  and a scheduler whose decisions are O(active set) would make the
  *simulator* quadratic in the deliberate overload backlog.

* **Recovery time vs log size**.  One long sharded K2 run at stable
  load accumulates a dependency log; the benchmark then replays growing
  prefixes into fresh schedulers and reports the wall-clock replay time
  per prefix — the recovery-time curve is linear in the log because
  replay applies outcomes, it never re-decides.
"""

import json
import time
from pathlib import Path

from conftest import BENCH_SEED, print_series
from repro.config import SimulationParameters
from repro.core.schedulers import make_scheduler
from repro.core.transaction import Step, TransactionSpec
from repro.machine import run_simulation
from repro.machine.cluster import Cluster
from repro.machine.control_log import EDGE

SWEEP_SCHEDULER = "NODC"
CN_COUNTS = (1, 2, 4, 8)
NUM_PARTITIONS = 16
SWEEP_RATE = 400.0      # arrivals per 1000 clocks: ~5x one CN's capacity
SWEEP_CLOCKS = 30_000.0
TWO_STEP_PROB = 0.2     # fraction of BATs that are (usually) cross-shard

RECOVERY_SCHEDULER = "K2"
RECOVERY_RATE = 100.0   # stable under 2 CNs: the log grows, queues don't
LOG_CLOCKS = 80_000.0
LOG_SIZES = (500, 1000, 2000, 4000, 8000)

_results = {}


def control_bound_workload(tid, streams):
    """One-object reads on uniform partitions: no data contention, no
    lock conflicts — throughput is pure control-plane pipeline."""
    first = streams.randint("bench-cn", 0, NUM_PARTITIONS - 1)
    steps = [Step.read(first, 1.0)]
    if streams.uniform("bench-cn", 0.0, 1.0) < TWO_STEP_PROB:
        steps.append(Step.read(
            streams.randint("bench-cn", 0, NUM_PARTITIONS - 1), 1.0))
    return TransactionSpec(tid, steps)


def control_bound_params(scheduler, rate, num_control_nodes, sim_clocks):
    return SimulationParameters(
        scheduler=scheduler, arrival_rate_tps=rate, sim_clocks=sim_clocks,
        seed=BENCH_SEED, num_partitions=NUM_PARTITIONS, obj_time=1.0,
        admission_time=2.0, startup_time=4.0, dd_time=2.0, commit_time=4.0,
        num_control_nodes=num_control_nodes)


def decisions(metrics) -> float:
    """Scheduler decisions made: admissions + grants + commits,
    summed over every shard."""
    stats = metrics.scheduler_stats
    return stats["admissions"] + stats["grants"] + stats["commits"]


def test_decision_throughput_vs_cn_count(benchmark):
    def sweep():
        return [run_simulation(
            control_bound_params(SWEEP_SCHEDULER, SWEEP_RATE, n,
                                 SWEEP_CLOCKS),
            control_bound_workload).metrics
            for n in CN_COUNTS]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, metrics in zip(CN_COUNTS, points):
        _results[("sweep", n)] = metrics
        assert metrics.commits > 0
        if n > 1:
            assert metrics.twopc_rounds > 0  # cross-shard BATs ran 2PC
    # Acceptance: decision throughput grows monotonically 1 -> 4 CNs.
    per_kclock = [decisions(_results[("sweep", n)]) / SWEEP_CLOCKS * 1000.0
                  for n in CN_COUNTS]
    assert per_kclock[0] < per_kclock[1] < per_kclock[2], (
        f"decision throughput not monotone 1->4 CNs: {per_kclock}")
    _maybe_report()


def _safe_cut(records, k):
    """Advance a prefix cut past EDGE records so a GRANT is never split
    from the precedence edges it resolved."""
    while k < len(records) and records[k].kind == EDGE:
        k += 1
    return k


def test_recovery_time_vs_log_size(benchmark):
    params = control_bound_params(RECOVERY_SCHEDULER, RECOVERY_RATE, 2,
                                  LOG_CLOCKS)
    cluster = Cluster(params, control_bound_workload)
    cluster.run()
    assert cluster.control_plane is not None
    shard = cluster.control_plane.shards[0]
    assert len(shard.log) >= LOG_SIZES[-1], (
        f"log too small for the sweep: {len(shard.log)} records")

    def factory():
        return make_scheduler(params.scheduler, **params.scheduler_kwargs())

    def replay_sweep():
        series = []
        for size in LOG_SIZES:
            upto = _safe_cut(shard.log.records, size)
            begin = time.perf_counter()
            _, replayed = shard.log.replay(factory, upto=upto)
            series.append((replayed, time.perf_counter() - begin))
        return series

    series = benchmark.pedantic(replay_sweep, rounds=1, iterations=1)
    for (replayed, seconds), size in zip(series, LOG_SIZES):
        assert replayed >= size
        assert seconds > 0.0
    # More log must take more replay work; the extremes are far enough
    # apart (16x) that wall-clock ordering is stable.
    assert series[-1][1] > series[0][1], f"replay time not growing: {series}"
    _results["recovery"] = series
    _maybe_report()


def _maybe_report():
    if "recovery" not in _results or ("sweep", CN_COUNTS[-1]) not in _results:
        return
    per_kclock = {n: decisions(_results[("sweep", n)]) / SWEEP_CLOCKS * 1000.0
                  for n in CN_COUNTS}
    print_series(
        f"Decision throughput (decisions/1000 clocks) vs CN count "
        f"({SWEEP_SCHEDULER}, control-bound, lambda={SWEEP_RATE})",
        "control nodes", list(CN_COUNTS),
        {"decisions/kclock": [round(per_kclock[n], 1) for n in CN_COUNTS],
         "commits": [_results[("sweep", n)].commits for n in CN_COUNTS]})
    recovery = _results["recovery"]
    print_series(
        "Dependency-log replay wall-clock (ms) vs log size (records)",
        "records", [r for r, _ in recovery],
        {"replay ms": [round(s * 1000.0, 2) for _, s in recovery]})
    payload = {
        "sweep_scheduler": SWEEP_SCHEDULER,
        "recovery_scheduler": RECOVERY_SCHEDULER,
        "arrival_rate_tps": SWEEP_RATE,
        "sim_clocks": SWEEP_CLOCKS, "num_partitions": NUM_PARTITIONS,
        "decision_throughput": [
            {"control_nodes": n,
             "decisions_per_kclock": per_kclock[n],
             "throughput_tps": _results[("sweep", n)].throughput_tps,
             "commits": _results[("sweep", n)].commits,
             "twopc_rounds": _results[("sweep", n)].twopc_rounds,
             "cn_utilizations": _results[("sweep", n)].cn_utilizations}
            for n in CN_COUNTS],
        "recovery": [
            {"records": records, "replay_seconds": seconds}
            for records, seconds in recovery],
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_control.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    print(f"wrote {out}")
