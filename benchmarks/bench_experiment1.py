"""Benchmark: regenerate Figures 6 and 7 (Experiment 1, scaled).

Pattern1 arrival-rate sweep per scheduler, fanned over ``--jobs`` worker
processes via the deterministic sweep executor (results are identical
for every jobs value; only wall-clock changes).  The benchmark time is
the cost of one scheduler's sweep; the printed tables are the figure
rows.  Expected shape: ASL ~ CHAIN ~ K2 well above C2PL in TPS at equal
rates, NODC on top.
"""

import pytest

from conftest import BENCH_CLOCKS, BENCH_SEED, print_series
from repro.experiments.runner import run_points, sweep_specs

RATES = (0.3, 0.6, 0.9)
SCHEDULERS = ("ASL", "C2PL", "CHAIN", "K2", "NODC")

_results = {}


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_figure6_7_sweep(benchmark, scheduler, jobs):
    specs = sweep_specs("pattern1", [scheduler], RATES,
                        sim_clocks=BENCH_CLOCKS, seed=BENCH_SEED)

    def sweep():
        return run_points(specs, processes=jobs)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _results[scheduler] = points
    assert all(p.commits > 0 for p in points)
    if len(_results) == len(SCHEDULERS):
        print_series(
            "Figure 6 (scaled): arrival rate vs mean RT (s)", "lambda",
            list(RATES),
            {name: [p.mean_response_time / 1000 for p in pts]
             for name, pts in _results.items()})
        print_series(
            "Figure 7 (scaled): arrival rate vs throughput (TPS)", "lambda",
            list(RATES),
            {name: [p.throughput_tps for p in pts]
             for name, pts in _results.items()})
