"""Extension benchmark: range partitioning vs full declustering.

The paper's conclusion 4: high data contention limits inter-transaction
parallelism of BATs, so >90 % useful utilization needs intra-transaction
parallelism — i.e. distributing files over all nodes — at the cost of
the message overhead that hurts short-transaction processing.  This
benchmark quantifies the BAT side of that trade on Pattern1.
"""

import pytest

from repro import Catalog, SimulationParameters, run_simulation
from repro.workloads import pattern1

from conftest import BENCH_CLOCKS, BENCH_SEED, print_series

RATE = 0.9
SCHEDULERS = ("K2", "C2PL", "NODC")

_results = {}


def run_placement(scheduler: str, declustered: bool):
    catalog = Catalog.uniform(16, 5.0, 8, declustered=declustered)
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=RATE,
                                  sim_clocks=BENCH_CLOCKS, seed=BENCH_SEED,
                                  num_partitions=16)
    return run_simulation(params, pattern1(), catalog=catalog).metrics


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_placement_comparison(benchmark, scheduler):
    def compare():
        return (run_placement(scheduler, False),
                run_placement(scheduler, True))

    ranged, spread = benchmark.pedantic(compare, rounds=1, iterations=1)
    _results[scheduler] = (ranged, spread)
    assert spread.throughput_tps >= ranged.throughput_tps - 0.05
    if len(_results) == len(SCHEDULERS):
        print_series(
            f"Placement ablation (Pattern1, lambda={RATE}): TPS",
            "placement", ["range-partitioned", "declustered"],
            {name: [pair[0].throughput_tps, pair[1].throughput_tps]
             for name, pair in _results.items()})
        print_series(
            "Placement ablation: DN utilization",
            "placement", ["range-partitioned", "declustered"],
            {name: [pair[0].dn_utilization, pair[1].dn_utilization]
             for name, pair in _results.items()})
