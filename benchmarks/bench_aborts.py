"""Extension benchmark: the cost of aborting BATs (2PL vs the paper).

The paper's premise: "a bulk-operation is too expensive to abort", so
its schedulers only delay.  Classic blocking 2PL restarts deadlock
victims instead — this benchmark measures how much bulk work those
restarts throw away on Pattern1 (whose read-then-upgrade shape is
deadlock bait) and what it does to throughput.
"""

import pytest

from conftest import print_series, run_point
from repro.workloads import pattern1, pattern1_catalog

RATE = 0.6
SCHEDULERS = ("2PL", "WAIT-DIE", "C2PL", "K2")

_results = {}


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_abort_cost(benchmark, scheduler):
    def one():
        return run_point(scheduler, RATE, pattern1(16), pattern1_catalog(),
                         num_partitions=16)

    result = benchmark.pedantic(one, rounds=1, iterations=1)
    _results[scheduler] = result.metrics
    assert result.metrics.commits > 0
    if len(_results) == len(SCHEDULERS):
        metrics = _results
        print_series(
            f"Abort-cost comparison (Pattern1, lambda={RATE})", "metric",
            ["TPS", "mean RT (s)", "aborts", "wasted objects"],
            {name: [m.throughput_tps, m.mean_response_time / 1000,
                    float(m.aborts), m.wasted_objects]
             for name, m in metrics.items()})
        # The paper's no-abort schedulers waste nothing.
        assert metrics["C2PL"].wasted_objects == 0
        assert metrics["K2"].wasted_objects == 0
