"""Ablation benchmark: K-conflict counting granularity.

The paper's Section 3.3 wording — "each lock-declaration may conflict
with K lock-declarations at most" — is ambiguous on Pattern1, where a
rival's read-then-upgrade pair contributes *two* conflicting
declarations but one transaction.  This ablation shows the consequence
(it decides the Experiment 4 hybrid ordering, see EXPERIMENTS.md):
transaction-counting reproduces the paper's K2-C2PL ≈ C2PL reading,
declaration-counting makes K2-C2PL ASL-like and stronger.
"""

import pytest

from repro import SimulationParameters, run_simulation
from repro.core.schedulers import KConflictC2PL, KWTPGScheduler
from repro.workloads import pattern1, pattern1_catalog

from conftest import BENCH_CLOCKS, BENCH_SEED, print_series

RATE = 0.7
MODES = ("transactions", "declarations")

_results = {}


def run_mode(factory, mode):
    params = SimulationParameters(scheduler="C2PL", arrival_rate_tps=RATE,
                                  sim_clocks=BENCH_CLOCKS, seed=BENCH_SEED,
                                  num_partitions=16)
    return run_simulation(params, pattern1(), catalog=pattern1_catalog(),
                          scheduler=factory(mode)).metrics


@pytest.mark.parametrize("mode", MODES)
def test_k_count_mode(benchmark, mode):
    def both():
        hybrid = run_mode(
            lambda m: KConflictC2PL(k=2, k_count_mode=m), mode)
        full = run_mode(
            lambda m: KWTPGScheduler(k=2, k_count_mode=m), mode)
        return hybrid, full

    hybrid, full = benchmark.pedantic(both, rounds=1, iterations=1)
    _results[mode] = (hybrid, full)
    assert hybrid.commits > 0 and full.commits > 0
    if len(_results) == len(MODES):
        print_series(
            f"K-count ablation (Pattern1, lambda={RATE}): TPS",
            "scheduler", ["K2-C2PL", "K2"],
            {mode: [pair[0].throughput_tps, pair[1].throughput_tps]
             for mode, pair in _results.items()})
        print_series(
            "K-count ablation: admission rejects",
            "scheduler", ["K2-C2PL", "K2"],
            {mode: [pair[0].scheduler_stats.get("admission_rejects", 0),
                    pair[1].scheduler_stats.get("admission_rejects", 0)]
             for mode, pair in _results.items()})
