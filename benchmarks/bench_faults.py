"""Fault-injection benchmark: throughput degradation vs abort rate.

Sweeps the fault plan's per-admission assassination probability for the
paper's two WTPG schedulers and the classic 2PL baseline, on Pattern1.
The interesting contrast: the WTPG schedulers lose throughput *linearly*
in the injected rate (aborts waste already-done bulk work but the graph
heals via node excision), while 2PL stacks injected aborts on top of its
own deadlock restarts.

Each scheduler's fault-rate sweep runs through the deterministic point
executor and fans over ``--jobs`` worker processes (identical results
for every jobs value).  The final parametrization writes
``BENCH_faults.json`` at the repo root with the full curve, so CI
archives the degradation profile.
"""

import json
from pathlib import Path

import pytest

from conftest import BENCH_CLOCKS, BENCH_SEED, print_series
from repro.experiments.runner import PointSpec, run_points
from repro.faults import FaultPlan

RATE = 0.6
FAULT_RATES = (0.0, 0.1, 0.25, 0.5)
SCHEDULERS = ("CHAIN", "K2", "2PL")

_results = {}


def _spec(scheduler, fault_rate):
    plan_json = (FaultPlan(abort_rate=fault_rate).to_json()
                 if fault_rate > 0.0 else None)
    return PointSpec("pattern1", scheduler, RATE, sim_clocks=BENCH_CLOCKS,
                     seed=BENCH_SEED, fault_plan_json=plan_json)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_throughput_vs_fault_rate(benchmark, scheduler, jobs):
    specs = [_spec(scheduler, rate) for rate in FAULT_RATES]

    def sweep():
        return run_points(specs, processes=jobs)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for fault_rate, metrics in zip(FAULT_RATES, points):
        _results[(scheduler, fault_rate)] = metrics
        assert metrics.commits > 0
        if fault_rate > 0.0:
            assert metrics.fault_aborts > 0
            assert metrics.restarts > 0
        else:
            assert metrics.fault_aborts == 0

    if len(_results) == len(SCHEDULERS) * len(FAULT_RATES):
        _report()


def _report():
    print_series(
        f"Throughput (TPS) vs injected abort rate (Pattern1, lambda={RATE})",
        "abort rate", list(FAULT_RATES),
        {name: [_results[(name, rate)].throughput_tps
                for rate in FAULT_RATES]
         for name in SCHEDULERS})
    payload = {
        "workload": "pattern1", "arrival_rate_tps": RATE,
        "fault_rates": list(FAULT_RATES),
        "series": {
            name: [
                {"fault_rate": rate,
                 "throughput_tps": _results[(name, rate)].throughput_tps,
                 "commits": _results[(name, rate)].commits,
                 "aborts": _results[(name, rate)].aborts,
                 "fault_aborts": _results[(name, rate)].fault_aborts,
                 "restarts": _results[(name, rate)].restarts,
                 "wasted_objects": _results[(name, rate)].wasted_objects}
                for rate in FAULT_RATES]
            for name in SCHEDULERS},
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_faults.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    print(f"wrote {out}")
    # Injected faults must actually cost throughput.
    for name in SCHEDULERS:
        clean = _results[(name, 0.0)].throughput_tps
        worst = _results[(name, FAULT_RATES[-1])].throughput_tps
        assert worst <= clean, f"{name}: faults improved throughput?"
