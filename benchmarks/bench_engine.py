"""Engine speed benchmark: batched vs reference node mode at scale.

The scale workload is ``bulk_scan`` on 64 nodes — full-partition scans
of 512 objects at light load, the paper's overnight bulk-batch window —
where the batched data-node loop coalesces whole scans into single
timeouts.  Two claims are checked:

* **equivalence** — both modes must produce the *identical* metrics
  dict (the batched loop is an optimisation, not an approximation);
* **speed** — end-to-end sim-throughput of the batched mode must beat
  the reference per-quantum loop (>= 5x on the headline 10^5-txn rows).

The pytest entries are a cheap smoke (a few hundred transactions) so
the suite stays fast; the committed ``BENCH_engine.json`` at the repo
root comes from the full 10^4-10^6 grid, regenerated with::

    PYTHONPATH=src python benchmarks/bench_engine.py

(~15 minutes, dominated by the 10^5/10^6 reference runs).
"""

import json
import time
from pathlib import Path

import pytest

from repro.config import SimulationParameters
from repro.machine import run_simulation
from repro.workloads import bulk_scan, bulk_scan_catalog

NUM_NODES = 64
#: Light load: ~0.03% per-node utilization, so scans run alone between
#: scheduler events and batches approach the full 512-quantum scan.
#: (At high load every concurrent scan's quantum boundary caps every
#: other node's batching horizon and the win collapses — see
#: docs/engine.md.)
ARRIVAL_TPS = 0.002
OBJ_TIME = 20.0
SEED = 404

SMOKE_TXNS = 200

#: The committed grid: (scheduler, expected txns, modes to run).  The
#: 10^6 row runs batched-only — the reference loop would take ~45
#: minutes to simulate half a billion quanta one heap event at a time,
#: which is precisely the point of the batched mode.
FULL_GRID = (
    ("CHAIN", 10_000, ("batched", "reference")),
    ("K2", 10_000, ("batched", "reference")),
    ("C2PL", 10_000, ("batched", "reference")),
    ("CHAIN", 100_000, ("batched", "reference")),
    ("K2", 100_000, ("batched", "reference")),
    ("K2", 1_000_000, ("batched",)),
)

#: Rows whose speedup is the acceptance headline.
HEADLINE = (("CHAIN", 100_000), ("K2", 100_000))
HEADLINE_SPEEDUP = 5.0


def scale_params(scheduler, txns, mode):
    return SimulationParameters(
        scheduler=scheduler, arrival_rate_tps=ARRIVAL_TPS,
        sim_clocks=txns * 1000.0 / ARRIVAL_TPS, seed=SEED,
        num_nodes=NUM_NODES, num_partitions=NUM_NODES, obj_time=OBJ_TIME,
        node_mode=mode)


def run_scale_point(scheduler, txns, mode):
    """One timed scale run; returns (wall seconds, metrics)."""
    params = scale_params(scheduler, txns, mode)
    workload = bulk_scan(num_partitions=NUM_NODES)
    catalog = bulk_scan_catalog(num_partitions=NUM_NODES,
                                num_nodes=NUM_NODES)
    start = time.perf_counter()
    result = run_simulation(params, workload, catalog=catalog)
    return time.perf_counter() - start, result.metrics


# -- pytest smoke --------------------------------------------------------------

_smoke = {}


@pytest.mark.parametrize("mode", ("batched", "reference"))
def test_smoke_modes_are_equivalent_and_batched_wins(benchmark, mode):
    def one():
        return run_scale_point("K2", SMOKE_TXNS, mode)

    wall, metrics = benchmark.pedantic(one, rounds=1, iterations=1)
    assert metrics.commits > 0
    _smoke[mode] = (wall, metrics)
    if len(_smoke) == 2:
        b_wall, b_metrics = _smoke["batched"]
        r_wall, r_metrics = _smoke["reference"]
        # The optimisation must be invisible in every simulated number.
        assert b_metrics.as_dict() == r_metrics.as_dict()
        speedup = r_wall / b_wall
        print(f"\nsmoke speedup (K2, {SMOKE_TXNS} txns): {speedup:.1f}x")
        # Loose floor at smoke scale; the committed grid asserts >= 5x.
        assert speedup > 1.5


# -- the committed grid --------------------------------------------------------


def run_full_grid(grid=FULL_GRID):
    """Run the scale grid and return the BENCH_engine.json payload."""
    rows = []
    for scheduler, txns, modes in grid:
        by_mode = {}
        for mode in modes:
            print(f"  running {scheduler} txns={txns} mode={mode} ...",
                  flush=True)
            wall, metrics = run_scale_point(scheduler, txns, mode)
            quanta = metrics.weight_messages
            by_mode[mode] = {
                "wall_seconds": round(wall, 3),
                "commits": metrics.commits,
                "sim_quanta": quanta,
                "quanta_per_second": round(quanta / wall),
                "txns_per_second": round(metrics.commits / wall, 1),
                "metrics_digest": json.dumps(metrics.as_dict(),
                                             sort_keys=True),
            }
        row = {"scheduler": scheduler, "txns": txns,
               "modes": {m: {k: v for k, v in d.items()
                             if k != "metrics_digest"}
                         for m, d in by_mode.items()}}
        if len(by_mode) == 2:
            assert (by_mode["batched"]["metrics_digest"]
                    == by_mode["reference"]["metrics_digest"]), (
                f"{scheduler}/{txns}: modes diverged")
            row["speedup"] = round(
                by_mode["reference"]["wall_seconds"]
                / by_mode["batched"]["wall_seconds"], 2)
            if (scheduler, txns) in HEADLINE:
                assert row["speedup"] >= HEADLINE_SPEEDUP, (
                    f"headline {scheduler}/{txns}: "
                    f"{row['speedup']}x < {HEADLINE_SPEEDUP}x")
        rows.append(row)
        print(f"    -> {row.get('speedup', 'n/a')}x", flush=True)
    return {
        "workload": "bulk_scan r(F:512) -> w(F:1)",
        "num_nodes": NUM_NODES, "arrival_rate_tps": ARRIVAL_TPS,
        "obj_time": OBJ_TIME, "seed": SEED,
        "headline_min_speedup": HEADLINE_SPEEDUP,
        "rows": rows,
    }


def write_full_grid():
    payload = run_full_grid()
    out = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    print(f"wrote {out}")
    return payload


if __name__ == "__main__":
    write_full_grid()
