"""Benchmark: regenerate Figure 10 (Experiment 4, scaled).

Pattern1 with erroneous declared costs (sigma = 0 and 1) for the WTPG
schedulers and their weight-free lower bounds.  Expected shape: CHAIN
nearly flat, K2 degrading more, both above plain C2PL; CHAIN-C2PL well
above K2-C2PL.
"""

import pytest

from conftest import print_series, run_point
from repro.workloads import pattern1, pattern1_catalog

SIGMAS = (0.0, 1.0)
RATE = 0.6
SCHEDULERS = ("CHAIN", "K2", "CHAIN-C2PL", "K2-C2PL", "C2PL")
WEIGHT_FREE = {"CHAIN-C2PL", "K2-C2PL", "C2PL"}

_results = {}


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_figure10_error_sweep(benchmark, scheduler):
    def sweep():
        out = []
        for sigma in SIGMAS:
            if sigma != 0.0 and scheduler in WEIGHT_FREE:
                out.append(out[0])  # weight-free: sigma-invariant
                continue
            result = run_point(scheduler, RATE,
                               pattern1(16, error_sigma=sigma),
                               pattern1_catalog(), num_partitions=16)
            out.append(result.metrics.throughput_tps)
        return out

    tps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _results[scheduler] = tps
    assert all(t > 0 for t in tps)
    if len(_results) == len(SCHEDULERS):
        print_series(
            f"Figure 10 (scaled, lambda={RATE}): sigma vs throughput (TPS)",
            "sigma", list(SIGMAS), _results)
