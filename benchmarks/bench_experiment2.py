"""Benchmark: regenerate Figure 8 (Experiment 2, scaled).

Pattern2 with hot sets of 4 and 16 partitions at a heavy arrival rate.
Expected shape: K2 best (especially at NumHots=4), ASL worst, CHAIN
recovering as the hot set grows.
"""

import pytest

from conftest import print_series, run_point
from repro.workloads import pattern2, pattern2_catalog

NUM_HOTS = (4, 16)
RATE = 0.9
SCHEDULERS = ("ASL", "C2PL", "CHAIN", "K2")

_results = {}


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_figure8_hot_sets(benchmark, scheduler):
    def sweep():
        out = []
        for num_hots in NUM_HOTS:
            result = run_point(scheduler, RATE, pattern2(num_hots=num_hots),
                               pattern2_catalog(num_hots=num_hots),
                               num_partitions=8 + num_hots)
            out.append(result.metrics.throughput_tps)
        return out

    tps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _results[scheduler] = tps
    assert all(t > 0 for t in tps)
    if len(_results) == len(SCHEDULERS):
        print_series(
            f"Figure 8 (scaled, lambda={RATE}): NumHots vs throughput (TPS)",
            "NumHots", list(NUM_HOTS), _results)
