"""Ablation benchmark: the re-submission delay (DESIGN.md decision 1).

The paper resubmits delayed/aborted requests "after a fixed delay"
without stating the value; our default is 500 ms.  This sweep shows the
sensitivity: shorter delays react faster but burn control-node CPU on
retries, longer delays waste lock-free time.
"""

import pytest

from conftest import print_series, run_point
from repro.workloads import pattern1, pattern1_catalog

DELAYS = (100.0, 500.0, 2000.0)
RATE = 0.6

_results = {}


@pytest.mark.parametrize("scheduler", ("C2PL", "K2"))
def test_retry_delay_sensitivity(benchmark, scheduler):
    def sweep():
        out = []
        for delay in DELAYS:
            result = run_point(scheduler, RATE, pattern1(16),
                               pattern1_catalog(), num_partitions=16,
                               retry_delay=delay)
            out.append(result.metrics)
        return out

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _results[scheduler] = points
    assert all(p.commits > 0 for p in points)
    if len(_results) == 2:
        print_series(
            f"Retry-delay ablation (lambda={RATE}): TPS", "delay_ms",
            list(DELAYS),
            {name: [p.throughput_tps for p in pts]
             for name, pts in _results.items()})
        print_series(
            "Retry-delay ablation: CN utilization", "delay_ms",
            list(DELAYS),
            {name: [p.cn_utilization for p in pts]
             for name, pts in _results.items()})
