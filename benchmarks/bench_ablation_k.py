"""Ablation benchmark: the K of the K-conflict constraint.

The paper evaluates K = 2 only.  K trades admission concurrency (higher
K admits more conflicting transactions) against per-request estimation
cost (|C(q)| <= K estimator calls per decision) and contention.  This
sweep shows why K = 2 is a sweet spot on the hot-set workload.
"""

import pytest

from conftest import print_series, run_point
from repro.workloads import pattern2, pattern2_catalog

KS = (0, 1, 2, 4, 8)
RATE = 0.9
NUM_HOTS = 8

_results = {}


@pytest.mark.parametrize("k", KS)
def test_k_conflict_sensitivity(benchmark, k):
    def one():
        return run_point("KWTPG", RATE, pattern2(num_hots=NUM_HOTS),
                         pattern2_catalog(num_hots=NUM_HOTS),
                         num_partitions=8 + NUM_HOTS, k_conflicts=k)

    result = benchmark.pedantic(one, rounds=1, iterations=1)
    _results[k] = result.metrics
    assert result.metrics.commits > 0
    if len(_results) == len(KS):
        print_series(
            f"K-conflict ablation (Pattern2, NumHots={NUM_HOTS}, "
            f"lambda={RATE})", "K", list(KS),
            {"TPS": [_results[k].throughput_tps for k in KS],
             "mean RT (s)": [_results[k].mean_response_time / 1000
                             for k in KS],
             "CN util": [_results[k].cn_utilization for k in KS]})
