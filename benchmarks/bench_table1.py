"""Benchmark: Table 1's control operations, microbenchmarked.

The paper priced each concurrency-control operation by instruction count
on the control node (ddtime, chaintime, kwtpgtime).  These benchmarks
measure our implementations of the same operations on a realistic
mid-experiment WTPG, so the Table 1 cost parameters can be sanity-checked
against real work ratios (chaintime > kwtpgtime > ddtime).
"""

import pytest

from repro.core import (ChainPair, LockTable, Step, TransactionSpec, WTPG,
                        estimate_contention, optimise_chain)
from repro.core.builder import add_transaction, implied_resolutions
from repro.core.transaction import LockMode


def build_contended_state(num_txns=12, num_partitions=8):
    """A mid-experiment lock table + WTPG with real conflicts."""
    table, wtpg = LockTable(), WTPG()
    for tid in range(1, num_txns + 1):
        p1 = tid % num_partitions
        p2 = (tid * 3 + 1) % num_partitions
        spec = TransactionSpec(tid, [Step.read(p1, 2), Step.write(p2, 1),
                                     Step.write(p1, 1)])
        table.register(spec)
        add_transaction(wtpg, table, spec)
    return table, wtpg


def test_ddtime_deadlock_probe(benchmark):
    """C2PL's per-request test: implied resolutions + cycle probe."""
    table, wtpg = build_contended_state()

    def probe():
        implied = implied_resolutions(table, wtpg, 1, 1, LockMode.EXCLUSIVE)
        return wtpg.creates_cycle_from(1, [succ for _, succ in implied])

    benchmark(probe)


def test_kwtpgtime_estimator(benchmark):
    """K-WTPG's E(q): graph copy + closure + critical path."""
    table, wtpg = build_contended_state()
    implied = implied_resolutions(table, wtpg, 1, 1, LockMode.EXCLUSIVE)
    result = benchmark(lambda: estimate_contention(wtpg, 1, implied))
    assert result >= 0


def test_chaintime_optimiser(benchmark):
    """CHAIN's W: the O(N^2) chain optimisation on a 12-node chain."""
    sources = [float(3 + (i % 5)) for i in range(12)]
    pairs = [ChainPair(down=float(1 + i % 3), up=float(2 - i % 2))
             for i in range(11)]
    length, orientations = benchmark(lambda: optimise_chain(sources, pairs))
    assert length >= max(sources)


def test_wtpg_critical_path(benchmark):
    """The longest-path pass shared by both WTPG schedulers."""
    _, wtpg = build_contended_state()
    for edge in list(wtpg.unresolved_pairs()):
        wtpg.resolve(edge.a, edge.b)
    if wtpg.has_precedence_cycle():
        pytest.skip("random state produced a cycle")
    benchmark(wtpg.critical_path_length)


def test_admission_wiring(benchmark):
    """Admission cost: register + conflict discovery + WTPG insertion."""
    def admit_one():
        table, wtpg = build_contended_state(num_txns=10)
        spec = TransactionSpec(99, [Step.write(0, 2), Step.read(3, 1)])
        table.register(spec)
        add_transaction(wtpg, table, spec)

    benchmark(admit_one)
