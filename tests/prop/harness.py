"""The invariant-checking wrapper and the single-case driver."""

from typing import List, Optional, Tuple

from repro.core.invariants import check_consistency
from repro.core.schedulers import make_scheduler
from repro.faults import FaultPlan
from repro.machine.cluster import Cluster, SimulationResult
from repro.machine.trace import EventType, Tracer, validate_trace


class InvariantCheckingScheduler:
    """Delegating proxy that re-checks invariant 7 after *every* call.

    ``cache_violations()`` must be empty not just at the end of a run
    but after each scheduler transition — a stale cached weight that a
    later event happens to repair would otherwise go unnoticed.
    """

    CHECKED = ("admit", "request_lock", "commit", "object_processed",
               "object_processed_batch", "abort_transaction")

    def __init__(self, inner) -> None:
        self._inner = inner
        self.checks = 0

    def __getattr__(self, name):
        value = getattr(self._inner, name)
        if name in self.CHECKED and callable(value):
            def checked(*args, **kwargs):
                result = value(*args, **kwargs)
                self._assert_clean(name)
                return result
            return checked
        return value

    def _assert_clean(self, after: str) -> None:
        self.checks += 1
        wtpg = getattr(self._inner, "wtpg", None)
        if wtpg is None:
            return
        violations = wtpg.cache_violations()
        assert violations == [], (
            f"cache violations after {after}: {violations}")


def run_case(params, workload, fault_plan: Optional[FaultPlan],
             ) -> Tuple[SimulationResult, InvariantCheckingScheduler]:
    inner = make_scheduler(params.scheduler, **params.scheduler_kwargs())
    scheduler = InvariantCheckingScheduler(inner)
    cluster = Cluster(params, workload, scheduler=scheduler,
                      record_history=True, tracer=Tracer(),
                      fault_plan=fault_plan)
    return cluster.run(), scheduler


def assert_invariants(result: SimulationResult, name: str) -> None:
    """Every post-run property the harness demands of a run."""
    # 1. Committed history is conflict-serializable, locks exclusive.
    result.history.check_lock_exclusion()
    result.history.check_serializable()
    # 2. Trace lifecycle well-formedness (per execution attempt).
    validate_trace(result.tracer)
    # 3. Final WTPG is acyclic and consistent with the lock table.
    inner = result.scheduler._inner
    wtpg = getattr(inner, "wtpg", None)
    if wtpg is not None:
        assert not wtpg.has_precedence_cycle(), f"{name}: cyclic final WTPG"
        assert wtpg.cache_violations() == []
        check_consistency(inner.table, wtpg)
    # 4. No transaction both committed and aborted: commits are final
    #    and unique (an abort *before* a commit is a legal restart).
    _assert_commit_finality(result.tracer, name)


def _assert_commit_finality(tracer: Tracer, name: str) -> None:
    committed_at: dict = {}
    for index, event in enumerate(tracer.events):
        if event.tid < 0:
            continue
        if event.kind is EventType.COMMITTED:
            assert event.tid not in committed_at, (
                f"{name}: T{event.tid} committed twice")
            committed_at[event.tid] = index
        elif event.tid in committed_at:
            raise AssertionError(
                f"{name}: T{event.tid} saw {event.kind.value} after commit")


def lifecycle_counts(tracer: Tracer) -> List[Tuple[int, int, int]]:
    """(tid, commits, aborts) per transaction — for meta-assertions."""
    out = []
    for tid in tracer.transactions():
        if tid < 0:
            continue
        events = tracer.timeline(tid)
        out.append((tid,
                    sum(1 for e in events
                        if e.kind is EventType.COMMITTED),
                    sum(1 for e in events
                        if e.kind is EventType.ABORTED)))
    return out
