"""The invariant-checking wrapper and the case drivers (serial/parallel).

Parallel mode
-------------
``REPRO_PROP_JOBS=N`` (or an explicit ``jobs=`` argument to
:func:`check_cases`) fans property cases over N worker processes.  Each
case is a pure function of the master seed and its name — exactly the
property the serial harness already relies on for replay — so verdicts
are identical for every jobs value and come back in input order; the
equivalence is itself regression-tested in
``tests/prop/test_parallel_harness.py``.  The default (unset, or 1)
keeps the harness fully in-process.
"""

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.invariants import check_consistency
from repro.core.schedulers import make_scheduler
from repro.faults import FaultPlan
from repro.machine.cluster import Cluster, SimulationResult
from repro.machine.trace import EventType, Tracer, validate_trace


def prop_jobs() -> int:
    """Worker count for the property harness (REPRO_PROP_JOBS, min 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_PROP_JOBS", "1")))
    except ValueError:
        return 1


class InvariantCheckingScheduler:
    """Delegating proxy that re-checks invariant 7 after *every* call.

    ``cache_violations()`` must be empty not just at the end of a run
    but after each scheduler transition — a stale cached weight that a
    later event happens to repair would otherwise go unnoticed.
    """

    CHECKED = ("admit", "request_lock", "commit", "object_processed",
               "object_processed_batch", "abort_transaction")

    def __init__(self, inner) -> None:
        self._inner = inner
        self.checks = 0

    def __getattr__(self, name):
        value = getattr(self._inner, name)
        if name in self.CHECKED and callable(value):
            def checked(*args, **kwargs):
                result = value(*args, **kwargs)
                self._assert_clean(name)
                return result
            return checked
        return value

    def _assert_clean(self, after: str) -> None:
        self.checks += 1
        wtpg = getattr(self._inner, "wtpg", None)
        if wtpg is None:
            return
        violations = wtpg.cache_violations()
        assert violations == [], (
            f"cache violations after {after}: {violations}")


class SchedulerProxies:
    """Every checking proxy one case created, in creation order.

    A single-CN run creates exactly one; a sharded run creates one per
    control shard plus one per log replay (recovery hands the shard a
    fresh scheduler, which must be checked like the one it replaces).
    """

    def __init__(self) -> None:
        self.proxies: List[InvariantCheckingScheduler] = []

    def __len__(self) -> int:
        return len(self.proxies)

    @property
    def checks(self) -> int:
        return sum(proxy.checks for proxy in self.proxies)


def run_case(params, workload, fault_plan: Optional[FaultPlan],
             ) -> Tuple[SimulationResult, SchedulerProxies]:
    proxies = SchedulerProxies()

    def factory() -> InvariantCheckingScheduler:
        proxy = InvariantCheckingScheduler(make_scheduler(
            params.scheduler, **params.scheduler_kwargs()))
        proxies.proxies.append(proxy)
        return proxy

    cluster = Cluster(params, workload, scheduler_factory=factory,
                      record_history=True, tracer=Tracer(),
                      fault_plan=fault_plan)
    return cluster.run(), proxies


def assert_invariants(result: SimulationResult, name: str) -> None:
    """Every post-run property the harness demands of a run."""
    # 1. Committed history is conflict-serializable, locks exclusive.
    result.history.check_lock_exclusion()
    result.history.check_serializable()
    # 2. Trace lifecycle well-formedness (per execution attempt).
    validate_trace(result.tracer)
    # 3. Final WTPG is acyclic and consistent with the lock table —
    #    for sharded runs, of every shard still (or back) alive.
    if result.control_plane is not None:
        schedulers = [shard.scheduler
                      for shard in result.control_plane.shards
                      if shard.scheduler is not None]
    else:
        schedulers = [result.scheduler]
    for scheduler in schedulers:
        inner = getattr(scheduler, "_inner", scheduler)
        wtpg = getattr(inner, "wtpg", None)
        if wtpg is not None:
            assert not wtpg.has_precedence_cycle(), (
                f"{name}: cyclic final WTPG")
            assert wtpg.cache_violations() == []
            check_consistency(inner.table, wtpg)
    # 4. No transaction both committed and aborted: commits are final
    #    and unique (an abort *before* a commit is a legal restart).
    _assert_commit_finality(result.tracer, name)


def _assert_commit_finality(tracer: Tracer, name: str) -> None:
    committed_at: dict = {}
    for index, event in enumerate(tracer.events):
        if event.tid < 0:
            continue
        if event.kind is EventType.COMMITTED:
            assert event.tid not in committed_at, (
                f"{name}: T{event.tid} committed twice")
            committed_at[event.tid] = index
        elif event.tid in committed_at:
            raise AssertionError(
                f"{name}: T{event.tid} saw {event.kind.value} after commit")


@dataclass(frozen=True)
class CaseVerdict:
    """The outcome of one property case — comparable across processes."""

    name: str
    scheduler: str
    case_seed: int      # the simulation seed the case derived
    ok: bool
    error: str = field(default="", compare=True)


def check_case(scheduler: str, name: str) -> CaseVerdict:
    """Run one generated case and every harness assertion over it.

    Captures assertion failures as a verdict instead of raising, so the
    parallel mode can ship results across process boundaries; the case
    name alone replays the exact run (see tests/prop/gen.py).
    """
    from tests.prop import gen

    rng = gen.case_rng(name)
    workload = gen.make_workload(rng)
    if gen.is_control_case(name):
        params = gen.make_control_params(rng, scheduler)
        plan = gen.make_control_fault_plan(rng, params.num_control_nodes)
    else:
        plan = gen.make_fault_plan(rng)
        params = gen.make_params(rng, scheduler)
    try:
        result, proxy = run_case(params, workload, plan)
        if gen.is_control_case(name) and result.metrics.commits == 0:
            # Total control blackout is a legal outcome: a CN that
            # crashes early and never recovers can stall every arrival
            # in the admission retry loop, so no scheduler is ever
            # consulted.  (Any commit implies checked calls, so the
            # strict assertion below is vacuous only when commits == 0.)
            pass
        else:
            assert proxy.checks > 0, f"{name}: proxy never exercised"
        assert_invariants(result, name)
        if gen.is_control_case(name):
            metrics = result.metrics
            assert metrics.cn_crashes >= 1, (
                f"{name}: planned CN crash never fired")
            # Every recovery replays the log into a *fresh* scheduler;
            # the factory wraps each one, so the proxy count accounts
            # for every scheduler the run ever consulted.
            assert len(proxy) == (params.num_control_nodes
                                  + metrics.cn_recoveries), (
                f"{name}: recovery bypassed the scheduler factory")
        for tid, commits, aborts in lifecycle_counts(result.tracer):
            assert commits <= 1, f"{name}: T{tid} committed {commits} times"
            if plan is None:
                assert aborts == 0 or scheduler == "2PL", (
                    f"{name}: T{tid} aborted without a fault plan")
    except AssertionError as exc:
        return CaseVerdict(name, scheduler, params.seed, False, str(exc))
    return CaseVerdict(name, scheduler, params.seed, True)


def _check_case_pair(pair: Tuple[str, str]) -> CaseVerdict:
    """Tuple adapter (top-level so it pickles for pool workers)."""
    return check_case(pair[0], pair[1])


def check_cases(pairs: Sequence[Tuple[str, str]],
                jobs: Optional[int] = None) -> List[CaseVerdict]:
    """Run (scheduler, case-name) pairs, optionally across processes.

    ``jobs=None`` reads ``REPRO_PROP_JOBS`` (default 1 = serial).
    Verdicts come back in input order; they are identical for every
    jobs value because each case is a pure function of the master seed
    and its name.  If a pool cannot be created the harness silently
    runs in-process instead.
    """
    pairs = list(pairs)
    jobs = prop_jobs() if jobs is None else max(1, jobs)
    if jobs > 1 and len(pairs) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor
            with ProcessPoolExecutor(max_workers=min(jobs, len(pairs))) \
                    as pool:
                return list(pool.map(_check_case_pair, pairs))
        except (OSError, ValueError, ImportError):
            pass  # restricted platform: degrade to in-process
    return [_check_case_pair(pair) for pair in pairs]


def lifecycle_counts(tracer: Tracer) -> List[Tuple[int, int, int]]:
    """(tid, commits, aborts) per transaction — for meta-assertions."""
    out = []
    for tid in tracer.transactions():
        if tid < 0:
            continue
        events = tracer.timeline(tid)
        out.append((tid,
                    sum(1 for e in events
                        if e.kind is EventType.COMMITTED),
                    sum(1 for e in events
                        if e.kind is EventType.ABORTED)))
    return out
