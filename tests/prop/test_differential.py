"""Differential tests: production code vs independent reference models.

* CHAIN's optimised full SR-order ``W`` must achieve exactly the
  critical-path length the paper's appendix O(N^2) DP predicts, on 200
  random chain-form instances admitted through the real scheduler;
* the copy-free overlay E(q) estimator must stay value-identical to the
  legacy deep-copy reference on graphs that lost nodes to aborts.
"""

import random

from repro.core import WTPG
from repro.core.appendix import appendix_shortest_critical_path, from_chain
from repro.core.chain import chain_components
from repro.core.chain_opt import ChainPair
from repro.core.estimator import estimate_contention
from repro.core.schedulers import make_scheduler
from repro.core.transaction import Step, TransactionRuntime, TransactionSpec
from repro.engine.rng import derive_seed
from tests.prop.gen import MASTER_SEED

NUM_CHAIN_CASES = 200
NUM_ABORT_CASES = 200


def rt(tid, steps):
    return TransactionRuntime(TransactionSpec(tid, steps))


class TestChainWMatchesAppendix:
    """CHAIN's W vs the appendix DP, end to end through the scheduler."""

    def chain_instance(self, rng):
        """N transactions forming one chain: T_i and T_{i+1} share
        partition i.  Integer costs keep float comparisons exact."""
        n = rng.randint(2, 8)
        txns = [rt(1, [Step.write(1, float(rng.randint(1, 9)))])]
        for i in range(2, n + 1):
            txns.append(rt(i, [
                Step.write(i - 1, float(rng.randint(1, 9))),
                Step.write(i, float(rng.randint(1, 9)))]))
        return txns

    def appendix_length(self, wtpg):
        """The DP's optimum over every (fully free) chain component."""
        best = 0.0
        for component in chain_components(wtpg):
            if len(component) < 2:
                best = max(best, wtpg.source_weight(component[0]))
                continue
            sources = [wtpg.source_weight(tid) for tid in component]
            pairs = []
            for left, right in zip(component, component[1:]):
                edge = wtpg.pair(left, right)
                pairs.append(ChainPair(down=edge.weight_to(right),
                                       up=edge.weight_to(left)))
            best = max(best,
                       appendix_shortest_critical_path(*from_chain(sources,
                                                                   pairs)))
        return best

    def resolved_length(self, wtpg, w_order):
        """Critical path of a copy resolved exactly as W dictates."""
        resolved = wtpg.copy()
        for pair_key, successor in w_order.items():
            (predecessor,) = set(pair_key) - {successor}
            edge = resolved.pair(predecessor, successor)
            if edge is not None and not edge.resolved:
                resolved.resolve(predecessor, successor)
        assert not resolved.has_precedence_cycle()
        return resolved.critical_path_length()

    def test_chain_w_achieves_the_appendix_optimum(self):
        rng = random.Random(derive_seed(MASTER_SEED, "chain-vs-appendix"))
        checked = 0
        for case in range(NUM_CHAIN_CASES):
            sched = make_scheduler("CHAIN")
            txns = self.chain_instance(rng)
            for txn in txns:
                assert sched.admit(txn).admitted, (
                    f"case {case}: chain construction must be chain-form")
            expected = self.appendix_length(sched.wtpg)
            achieved = self.resolved_length(sched.wtpg,
                                            sched.current_w(0.0))
            assert achieved == expected, (
                f"case {case}: W achieves {achieved}, appendix says "
                f"{expected} for {len(txns)} transactions")
            checked += 1
        assert checked == NUM_CHAIN_CASES


class TestOverlayEqualsReferenceAfterAborts:
    """Overlay vs reference E(q) on post-abort (node-removal) graphs."""

    def random_graph(self, rng):
        """Like the estimator-equivalence corpus: mixed resolution
        states, occasional zero weights."""
        n = rng.randint(3, 10)
        g = WTPG()
        for tid in range(1, n + 1):
            weight = (round(rng.uniform(0, 15), 3)
                      if rng.random() < 0.8 else 0.0)
            g.add_transaction(tid, weight)
        for a in range(1, n + 1):
            for b in range(a + 1, n + 1):
                if rng.random() >= 0.4:
                    continue
                edge = g.ensure_pair(a, b)
                edge.raise_weight_to(b, round(rng.uniform(0, 8), 3))
                edge.raise_weight_to(a, round(rng.uniform(0, 8), 3))
                if rng.random() < 0.3:
                    g.resolve(a, b)
        return g

    def test_overlay_equals_reference_after_node_removals(self):
        rng = random.Random(derive_seed(MASTER_SEED, "estimator-post-abort"))
        compared = 0
        for case in range(NUM_ABORT_CASES):
            g = self.random_graph(rng)
            # The abort path: excise 1-3 nodes, edges and all.
            victims = rng.sample(sorted(g.transactions),
                                 rng.randint(1, min(3, len(g) - 1)))
            for victim in victims:
                g.remove_transaction(victim)
            assert g.cache_violations() == [], f"case {case}"
            survivors = sorted(g.transactions)
            requester = rng.choice(survivors)
            implied = []
            for other in survivors:
                if other == requester:
                    continue
                pair = g.pair(requester, other)
                if pair is not None and not pair.resolved \
                        and rng.random() < 0.6:
                    implied.append((other, requester)
                                   if rng.random() < 0.7
                                   else (requester, other))
            overlay = estimate_contention(g, requester, implied)
            reference = estimate_contention(g, requester, implied,
                                            reference=True)
            assert overlay == reference, (
                f"case {case}: overlay={overlay} reference={reference} "
                f"victims={victims} requester={requester} "
                f"implied={implied}")
            compared += 1
        assert compared == NUM_ABORT_CASES

    def test_scheduler_abort_then_estimates_agree(self):
        """Same property driven through the real K2 abort path."""
        rng = random.Random(derive_seed(MASTER_SEED, "k2-post-abort"))
        for case in range(60):
            sched = make_scheduler("K2")
            admitted = []
            for tid in range(1, rng.randint(4, 9)):
                steps = [Step.write(rng.randrange(6),
                                    float(rng.randint(1, 5)))
                         for _ in range(rng.randint(1, 3))]
                txn = rt(tid, steps)
                if sched.admit(txn).admitted:
                    admitted.append(txn)
            for txn in admitted:
                if rng.random() < 0.4:
                    sched.request_lock(txn)
            victims = [t for t in admitted if rng.random() < 0.4]
            for txn in victims:
                sched.abort_transaction(txn)
            g = sched.wtpg
            assert g.cache_violations() == [], f"case {case}"
            for txn in admitted:
                if txn in victims or txn.tid not in g:
                    continue
                assert estimate_contention(g, txn.tid, []) == \
                    estimate_contention(g, txn.tid, [], reference=True), (
                        f"case {case}: T{txn.tid}")
