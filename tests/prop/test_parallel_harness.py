"""The parallel property harness equals the serial one, verdict for verdict.

Satellite of the deterministic-sweep work: ``REPRO_PROP_JOBS=N`` must
change wall-clock only.  Each case is a pure function of the master seed
and its name, so the per-case verdicts (including the derived simulation
seeds) are bit-identical for every jobs value and come back in input
order.
"""

import pytest

from tests.prop import harness

# A reduced grid — enough to cross scheduler families and hit both
# fault-free and faulty generated plans, small enough for CI.
REDUCED = [(scheduler, f"{scheduler}-case-{i}")
           for scheduler in ("CHAIN", "K2", "C2PL", "2PL")
           for i in range(3)]


def test_parallel_verdicts_match_serial():
    serial = harness.check_cases(REDUCED, jobs=1)
    parallel = harness.check_cases(REDUCED, jobs=2)
    assert serial == parallel
    # Order is input order, seeds are the derived per-case seeds.
    assert [v.name for v in parallel] == [name for _, name in REDUCED]
    assert all(v.ok for v in parallel), [v.error for v in parallel if not v.ok]
    assert all(v.case_seed > 0 for v in parallel)


def test_parallel_shuffled_input_same_verdicts():
    """Verdicts depend on case identity, not on submission order."""
    shuffled = list(reversed(REDUCED))
    forward = {v.name: v for v in harness.check_cases(REDUCED, jobs=2)}
    backward = {v.name: v for v in harness.check_cases(shuffled, jobs=2)}
    assert forward == backward


def test_prop_jobs_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_PROP_JOBS", raising=False)
    assert harness.prop_jobs() == 1
    monkeypatch.setenv("REPRO_PROP_JOBS", "4")
    assert harness.prop_jobs() == 4
    monkeypatch.setenv("REPRO_PROP_JOBS", "0")
    assert harness.prop_jobs() == 1
    monkeypatch.setenv("REPRO_PROP_JOBS", "not-a-number")
    assert harness.prop_jobs() == 1


def test_failing_case_becomes_verdict(monkeypatch):
    """Assertion failures are captured, not raised, so one bad case in a
    parallel batch cannot mask the verdicts of the others."""
    def explode(result, name):
        raise AssertionError(f"{name}: injected failure")

    monkeypatch.setattr(harness, "assert_invariants", explode)
    verdicts = harness.check_cases(
        [("CHAIN", "CHAIN-case-0"), ("K2", "K2-case-0")], jobs=1)
    assert [v.ok for v in verdicts] == [False, False]
    assert "injected failure" in verdicts[0].error
    assert verdicts[0].case_seed > 0


def test_single_case_stays_serial(monkeypatch):
    """A 1-element batch never pays pool startup, whatever jobs says."""
    def no_pool(*args, **kwargs):
        raise AssertionError("pool should not be created for one case")

    monkeypatch.setattr("concurrent.futures.ProcessPoolExecutor", no_pool)
    verdicts = harness.check_cases([("CHAIN", "CHAIN-case-0")], jobs=8)
    assert len(verdicts) == 1 and verdicts[0].ok
