"""Property-based invariants over 500 random runs per scheduler.

Each case draws a random workload shape, machine configuration and
fault plan from a seed derived off ``gen.MASTER_SEED`` (CI pins it via
``REPRO_PROP_SEED``), runs a tiny cluster and asserts:

* the committed history is conflict-serializable with exclusive locks;
* ``cache_violations()`` is empty after *every* scheduler event;
* the final WTPG is acyclic and consistent with the lock table;
* no transaction is both committed and aborted (commits are final).

A failure message carries the case name, which replays the exact run.
"""

import pytest

from tests.prop import gen
from tests.prop.harness import (assert_invariants, lifecycle_counts,
                                run_case)

SCHEDULERS = ["CHAIN", "K2", "C2PL", "2PL"]
CASES_PER_SCHEDULER = 500
CHUNK = 50
CHUNKS = CASES_PER_SCHEDULER // CHUNK


def run_and_check(name: str, scheduler: str) -> None:
    rng = gen.case_rng(name)
    workload = gen.make_workload(rng)
    plan = gen.make_fault_plan(rng)
    params = gen.make_params(rng, scheduler)
    result, proxy = run_case(params, workload, plan)
    assert proxy.checks > 0, f"{name}: proxy never exercised"
    assert_invariants(result, name)
    for tid, commits, aborts in lifecycle_counts(result.tracer):
        assert commits <= 1, f"{name}: T{tid} committed {commits} times"
        if plan is None:
            assert aborts == 0 or scheduler == "2PL", (
                f"{name}: T{tid} aborted without a fault plan")


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_invariants_hold_on_random_runs(scheduler, chunk):
    for i in range(chunk * CHUNK, (chunk + 1) * CHUNK):
        run_and_check(f"{scheduler}-case-{i}", scheduler)


def test_master_seed_is_visible():
    """The resolved seed appears in -v output for failure triage."""
    assert isinstance(gen.MASTER_SEED, int)
