"""Property-based invariants over 500 random runs per scheduler.

Each case draws a random workload shape, machine configuration and
fault plan from a seed derived off ``gen.MASTER_SEED`` (CI pins it via
``REPRO_PROP_SEED``), runs a tiny cluster and asserts:

* the committed history is conflict-serializable with exclusive locks;
* ``cache_violations()`` is empty after *every* scheduler event;
* the final WTPG is acyclic and consistent with the lock table;
* no transaction is both committed and aborted (commits are final).

A failure message carries the case name, which replays the exact run.
"""

import pytest

from tests.prop import gen
from tests.prop.harness import check_cases

SCHEDULERS = ["CHAIN", "K2", "C2PL", "2PL"]
CASES_PER_SCHEDULER = 500
CHUNK = 50
CHUNKS = CASES_PER_SCHEDULER // CHUNK


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_invariants_hold_on_random_runs(scheduler, chunk):
    pairs = [(scheduler, f"{scheduler}-case-{i}")
             for i in range(chunk * CHUNK, (chunk + 1) * CHUNK)]
    failed = [v for v in check_cases(pairs) if not v.ok]
    assert failed == [], "\n".join(v.error for v in failed)


def test_master_seed_is_visible():
    """The resolved seed appears in -v output for failure triage."""
    assert isinstance(gen.MASTER_SEED, int)
