"""Generators for the property-based harness (stdlib random only).

Every generated case is a pure function of ``MASTER_SEED`` (overridable
via the ``REPRO_PROP_SEED`` environment variable, which is how CI pins
it) and the case name, derived through the same SHA-256 seed-splitting
the simulator itself uses — no ``hypothesis``, no ambient randomness, so
a failing case replays from its name alone.
"""

import os
import random
from typing import Callable, Optional

from repro.config import SimulationParameters
from repro.core.transaction import Step, TransactionSpec
from repro.engine.rng import RandomStreams, derive_seed
from repro.faults import (ControlCrash, FaultPlan, NodeCrash,
                          PartitionSlowdown, RetryPolicy, StepAbort)

MASTER_SEED = int(os.environ.get("REPRO_PROP_SEED", "20260806"))

# Tiny machines: the invariants are structural, not throughput-bound,
# so each run only needs a handful of overlapping transactions.
NUM_NODES = 4
NUM_PARTITIONS = 8
SIM_CLOCKS = 2_500.0
OBJ_TIME = 20.0


def case_rng(name: str) -> random.Random:
    """A stdlib PRNG reproducibly derived from the master seed."""
    return random.Random(derive_seed(MASTER_SEED, name))


def make_workload(rng: random.Random) -> Callable[[int, RandomStreams],
                                                  TransactionSpec]:
    """A random BAT workload: shape parameters fixed per case."""
    max_steps = rng.randint(1, 4)
    write_prob = rng.uniform(0.3, 0.9)
    max_cost = rng.randint(1, 5)

    def workload(tid: int, streams: RandomStreams) -> TransactionSpec:
        n = streams.randint("prop-wl", 1, max_steps)
        steps = []
        for _ in range(n):
            partition = streams.randint("prop-wl", 0, NUM_PARTITIONS - 1)
            cost = float(streams.randint("prop-wl", 1, max_cost))
            if streams.uniform("prop-wl", 0.0, 1.0) < write_prob:
                steps.append(Step.write(partition, cost))
            else:
                steps.append(Step.read(partition, cost))
        return TransactionSpec(tid, steps)

    return workload


def make_fault_plan(rng: random.Random) -> Optional[FaultPlan]:
    """A random fault plan; None ~30% of the time (fault-free control)."""
    if rng.random() < 0.3:
        return None
    crashes = []
    if rng.random() < 0.4:
        at = rng.uniform(100.0, SIM_CLOCKS * 0.6)
        recover = (at + rng.uniform(50.0, SIM_CLOCKS * 0.3)
                   if rng.random() < 0.7 else None)
        crashes.append(NodeCrash(rng.randrange(NUM_NODES), at,
                                 recover_at=recover))
    step_aborts = []
    if rng.random() < 0.4:
        for tid in rng.sample(range(1, 8), rng.randint(1, 3)):
            step_aborts.append(StepAbort(tid, rng.randint(0, 4),
                                         attempt=rng.randint(1, 2)))
    slowdowns = []
    if rng.random() < 0.3:
        at = rng.uniform(0.0, SIM_CLOCKS * 0.5)
        slowdowns.append(PartitionSlowdown(
            rng.randrange(NUM_PARTITIONS), rng.uniform(1.5, 4.0),
            at, at + rng.uniform(100.0, SIM_CLOCKS * 0.4)))
    retry = None
    if rng.random() < 0.5:
        kind = rng.choice(("fixed", "immediate", "exponential"))
        retry = RetryPolicy(
            kind=kind, delay=rng.uniform(1.0, 50.0),
            cap=rng.uniform(100.0, 500.0) if kind == "exponential" else None)
    return FaultPlan(
        crashes=tuple(crashes), step_aborts=tuple(step_aborts),
        slowdowns=tuple(slowdowns),
        abort_rate=rng.uniform(0.0, 0.4) if rng.random() < 0.6 else 0.0,
        declared_cost_sigma=rng.uniform(0.0, 1.0) if rng.random() < 0.3
        else 0.0,
        declared_cost_factor=rng.uniform(0.5, 2.0) if rng.random() < 0.2
        else 1.0,
        cascade=rng.random() < 0.3, retry=retry)


def is_control_case(name: str) -> bool:
    """Control-plane cases (sharded CNs, CN crashes) dispatch by name,
    preserving the replay-from-name-alone property."""
    return "-cn-" in name


def make_control_params(rng: random.Random,
                        scheduler: str) -> SimulationParameters:
    """Sharded-plane parameters: :func:`make_params` plus 2-4 CNs."""
    return make_params(rng, scheduler).with_overrides(
        num_control_nodes=rng.choice((2, 3, 4)))


def make_control_fault_plan(rng: random.Random,
                            num_control_nodes: int) -> FaultPlan:
    """A fault plan that always kills control nodes mid-run.

    At most one crash per CN — the injector runs one crash/recovery
    process per plan entry, and a recovery racing a second crash of the
    same shard is not a machine state the model defines.  ~80% of
    crashes recover, so most runs also exercise dependency-log replay;
    workload-level faults (step aborts, abort rate, cascades, retry
    policies) ride along at make_fault_plan's rates.
    """
    cns = rng.sample(range(num_control_nodes),
                     rng.randint(1, min(2, num_control_nodes)))
    crashes = []
    for cn in sorted(cns):
        at = rng.uniform(100.0, SIM_CLOCKS * 0.6)
        recover = (at + rng.uniform(50.0, SIM_CLOCKS * 0.35)
                   if rng.random() < 0.8 else None)
        crashes.append(ControlCrash(cn, at, recover_at=recover))
    step_aborts = []
    if rng.random() < 0.3:
        for tid in rng.sample(range(1, 8), rng.randint(1, 2)):
            step_aborts.append(StepAbort(tid, rng.randint(0, 4),
                                         attempt=rng.randint(1, 2)))
    retry = None
    if rng.random() < 0.5:
        kind = rng.choice(("fixed", "immediate", "exponential"))
        retry = RetryPolicy(
            kind=kind, delay=rng.uniform(1.0, 50.0),
            cap=rng.uniform(100.0, 500.0) if kind == "exponential" else None)
    return FaultPlan(
        control_crashes=tuple(crashes), step_aborts=tuple(step_aborts),
        abort_rate=rng.uniform(0.0, 0.3) if rng.random() < 0.5 else 0.0,
        cascade=rng.random() < 0.3, retry=retry)


def make_params(rng: random.Random, scheduler: str) -> SimulationParameters:
    return SimulationParameters(
        scheduler=scheduler, num_nodes=NUM_NODES,
        num_partitions=NUM_PARTITIONS, obj_time=OBJ_TIME,
        sim_clocks=SIM_CLOCKS,
        arrival_rate_tps=rng.uniform(3.0, 8.0),
        seed=rng.randrange(1, 2**31),
        startup_time=1.0, commit_time=1.0, dd_time=0.5, chain_time=1.0,
        kwtpg_time=0.5, keep_time=rng.choice((100.0, 400.0)),
        admission_time=0.5, retry_delay=rng.uniform(5.0, 40.0))
