"""Property-based control-plane crash/recovery: 500 runs per scheduler.

Each case draws a sharded machine (2-4 control nodes) and a fault plan
that kills at least one control node mid-run (most recover via
dependency-log replay), then asserts the full harness battery:

* the committed history is conflict-serializable with exclusive locks;
* ``cache_violations()`` is empty after *every* scheduler event — on
  every shard, including the fresh scheduler a recovery replays into;
* the final WTPG of every alive shard is acyclic and consistent with
  its lock table;
* no transaction is both committed and aborted (commits are final);
* every recovery went through the scheduler factory (the replayed
  scheduler is invariant-checked like the one it replaces).

The differential tests close the loop on the dependency log itself: a
full replay of a shard's log must reconstruct the live shard's WTPG
*edge for edge* — for shards that never crashed and for shards that
crashed, replayed, and kept serving.  Weights are deliberately outside
the comparison: per-object weight-adjustment messages are not logged, so
a replayed WTPG carries the conservative declared weights (see
``repro/machine/control_log.py``).
"""

import pytest

from repro.core.schedulers import make_scheduler
from repro.faults import ControlCrash, FaultPlan
from repro.machine.cluster import run_simulation
from tests.prop import gen
from tests.prop.harness import check_cases

SCHEDULERS = ["CHAIN", "K2", "C2PL"]  # 2PL has no WTPG slice to replay
CASES_PER_SCHEDULER = 500
CHUNK = 50
CHUNKS = CASES_PER_SCHEDULER // CHUNK


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_invariants_hold_under_cn_crashes(scheduler, chunk):
    pairs = [(scheduler, f"{scheduler}-cn-case-{i}")
             for i in range(chunk * CHUNK, (chunk + 1) * CHUNK)]
    failed = [v for v in check_cases(pairs) if not v.ok]
    assert failed == [], "\n".join(v.error for v in failed)


def structure(wtpg):
    """A WTPG's replay-comparable fingerprint: nodes plus every pair
    edge as (a, b, resolved-successor) — weights excluded by design."""
    nodes = frozenset(wtpg.transactions)
    edges = frozenset((min(e.a, e.b), max(e.a, e.b), e.resolved_to)
                      for e in wtpg.pairs())
    return nodes, edges


def replay_vs_live(params, fault_plan=None):
    """Run a sharded case, then fully replay every alive shard's log and
    compare the rebuilt WTPG with the live one, edge for edge."""
    rng = gen.case_rng(f"replay-diff-{params.scheduler}-"
                       f"{params.num_control_nodes}")
    workload = gen.make_workload(rng)
    result = run_simulation(params, workload, fault_plan=fault_plan)
    plane = result.control_plane
    assert plane is not None
    compared = 0
    for shard in plane.shards:
        if shard.scheduler is None:
            continue  # down at end of run: nothing live to compare
        assert len(shard.log) > 0, f"CN {shard.shard_id}: empty log"

        def factory():
            return make_scheduler(params.scheduler,
                                  **params.scheduler_kwargs())

        replayed, n = shard.log.replay(factory)
        assert n == len(shard.log)
        assert structure(replayed.wtpg) == structure(shard.scheduler.wtpg), (
            f"CN {shard.shard_id}: replayed WTPG diverges from live")
        compared += 1
    return result, compared


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_replay_equals_never_crashed_shard_edge_for_edge(scheduler):
    rng = gen.case_rng(f"replay-diff-params-{scheduler}")
    params = gen.make_params(rng, scheduler).with_overrides(
        num_control_nodes=3)
    result, compared = replay_vs_live(params)
    assert compared == 3          # every shard stayed up and was checked
    assert result.metrics.commits > 0


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_replay_equals_recovered_shard_edge_for_edge(scheduler):
    """After a crash + replay + further live service, a from-scratch
    replay of the full log still matches the live shard exactly: every
    post-recovery mutation was logged too."""
    rng = gen.case_rng(f"replay-diff-params-crash-{scheduler}")
    params = gen.make_params(rng, scheduler).with_overrides(
        num_control_nodes=3)
    plan = FaultPlan(control_crashes=(
        ControlCrash(0, gen.SIM_CLOCKS * 0.2,
                     recover_at=gen.SIM_CLOCKS * 0.4),))
    result, compared = replay_vs_live(params, fault_plan=plan)
    assert compared == 3
    assert result.metrics.cn_crashes == 1
    assert result.metrics.cn_recoveries == 1
