"""Property-based batched-vs-reference node equivalence.

The hand-picked scenarios in ``tests/machine/test_node_equivalence.py``
probe known-dangerous corners; this module closes the gap with generated
cases: random workloads, random fault plans, every scheduler, each run
twice — once with ``node_mode="batched"``, once with ``"reference"`` —
and the two runs must be byte-identical on every observable surface
(trace stream, metrics dict, per-node counters, invariant-check counts).
Any divergence replays from the case name alone via ``REPRO_PROP_SEED``.
"""

import json

import pytest

from repro.machine.trace import Tracer
from tests.prop.gen import case_rng, make_fault_plan, make_params, make_workload
from tests.prop.harness import assert_invariants, run_case

SCHEDULERS = ("CHAIN", "K2", "C2PL", "2PL")
CASES_PER_SCHEDULER = 4


def fingerprint(params, workload, fault_plan):
    result, scheduler = run_case(params, workload, fault_plan)
    trace = "\n".join(e.to_json() for e in result.tracer.events)
    metrics = json.dumps(result.metrics.as_dict(), sort_keys=True)
    return result, scheduler, trace, metrics


@pytest.mark.parametrize("index", range(CASES_PER_SCHEDULER))
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_generated_runs_are_mode_identical(scheduler, index):
    name = f"node-modes-{scheduler}-{index}"
    rng = case_rng(name)
    params = make_params(rng, scheduler)
    workload = make_workload(rng)
    fault_plan = make_fault_plan(rng)

    batched = fingerprint(params.with_overrides(node_mode="batched"),
                          workload, fault_plan)
    reference = fingerprint(params.with_overrides(node_mode="reference"),
                            workload, fault_plan)

    assert batched[2] == reference[2], f"{name}: trace streams diverged"
    assert batched[3] == reference[3], f"{name}: metrics diverged"
    # The *number* of invariant checks legitimately differs (one batch
    # call replaces n per-quantum calls); what must hold is that every
    # check passed in both modes — the wrapper raised otherwise — and
    # that each run individually satisfies the post-run invariants.
    assert batched[1].checks > 0 and reference[1].checks > 0
    assert_invariants(batched[0], name)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_sampled_tracer_sees_identical_streams_across_modes(scheduler):
    """Mode equivalence must also hold through the sampling filter (the
    fast observability path used for the million-BAT runs)."""
    name = f"node-modes-sampled-{scheduler}"
    rng = case_rng(name)
    params = make_params(rng, scheduler)
    workload = make_workload(rng)

    def sampled_trace(mode):
        from repro.machine.cluster import Cluster
        from repro.core.schedulers import make_scheduler
        run_params = params.with_overrides(node_mode=mode,
                                           trace_sample_rate=0.5)
        tracer = Tracer()
        scheduler_obj = make_scheduler(run_params.scheduler,
                                       **run_params.scheduler_kwargs())
        Cluster(run_params, workload, scheduler=scheduler_obj,
                tracer=tracer).run()
        return "\n".join(e.to_json() for e in tracer.events)

    assert sampled_trace("batched") == sampled_trace("reference")
