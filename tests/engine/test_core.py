"""Unit tests for the discrete-event kernel (events, processes, clock)."""

import pytest

from repro.engine import Environment, Event
from repro.engine.core import Interrupt
from repro.errors import EngineStateError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_clock_custom_start():
    env = Environment(initial_time=42)
    assert env.now == 42


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(10)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [10]


def test_timeout_zero_is_allowed():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(0)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for delay in (5, 7, 11):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [5, 12, 23]


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(10)
        order.append(name)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.process(proc(env, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(3)

    env.process(proc(env))
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(4)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"
    assert env.now == 4


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    never = env.event()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(EngineStateError):
        env.run(until=never)


def test_process_return_value_via_join():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2)
        return 99

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(2, 99)]


def test_event_succeed_delivers_value():
    env = Environment()
    gate = env.event()
    got = []

    def waiter(env):
        value = yield gate
        got.append((env.now, value))

    def opener(env):
        yield env.timeout(6)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert got == [(6, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(EngineStateError):
        event.succeed(2)
    with pytest.raises(EngineStateError):
        event.fail(RuntimeError("boom"))


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(EngineStateError):
        _ = event.value


def test_event_fail_raises_inside_process():
    env = Environment()
    caught = []

    def proc(env, gate):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    gate = env.event()

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("kaput"))

    env.process(proc(env, gate))
    env.process(failer(env))
    env.run()
    assert caught == ["kaput"]


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise ValueError("exploded")

    env.process(proc(env))
    with pytest.raises(ValueError, match="exploded"):
        env.run()


def test_handled_child_failure_does_not_propagate():
    env = Environment()
    outcome = []

    def child(env):
        yield env.timeout(1)
        raise ValueError("child failed")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError:
            outcome.append("handled")

    env.process(parent(env))
    env.run()
    assert outcome == ["handled"]


def test_yield_non_event_raises_type_error_in_process():
    env = Environment()
    caught = []

    def proc(env):
        try:
            yield 123
        except TypeError:
            caught.append(True)

    env.process(proc(env))
    env.run()
    assert caught == [True]


def test_yield_event_from_other_environment_rejected():
    env1, env2 = Environment(), Environment()
    caught = []

    def proc(env):
        try:
            yield env2.event()
        except EngineStateError:
            caught.append(True)

    env1.process(proc(env1))
    env1.run()
    assert caught == [True]


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    gate = env.event()
    gate.succeed("early")
    log = []

    def proc(env):
        yield env.timeout(5)
        value = yield gate
        log.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert log == [(5, "early")]


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        fast = env.timeout(3, value="fast")
        slow = env.timeout(9, value="slow")
        fired = yield env.any_of([fast, slow])
        results.append((env.now, list(fired.values())))

    env.process(proc(env))
    env.run()
    assert results == [(3, ["fast"])]


def test_all_of_waits_for_everything():
    env = Environment()
    results = []

    def proc(env):
        a = env.timeout(3, value="a")
        b = env.timeout(9, value="b")
        fired = yield env.all_of([a, b])
        results.append((env.now, sorted(fired.values())))

    env.process(proc(env))
    env.run()
    assert results == [(9, ["a", "b"])]


def test_empty_condition_fires_immediately():
    env = Environment()
    results = []

    def proc(env):
        fired = yield env.all_of([])
        results.append(fired)

    env.process(proc(env))
    env.run()
    assert results == [{}]


def test_any_of_fails_when_a_sub_event_fails():
    env = Environment()
    caught = []

    def proc(env, gate):
        try:
            yield env.any_of([gate, env.timeout(50)])
        except RuntimeError as exc:
            caught.append(str(exc))

    gate = env.event()

    def failer(env):
        yield env.timeout(5)
        gate.fail(RuntimeError("sub-event exploded"))

    env.process(proc(env, gate))
    env.process(failer(env))
    env.run()
    assert caught == ["sub-event exploded"]


def test_all_of_with_pre_processed_events():
    env = Environment()
    done = env.event()
    done.succeed("early")
    results = []

    def waiter(env):
        yield env.timeout(3)  # let `done` be processed first
        fired = yield env.all_of([done, env.timeout(2, value="late")])
        results.append(sorted(str(v) for v in fired.values()))

    env.process(waiter(env))
    env.run()
    assert results == [["early", "late"]]


def test_condition_rejects_cross_environment_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(EngineStateError):
        env1.all_of([env1.event(), env2.event()])


def test_interrupt_raises_in_target():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(env, target):
        yield env.timeout(7)
        target.interrupt(cause="stop")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [(7, "stop")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(EngineStateError):
        proc.interrupt()


def test_step_without_events_raises():
    env = Environment()
    with pytest.raises(EngineStateError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(17)
    assert env.peek() == 17
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_process_is_alive_tracks_lifetime():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_fail_requires_exception_instance():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_many_processes_complete_deterministically():
    env = Environment()
    done = []

    def proc(env, ident):
        yield env.timeout(ident % 5)
        done.append(ident)

    for i in range(50):
        env.process(proc(env, i))
    env.run()
    assert sorted(done) == list(range(50))
    # Within a time bucket, original creation order is preserved.
    assert done == sorted(done, key=lambda i: (i % 5, i))
