"""Unit tests for engine resources: Resource, PriorityResource, Store."""

import pytest

from repro.engine import Environment, PriorityResource, Resource, Store
from repro.errors import EngineStateError


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2 = res.request(), res.request()
    assert r1.triggered and r2.triggered
    r3 = res.request()
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_wakes_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, res, name, hold):
        req = res.request()
        yield req
        order.append(("start", name, env.now))
        yield env.timeout(hold)
        res.release(req)
        order.append(("end", name, env.now))

    env.process(worker(env, res, "a", 10))
    env.process(worker(env, res, "b", 5))
    env.process(worker(env, res, "c", 1))
    env.run()
    starts = [(name, t) for kind, name, t in order if kind == "start"]
    assert starts == [("a", 0), ("b", 10), ("c", 15)]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_wrong_resource_rejected():
    env = Environment()
    res1, res2 = Resource(env), Resource(env)
    req = res1.request()
    with pytest.raises(EngineStateError):
        res2.release(req)


def test_release_ungranted_request_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    queued = res.request()
    with pytest.raises(EngineStateError):
        res.release(queued)


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    head = res.request()
    queued = res.request()
    res.cancel(queued)
    assert res.queue_length == 0
    # Releasing the head must not wake the cancelled request.
    res.release(head)
    assert not queued.triggered


def test_cancel_granted_request_rejected():
    env = Environment()
    res = Resource(env)
    req = res.request()
    with pytest.raises(EngineStateError):
        res.cancel(req)


def test_cancel_unqueued_request_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    queued = res.request()
    res.cancel(queued)
    with pytest.raises(EngineStateError):
        res.cancel(queued)


def test_busy_time_integrates_utilization():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker(env, res):
        req = res.request()
        yield req
        yield env.timeout(30)
        res.release(req)

    env.process(worker(env, res))
    env.run(until=100)
    assert res.busy_time() == pytest.approx(30)


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def worker(env, res, name, priority):
        req = res.request(priority=priority)
        yield req
        order.append(name)
        yield env.timeout(1)
        res.release(req)

    def spawn(env):
        # Occupy the server, then queue three requests with priorities.
        req = res.request()
        yield env.timeout(0)
        env.process(worker(env, res, "low", 5))
        env.process(worker(env, res, "high", 1))
        env.process(worker(env, res, "mid", 3))
        yield env.timeout(10)
        res.release(req)

    env.process(spawn(env))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_same_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def worker(env, res, name):
        req = res.request(priority=2)
        yield req
        order.append(name)
        yield env.timeout(1)
        res.release(req)

    def spawn(env):
        req = res.request()
        yield env.timeout(0)
        for name in ("first", "second", "third"):
            env.process(worker(env, res, name))
        yield env.timeout(5)
        res.release(req)

    env.process(spawn(env))
    env.run()
    assert order == ["first", "second", "third"]


def test_priority_cancel_is_lazy_but_effective():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    head = res.request()
    queued = res.request(priority=0)
    res.cancel(queued)
    res.release(head)
    assert not queued.triggered
    assert res.in_use == 0


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = store.get()
    assert got.triggered and got.value == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env, store):
        item = yield store.get()
        received.append((env.now, item))

    def producer(env, store):
        yield env.timeout(8)
        store.put("msg")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert received == [(8, "msg")]


def test_store_preserves_fifo():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    assert [store.get().value for _ in range(5)] == [0, 1, 2, 3, 4]


def test_store_multiple_waiting_getters_served_in_order():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env, store, name):
        item = yield store.get()
        received.append((name, item))

    env.process(consumer(env, store, "a"))
    env.process(consumer(env, store, "b"))

    def producer(env, store):
        yield env.timeout(1)
        store.put(1)
        store.put(2)

    env.process(producer(env, store))
    env.run()
    assert received == [("a", 1), ("b", 2)]


def test_store_len_and_peek():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    assert store.peek() is None
    store.put("head")
    store.put("tail")
    assert len(store) == 2
    assert store.peek() == "head"
    assert len(store) == 2
