"""Unit tests for deterministic named random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.rng import RandomStreams, derive_seed


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(7).stream("arrivals")
    b = RandomStreams(7).stream("arrivals")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_sequences():
    streams = RandomStreams(7)
    xs = [streams.stream("arrivals").random() for _ in range(5)]
    ys = [streams.stream("errors").random() for _ in range(5)]
    assert xs != ys


def test_different_master_seeds_give_different_sequences():
    xs = [RandomStreams(1).stream("s").random() for _ in range(5)]
    ys = [RandomStreams(2).stream("s").random() for _ in range(5)]
    assert xs != ys


def test_stream_is_cached_not_reset():
    streams = RandomStreams(0)
    first = streams.stream("x").random()
    second = streams.stream("x").random()
    assert first != second  # same underlying generator keeps advancing


def test_consuming_one_stream_does_not_shift_another():
    reference = RandomStreams(3)
    ref_draw = reference.stream("b").random()

    mixed = RandomStreams(3)
    for _ in range(100):
        mixed.stream("a").random()
    assert mixed.stream("b").random() == ref_draw


def test_exponential_mean_validation():
    streams = RandomStreams(0)
    with pytest.raises(ValueError):
        streams.exponential("x", 0)
    with pytest.raises(ValueError):
        streams.exponential("x", -1)


def test_exponential_rough_mean():
    streams = RandomStreams(42)
    n = 20000
    mean = sum(streams.exponential("arr", 100.0) for _ in range(n)) / n
    assert mean == pytest.approx(100.0, rel=0.05)


def test_normal_zero_sigma_is_exact():
    streams = RandomStreams(0)
    assert streams.normal("e", 5.0, 0.0) == 5.0


def test_normal_negative_sigma_rejected():
    with pytest.raises(ValueError):
        RandomStreams(0).normal("e", 0.0, -0.1)


def test_choice_and_sample_validation():
    streams = RandomStreams(0)
    with pytest.raises(ValueError):
        streams.choice("c", [])
    with pytest.raises(ValueError):
        streams.sample("c", [1, 2], 3)


def test_sample_returns_distinct_items():
    streams = RandomStreams(5)
    picked = streams.sample("parts", list(range(16)), 2)
    assert len(picked) == 2
    assert len(set(picked)) == 2


def test_randint_bounds():
    streams = RandomStreams(9)
    draws = {streams.randint("r", 3, 5) for _ in range(200)}
    assert draws == {3, 4, 5}


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=0, max_size=20))
def test_derive_seed_is_deterministic_and_64bit(seed, name):
    first = derive_seed(seed, name)
    second = derive_seed(seed, name)
    assert first == second
    assert 0 <= first < 2**64


@given(st.integers(min_value=0, max_value=10_000))
def test_derive_seed_name_separation(seed):
    assert derive_seed(seed, "a") != derive_seed(seed, "b")
