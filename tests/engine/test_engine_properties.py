"""Property-based tests of the DES kernel: determinism and clock laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Environment, Resource


@st.composite
def process_plans(draw):
    """Random plans: each process sleeps a few times and logs."""
    num_procs = draw(st.integers(min_value=1, max_value=6))
    return [
        [draw(st.integers(min_value=0, max_value=20))
         for _ in range(draw(st.integers(min_value=1, max_value=4)))]
        for _ in range(num_procs)]


def run_plan(plans):
    env = Environment()
    log = []

    def proc(env, ident, delays):
        for delay in delays:
            yield env.timeout(delay)
            log.append((env.now, ident))

    for ident, delays in enumerate(plans):
        env.process(proc(env, ident, delays))
    env.run()
    return env.now, log


@settings(max_examples=150, deadline=None)
@given(process_plans())
def test_identical_plans_produce_identical_logs(plans):
    assert run_plan(plans) == run_plan(plans)


@settings(max_examples=150, deadline=None)
@given(process_plans())
def test_log_times_are_monotone_nondecreasing(plans):
    _, log = run_plan(plans)
    times = [t for t, _ in log]
    assert times == sorted(times)


@settings(max_examples=150, deadline=None)
@given(process_plans())
def test_final_clock_is_max_completion(plans):
    final, log = run_plan(plans)
    assert final == max(sum(delays) for delays in plans)
    assert len(log) == sum(len(delays) for delays in plans)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=15), min_size=1,
                max_size=8),
       st.integers(min_value=1, max_value=3))
def test_resource_serialises_work_conservation(holds, capacity):
    """Total busy time equals total requested service; the makespan is
    bounded by ceil-packing limits of a work-conserving server."""
    env = Environment()
    resource = Resource(env, capacity=capacity)

    def worker(env, resource, hold):
        request = resource.request()
        yield request
        try:
            yield env.timeout(hold)
        finally:
            resource.release(request)

    for hold in holds:
        env.process(worker(env, resource, hold))
    env.run()
    total = sum(holds)
    assert resource.busy_time() == pytest.approx(total)
    assert env.now >= total / capacity - 1e-9
    assert env.now <= total  # never slower than fully serial


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 10)),
                min_size=1, max_size=10))
def test_fifo_resource_start_order_matches_request_order(jobs):
    """With capacity 1, service starts in request (arrival) order."""
    env = Environment()
    resource = Resource(env, capacity=1)
    starts = []

    def worker(env, resource, ident, arrival, hold):
        yield env.timeout(arrival)
        request = resource.request()
        yield request
        starts.append((ident, env.now))
        yield env.timeout(hold)
        resource.release(request)

    for ident, (arrival, hold) in enumerate(jobs):
        env.process(worker(env, resource, ident, arrival, hold))
    env.run()
    # Sort jobs by (arrival, creation order) = request order; the start
    # sequence must respect it.
    expected = [ident for ident, _ in
                sorted(enumerate(jobs), key=lambda item: (item[1][0],
                                                          item[0]))]
    assert [ident for ident, _ in starts] == expected
