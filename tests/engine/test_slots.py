"""Guard: registered hot-path classes must stay fully ``__slots__``-ed.

A single forgotten ``__slots__`` in a subclass silently reintroduces a
per-instance ``__dict__`` for every event in the heap — the exact
allocation cost the slab-heap kernel removed.  The registry lives in
:data:`repro.engine.core.HOT_CLASSES`; new hot classes must register via
``@register_hot_class``.
"""

import pytest

import repro.engine.resources  # noqa: F401  (registers its classes)
import repro.machine.data_node  # noqa: F401
from repro.engine.core import HOT_CLASSES, Environment, Event


def mro_chain(cls):
    return [k for k in cls.__mro__ if k is not object]


@pytest.mark.parametrize("cls", HOT_CLASSES, ids=lambda c: c.__name__)
def test_hot_class_defines_slots_through_its_whole_mro(cls):
    for base in mro_chain(cls):
        assert "__slots__" in vars(base), (
            f"{cls.__name__}: base {base.__name__} lacks __slots__ — "
            f"instances would carry a __dict__")


@pytest.mark.parametrize("cls", HOT_CLASSES, ids=lambda c: c.__name__)
def test_hot_class_instances_have_no_dict(cls):
    assert not any("__dict__" in vars(base) for base in mro_chain(cls)), (
        f"{cls.__name__} instances would allocate a __dict__")


def test_registry_covers_the_core_event_types():
    names = {cls.__name__ for cls in HOT_CLASSES}
    expected = {"Event", "Timeout", "Initialize", "Process", "Condition",
                "AnyOf", "AllOf", "Environment", "Request",
                "PriorityRequest", "Resource", "PriorityResource", "Store",
                "_WorkItem", "SlowdownToken"}
    missing = expected - names
    assert not missing, f"hot classes fell out of the registry: {missing}"


def test_events_reject_ad_hoc_attributes():
    env = Environment()
    event = Event(env)
    with pytest.raises(AttributeError):
        event.scratchpad = 1  # type: ignore[attr-defined]
