"""Tests for the point runner (execution now lives in experiments.parallel).

Determinism and checkpointing of the underlying executor are covered by
``test_parallel_runner.py`` / ``test_sweep_checkpoint.py``; this module
tests the PointSpec surface itself.
"""

import pickle

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (PointSpec, group_by_scheduler,
                                      run_point, run_points, sweep_specs)
from repro.faults import FaultPlan, StepAbort

TINY = dict(sim_clocks=50_000.0, seed=4)


class TestPointSpec:
    def test_build_pattern1(self):
        spec = PointSpec("pattern1", "C2PL", 0.4, **TINY)
        workload, catalog, params = spec.build()
        assert params.num_partitions == 16
        assert params.scheduler == "C2PL"

    def test_build_pattern2_uses_num_hots(self):
        spec = PointSpec("pattern2", "K2", 0.4, num_hots=4, **TINY)
        _, catalog, params = spec.build()
        assert params.num_partitions == 12
        assert catalog.hot_pids == [8, 9, 10, 11]

    def test_build_pattern3(self):
        spec = PointSpec("pattern3", "ASL", 0.4, num_hots=8, **TINY)
        _, _, params = spec.build()
        assert params.num_partitions == 16

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workload"):
            PointSpec("pattern9", "K2", 0.4).build()

    def test_error_sigma_threads_through(self):
        spec = PointSpec("pattern1", "CHAIN", 0.4, error_sigma=0.5, **TINY)
        workload, _, _ = spec.build()
        assert workload.error_sigma == 0.5


class TestFaultPlanField:
    def test_round_trip(self):
        plan = FaultPlan(abort_rate=0.25,
                         step_aborts=(StepAbort(3, 1, attempt=1),))
        spec = PointSpec("pattern1", "K2", 0.4, **TINY).with_fault_plan(plan)
        assert spec.fault_plan() == plan
        assert spec.with_fault_plan(None).fault_plan() is None

    def test_default_is_no_plan(self):
        assert PointSpec("pattern1", "K2", 0.4, **TINY).fault_plan() is None

    def test_spec_with_plan_stays_picklable_and_hashable(self):
        """The JSON form keeps specs shippable to pool workers."""
        spec = PointSpec("pattern1", "K2", 0.4, **TINY).with_fault_plan(
            FaultPlan(abort_rate=0.1))
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(spec)

    def test_plan_applies_during_run(self):
        spec = PointSpec("pattern1", "CHAIN", 0.5, **TINY).with_fault_plan(
            FaultPlan(abort_rate=0.4))
        metrics = run_point(spec)
        assert metrics.fault_aborts > 0


class TestRunPoints:
    def test_single_point(self):
        metrics = run_point(PointSpec("pattern1", "NODC", 0.3, **TINY))
        assert metrics.commits > 0
        assert metrics.scheduler == "NODC"

    def test_serial_equals_parallel(self):
        specs = sweep_specs("pattern1", ["NODC", "ASL"], [0.3], **TINY)
        serial = run_points(specs, processes=1)
        parallel = run_points(specs, processes=2)
        assert [m.commits for m in serial] == [m.commits for m in parallel]
        assert ([m.mean_response_time for m in serial]
                == [m.mean_response_time for m in parallel])

    def test_results_in_input_order(self):
        specs = sweep_specs("pattern1", ["NODC", "ASL"], [0.2, 0.4], **TINY)
        results = run_points(specs, processes=2)
        assert [m.scheduler for m in results] == ["NODC", "NODC",
                                                  "ASL", "ASL"]
        assert [m.arrival_rate_tps for m in results] == [0.2, 0.4, 0.2, 0.4]

    def test_empty(self):
        assert run_points([]) == []


class TestGrouping:
    def test_group_by_scheduler(self):
        specs = sweep_specs("pattern1", ["NODC", "ASL"], [0.2, 0.3], **TINY)
        metrics = run_points(specs, processes=1)
        grouped = group_by_scheduler(specs, metrics)
        assert set(grouped) == {"NODC", "ASL"}
        assert [m.arrival_rate_tps for m in grouped["NODC"]] == [0.2, 0.3]

    def test_misaligned_rejected(self):
        specs = sweep_specs("pattern1", ["NODC"], [0.2], **TINY)
        with pytest.raises(ExperimentError):
            group_by_scheduler(specs, [])
