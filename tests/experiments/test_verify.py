"""Tests for the claim-verification battery (tiny runs)."""

import pytest

from repro.experiments.verify import (ClaimCheck, report_verification,
                                      verify_paper_claims)


@pytest.fixture(scope="module")
def checks():
    # The battery's default horizon: short runs haven't built up the
    # backlog that makes C2PL collapse, so claims only stabilise here.
    return verify_paper_claims(sim_clocks=200_000, seed=1)


class TestBattery:
    def test_every_experiment_covered(self, checks):
        experiments = {c.experiment for c in checks}
        assert {"exp1", "exp2", "exp3", "exp4"} <= experiments
        assert "conclusion-4" in experiments

    def test_all_checks_carry_evidence(self, checks):
        for check in checks:
            assert check.evidence
            assert check.claim

    def test_headline_claims_pass_at_small_scale(self, checks):
        # The strongest, least scale-sensitive claims must hold even on
        # a 120k-clock battery.
        by_claim = {c.claim: c for c in checks}
        assert by_claim[
            "ASL/CHAIN/K2 far above C2PL under blocking (paper ~2x)"].passed
        assert by_claim[
            "declustering lifts BAT throughput (intra-txn "
            "parallelism)"].passed
        assert by_claim[
            "classic 2PL-with-restarts collapses on BATs"].passed


class TestReport:
    def test_report_format(self, checks):
        text = report_verification(checks)
        assert "verdict" in text
        assert "paper claims verified" in text

    def test_report_counts_failures(self):
        checks = [ClaimCheck("exp1", "a", True, "x"),
                  ClaimCheck("exp2", "b", False, "y")]
        text = report_verification(checks)
        assert "1/2" in text
        assert "1 FAILED" in text
        assert "FAIL" in text

    def test_progress_callback_invoked(self):
        seen = []
        verify_paper_claims(sim_clocks=40_000, seed=2,
                            progress=seen.append)
        assert any("experiment 1" in message for message in seen)
