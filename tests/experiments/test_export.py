"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.experiments import (ExperimentConfig, run_experiment1,
                               run_experiment2, run_experiment4)
from repro.experiments.export import (export_experiment1,
                                      export_experiment2,
                                      export_experiment4)

TINY = dict(sim_clocks=40_000.0, seed=3, arrival_rates=(0.3, 0.5))


def read_csv(path):
    with open(path) as handle:
        return list(csv.DictReader(handle))


class TestExport1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment1(ExperimentConfig(
            schedulers=("NODC", "ASL"), **TINY))

    def test_row_per_point(self, result, tmp_path):
        path = tmp_path / "exp1.csv"
        count = export_experiment1(result, path)
        rows = read_csv(path)
        assert count == len(rows) == 4  # 2 schedulers x 2 rates

    def test_columns_and_values(self, result, tmp_path):
        path = tmp_path / "exp1.csv"
        export_experiment1(result, path)
        rows = read_csv(path)
        assert set(rows[0]) == {"scheduler", "arrival_rate_tps",
                                "mean_rt_seconds", "throughput_tps",
                                "dn_utilization", "cn_utilization",
                                "commits"}
        assert {row["scheduler"] for row in rows} == {"NODC", "ASL"}
        assert all(float(row["throughput_tps"]) >= 0 for row in rows)


class TestExport2And4:
    def test_experiment2_long_form(self, tmp_path):
        result = run_experiment2(
            ExperimentConfig(schedulers=("ASL",), **TINY),
            num_hots_values=(4, 8))
        path = tmp_path / "exp2.csv"
        count = export_experiment2(result, path)
        rows = read_csv(path)
        assert count == len(rows) == 4  # 2 hots x 1 scheduler x 2 rates
        assert {row["num_hots"] for row in rows} == {"4", "8"}

    def test_experiment4_includes_sigma(self, tmp_path):
        result = run_experiment4(
            ExperimentConfig(schedulers=("K2",), **TINY),
            sigmas=(0.0, 1.0))
        path = tmp_path / "exp4.csv"
        export_experiment4(result, path)
        rows = read_csv(path)
        assert {row["sigma"] for row in rows} == {"0.0", "1.0"}
