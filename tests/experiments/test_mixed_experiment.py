"""Tests for the mixed-service extension experiment."""

import pytest

from repro.experiments.mixed import (MixedExperimentResult, report_mixed,
                                     run_mixed_experiment)

TINY = dict(sim_clocks=100_000.0, arrival_rate_tps=2.0, seed=2)


@pytest.fixture(scope="module")
def result():
    return run_mixed_experiment(bat_fractions=(0.0, 0.2),
                                schedulers=("C2PL", "K2"), **TINY)


class TestRun:
    def test_matrix_complete(self, result):
        assert set(result.metrics) == {"C2PL", "K2"}
        assert set(result.metrics["K2"]) == {0.0, 0.2}

    def test_short_rt_present_everywhere(self, result):
        for scheduler in result.schedulers:
            for fraction in result.bat_fractions:
                assert result.short_rt(scheduler, fraction) is not None

    def test_bat_rt_only_when_bats_present(self, result):
        assert result.bat_rt("K2", 0.0) is None
        assert result.bat_rt("K2", 0.2) is not None

    def test_bats_inflate_short_rt(self, result):
        for scheduler in result.schedulers:
            inflation = result.short_rt_inflation(scheduler)
            assert inflation is not None
            assert inflation > 1.5, scheduler

    def test_bat_rt_far_above_short_rt(self, result):
        for scheduler in result.schedulers:
            assert (result.bat_rt(scheduler, 0.2)
                    > result.short_rt(scheduler, 0.2))


class TestReport:
    def test_report_renders(self, result):
        text = report_mixed(result)
        assert "BAT share" in text
        assert "inflates" in text
        assert "K2" in text

    def test_table_rows_shape(self, result):
        rows = result.table_rows()
        assert len(rows) == 4  # 2 schedulers x 2 fractions
        assert rows[0][0] == "C2PL"
