"""Plumbing tests for the experiment harness (tiny scaled runs)."""

import pytest

from repro.experiments import (ExperimentConfig, run_experiment1,
                               run_experiment2, run_experiment3,
                               run_experiment4)
from repro.experiments.base import SchedulerCurve, useful_utilization
from repro.experiments.report import (report_experiment1, report_experiment2,
                                      report_experiment3, report_experiment4)
from repro.metrics.collector import RunMetrics

TINY = dict(sim_clocks=60_000.0, seed=2, arrival_rates=(0.3, 0.6))


def metrics(rate, rt, tps):
    return RunMetrics(scheduler="X", arrival_rate_tps=rate, sim_clocks=1000,
                      arrivals=10, commits=10, mean_response_time=rt,
                      max_response_time=rt, throughput_tps=tps,
                      mean_attempts=1, dn_utilization=0.5,
                      cn_utilization=0.1, weight_messages=0, lock_retries=0)


class TestSchedulerCurve:
    def test_series_accessors(self):
        curve = SchedulerCurve("X", [metrics(0.2, 10_000, 0.2),
                                     metrics(0.4, 90_000, 0.35)])
        assert curve.arrival_rates == [0.2, 0.4]
        assert curve.response_times_seconds == [10.0, 90.0]
        assert curve.throughputs == [0.2, 0.35]

    def test_throughput_at_rt(self):
        curve = SchedulerCurve("X", [metrics(0.2, 10_000, 0.2),
                                     metrics(0.4, 130_000, 0.4)])
        # RT crosses 70k halfway: rate 0.3, tps 0.3.
        assert curve.throughput_at_rt(70_000) == pytest.approx(0.3)

    def test_saturation_rate(self):
        curve = SchedulerCurve("X", [metrics(0.2, 10_000, 0.2),
                                     metrics(0.4, 130_000, 0.4)])
        assert curve.saturation_rate(70_000) == pytest.approx(0.3)

    def test_empty_curve(self):
        assert SchedulerCurve("X").throughput_at_rt() is None

    def test_useful_utilization(self):
        own = SchedulerCurve("X", [metrics(0.2, 80_000, 0.5)])
        nodc = SchedulerCurve("NODC", [metrics(0.2, 80_000, 1.0)])
        assert useful_utilization(own, nodc) == pytest.approx(0.5)


class TestExperiment1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment1(ExperimentConfig(
            schedulers=("C2PL", "NODC"), **TINY))

    def test_curves_per_scheduler(self, result):
        assert set(result.curves) == {"C2PL", "NODC"}
        assert len(result.curves["C2PL"].points) == 2

    def test_figure_series_shapes(self, result):
        fig6 = result.figure6_series()
        fig7 = result.figure7_series()
        assert set(fig6) == set(fig7) == {"C2PL", "NODC"}
        assert len(fig6["C2PL"]) == 2

    def test_report_renders(self, result):
        text = report_experiment1(result)
        assert "Figure 6" in text and "Figure 7" in text
        assert "C2PL" in text

    def test_useful_utilization_available(self, result):
        util = result.useful_utilization("C2PL")
        assert util is None or 0 < util <= 1.5


class TestExperiment2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment2(ExperimentConfig(
            schedulers=("ASL", "K2"), **TINY), num_hots_values=(4, 8))

    def test_matrix_shape(self, result):
        assert set(result.curves) == {4, 8}
        assert set(result.curves[4]) == {"ASL", "K2"}

    def test_figure8_series(self, result):
        series = result.figure8_series()
        assert len(series["K2"]) == 2

    def test_report_renders(self, result):
        assert "Figure 8" in report_experiment2(result)


class TestExperiment3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment3(ExperimentConfig(
            schedulers=("C2PL", "K2"), **TINY))

    def test_curves(self, result):
        assert set(result.curves) == {"C2PL", "K2"}

    def test_advantage_ratio(self, result):
        ratio = result.advantage_over("K2", "C2PL")
        assert ratio is None or ratio > 0

    def test_report_renders(self, result):
        assert "Figure 9" in report_experiment3(result)


class TestExperiment4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment4(
            ExperimentConfig(schedulers=("K2", "K2-C2PL"), **TINY),
            sigmas=(0.0, 1.0))

    def test_sigma_matrix(self, result):
        assert set(result.curves) == {0.0, 1.0}
        # K2-C2PL is weight-free: measured only at sigma = 0.
        assert "K2-C2PL" in result.curves[0.0]
        assert "K2-C2PL" not in result.curves[1.0]

    def test_sigma_invariant_fallback(self, result):
        zero = result.throughput_at_rt("K2-C2PL", 0.0)
        one = result.throughput_at_rt("K2-C2PL", 1.0)
        assert zero == one  # falls back to the sigma = 0 measurement

    def test_degradation_computable(self, result):
        loss = result.degradation("K2", 1.0)
        assert loss is None or -1.0 <= loss <= 1.0

    def test_report_renders(self, result):
        assert "Figure 10" in report_experiment4(result)


class TestPaperAnchors:
    def test_anchor_table_well_formed(self):
        from repro.experiments.paper import ANCHORS
        assert len(ANCHORS) >= 8
        experiments = {anchor.experiment for anchor in ANCHORS}
        assert experiments == {"exp1", "exp2", "exp3", "exp4"}

    def test_anchor_compare_formats(self):
        from repro.experiments.paper import Anchor
        anchor = Anchor("exp1", "test", 1.95, "x")
        assert "paper: 1.95x" in anchor.compare(2.1)
        assert anchor.compare(None) == "n/a"
