"""Tests for the placement (declustering) extension experiment."""

import pytest

from repro.experiments.placement import (PlacementExperimentResult,
                                         report_placement,
                                         run_placement_experiment)


@pytest.fixture(scope="module")
def result():
    return run_placement_experiment(schedulers=("K2", "NODC"),
                                    arrival_rate_tps=0.9,
                                    sim_clocks=150_000, seed=2)


class TestRun:
    def test_matrix_complete(self, result):
        assert set(result.metrics) == {"K2", "NODC"}
        for scheduler in result.metrics:
            assert set(result.metrics[scheduler]) == {
                "range-partitioned", "declustered"}

    def test_declustering_speeds_up_k2(self, result):
        assert result.speedup("K2") > 1.2

    def test_useful_utilization_rises(self, result):
        ranged = result.useful_utilization("K2", "range-partitioned")
        spread = result.useful_utilization("K2", "declustered")
        assert spread > ranged
        assert spread > 0.85  # the paper's >90 % territory

    def test_missing_nodc_raises(self):
        bare = PlacementExperimentResult(0.9, ("K2",))
        bare.metrics["K2"] = {}
        with pytest.raises(KeyError):
            bare.useful_utilization("K2", "declustered")


class TestReport:
    def test_report_renders(self, result):
        text = report_placement(result)
        assert "placement" in text
        assert "declustering x" in text
        assert "useful utilization" in text

    def test_table_rows(self, result):
        rows = result.table_rows()
        assert len(rows) == 4
        assert {row[1] for row in rows} == {"range-partitioned",
                                            "declustered"}
