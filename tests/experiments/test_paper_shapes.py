"""Automated checks of the paper's qualitative results (scaled runs).

These are the scientific regression tests: each asserts one ordering or
ratio the paper reports, on runs scaled to ~200k clocks so the whole
module stays under a minute.  Full-fidelity numbers live in
EXPERIMENTS.md; if an implementation change breaks one of these, the
reproduction itself has regressed.
"""

import pytest

from repro import SimulationParameters, run_simulation
from repro.workloads import (pattern1, pattern1_catalog, pattern2,
                             pattern2_catalog, pattern3, pattern3_catalog)

CLOCKS = 200_000
SEED = 1


def tps(scheduler, workload, catalog, rate, num_partitions, seed=SEED):
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=rate,
                                  sim_clocks=CLOCKS, seed=seed,
                                  num_partitions=num_partitions)
    return run_simulation(params, workload, catalog=catalog
                          ).metrics.throughput_tps


@pytest.fixture(scope="module")
def exp1_tps():
    """Pattern1 at a contended rate, one point per scheduler."""
    return {name: tps(name, pattern1(16), pattern1_catalog(), 0.6, 16)
            for name in ("ASL", "C2PL", "CHAIN", "K2", "NODC")}


class TestExperiment1Shape:
    def test_good_schedulers_beat_c2pl_strongly(self, exp1_tps):
        """Paper: ASL/CHAIN/K2 at 1.9-2.0x C2PL (blocking case)."""
        for name in ("ASL", "CHAIN", "K2"):
            assert exp1_tps[name] > 1.5 * exp1_tps["C2PL"], name

    def test_wtpg_schedulers_track_asl(self, exp1_tps):
        """Paper: CHAIN and K2 avoid chains of blocking as well as ASL."""
        for name in ("CHAIN", "K2"):
            assert exp1_tps[name] > 0.8 * exp1_tps["ASL"], name

    def test_nodc_upper_bounds(self, exp1_tps):
        best_real = max(v for k, v in exp1_tps.items() if k != "NODC")
        assert exp1_tps["NODC"] >= best_real - 0.05


@pytest.fixture(scope="module")
def exp2_small_hot_set():
    """Pattern2 at NumHots=4 (intense hot-set contention)."""
    return {name: tps(name, pattern2(num_hots=4),
                      pattern2_catalog(num_hots=4), 0.9, 12)
            for name in ("ASL", "C2PL", "CHAIN", "K2")}


@pytest.fixture(scope="module")
def exp2_large_hot_set():
    """Pattern2 at NumHots=16 (milder contention)."""
    return {name: tps(name, pattern2(num_hots=16),
                      pattern2_catalog(num_hots=16), 0.9, 24)
            for name in ("ASL", "C2PL", "CHAIN", "K2")}


class TestExperiment2Shape:
    def test_k2_best_on_hot_sets(self, exp2_small_hot_set):
        """Paper: K2 performs best (no WTPG shape constraint)."""
        k2 = exp2_small_hot_set["K2"]
        for name in ("ASL", "CHAIN"):
            assert k2 > exp2_small_hot_set[name], name

    def test_asl_worst_on_small_hot_set(self, exp2_small_hot_set):
        """Paper: ASL starts the fewest transactions, lowest throughput."""
        asl = exp2_small_hot_set["ASL"]
        for name in ("C2PL", "CHAIN", "K2"):
            assert asl < exp2_small_hot_set[name], name

    def test_chain_recovers_on_larger_hot_set(self, exp2_small_hot_set,
                                              exp2_large_hot_set):
        """Paper: CHAIN's chain-form penalty fades as NumHots grows;
        at NumHots=16 both WTPG schedulers beat C2PL."""
        assert exp2_large_hot_set["CHAIN"] > exp2_large_hot_set["C2PL"]
        assert exp2_large_hot_set["K2"] > exp2_large_hot_set["C2PL"]
        small_gap = (exp2_small_hot_set["K2"]
                     - exp2_small_hot_set["CHAIN"])
        large_gap = (exp2_large_hot_set["K2"]
                     - exp2_large_hot_set["CHAIN"])
        assert large_gap < small_gap


class TestExperiment3Shape:
    def test_c2pl_sensitive_to_blocking_time(self):
        """Paper: Pattern3's longer blocking collapses C2PL ~30 % below
        its Pattern2 value at the same NumHots."""
        p2 = tps("C2PL", pattern2(num_hots=8), pattern2_catalog(num_hots=8),
                 0.9, 16)
        p3 = tps("C2PL", pattern3(num_hots=8), pattern3_catalog(num_hots=8),
                 0.9, 16)
        assert p3 < p2

    def test_wtpg_schedulers_stay_ahead_on_pattern3(self):
        values = {name: tps(name, pattern3(num_hots=8),
                            pattern3_catalog(num_hots=8), 0.9, 16)
                  for name in ("ASL", "C2PL", "CHAIN", "K2")}
        for winner in ("CHAIN", "K2"):
            for loser in ("ASL", "C2PL"):
                assert values[winner] > values[loser], (winner, loser)


class TestExperiment4Shape:
    def test_wtpg_schedulers_survive_bad_estimates(self):
        """Paper: even at sigma = 1 both stay far above C2PL."""
        c2pl = tps("C2PL", pattern1(16), pattern1_catalog(), 0.6, 16)
        for name in ("CHAIN", "K2"):
            noisy = tps(name, pattern1(16, error_sigma=1.0),
                        pattern1_catalog(), 0.6, 16)
            assert noisy > 1.3 * c2pl, name

    def test_degradation_is_bounded(self):
        """Paper: CHAIN loses ~4.6 %, K2 ~13.8 % at sigma = 1; allow a
        generous band for the scaled horizon."""
        for name in ("CHAIN", "K2"):
            exact = tps(name, pattern1(16), pattern1_catalog(), 0.6, 16)
            noisy = tps(name, pattern1(16, error_sigma=1.0),
                        pattern1_catalog(), 0.6, 16)
            loss = 1 - noisy / exact
            assert loss < 0.35, name

    def test_admission_constraints_alone_beat_plain_c2pl(self):
        """Paper Figure 10's lower bounds: both hybrids sit above plain
        C2PL (their admission constraints bound the blocking chains).

        The paper's *gap between* the two hybrids (CHAIN-C2PL 0.58 vs
        K2-C2PL 0.36 TPS) only emerges at the RT = 70 s congestion
        regime of full-length runs — see EXPERIMENTS.md — so this scaled
        test asserts only the part visible at 200k clocks.
        """
        c2pl = tps("C2PL", pattern1(16), pattern1_catalog(), 0.6, 16)
        for name in ("CHAIN-C2PL", "K2-C2PL"):
            hybrid = tps(name, pattern1(16), pattern1_catalog(), 0.6, 16)
            assert hybrid > c2pl, name
