"""Checkpoint/resume correctness for the sweep runner.

Interrupt-and-resume must equal never-interrupted, finished work must
never re-execute, and anything that would silently merge incomparable
results — corruption, a code change, a different grid — must fail loudly
with :class:`~repro.errors.CheckpointError`.
"""

import json

import pytest

from repro.errors import CheckpointError, SweepInterrupted
from repro.experiments import parallel
from repro.experiments.parallel import (SweepSpec, read_checkpoint,
                                        run_sweep, sweep_status)
from repro.experiments.runner import PointSpec

CLOCKS = 15_000.0


def _sweep(replications=2):
    points = tuple(PointSpec("pattern1", scheduler, 0.5, sim_clocks=CLOCKS)
                   for scheduler in ("CHAIN", "K2"))
    return SweepSpec(points=points, root_seed=11, replications=replications)


def _dicts(result):
    return {key: metrics.as_dict() for key, metrics in result.results.items()}


class TestResume:
    def test_interrupt_then_resume_equals_uninterrupted(self, tmp_path):
        sweep = _sweep()          # 2 points x 2 replications = 4 tasks
        ckpt = tmp_path / "grid.jsonl"
        with pytest.raises(SweepInterrupted, match="2/4 tasks"):
            run_sweep(sweep, checkpoint=ckpt, task_budget=2)
        resumed = run_sweep(sweep, checkpoint=ckpt)
        assert resumed.reused == 2 and resumed.executed == 2
        uninterrupted = run_sweep(sweep)
        assert _dicts(resumed) == _dicts(uninterrupted)

    def test_finished_sweep_never_reexecutes(self, tmp_path, monkeypatch):
        sweep = _sweep(replications=1)
        ckpt = tmp_path / "grid.jsonl"
        first = run_sweep(sweep, checkpoint=ckpt)
        assert first.executed == 2 and first.reused == 0

        def forbidden(task):
            raise AssertionError(f"re-executed finished task {task.key}")

        monkeypatch.setattr(parallel, "_execute_task", forbidden)
        again = run_sweep(sweep, checkpoint=ckpt)
        assert again.executed == 0 and again.reused == 2
        assert _dicts(again) == _dicts(first)

    def test_resume_with_more_workers_is_identical(self, tmp_path):
        sweep = _sweep()
        ckpt = tmp_path / "grid.jsonl"
        with pytest.raises(SweepInterrupted):
            run_sweep(sweep, checkpoint=ckpt, max_workers=1, task_budget=1)
        resumed = run_sweep(sweep, checkpoint=ckpt, max_workers=4)
        assert _dicts(resumed) == _dicts(run_sweep(sweep))

    def test_progress_fires_only_for_new_tasks(self, tmp_path):
        sweep = _sweep(replications=1)
        ckpt = tmp_path / "grid.jsonl"
        run_sweep(sweep, checkpoint=ckpt)
        lines = []
        run_sweep(sweep, checkpoint=ckpt, progress=lines.append)
        assert lines == []


class TestRejection:
    def test_stale_fingerprint_rejected(self, tmp_path):
        sweep = _sweep(replications=1)
        ckpt = tmp_path / "grid.jsonl"
        with pytest.raises(SweepInterrupted):
            run_sweep(sweep, checkpoint=ckpt, task_budget=1)
        lines = ckpt.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * 64   # as if the simulator changed
        ckpt.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            run_sweep(sweep, checkpoint=ckpt)

    def test_checkpoint_of_other_sweep_rejected(self, tmp_path):
        ckpt = tmp_path / "grid.jsonl"
        run_sweep(_sweep(replications=1), checkpoint=ckpt)
        other = SweepSpec(points=(
            PointSpec("pattern1", "C2PL", 0.5, sim_clocks=CLOCKS),),
            root_seed=11)
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            run_sweep(other, checkpoint=ckpt)

    def test_corrupt_midfile_line_rejected(self, tmp_path):
        sweep = _sweep(replications=1)
        ckpt = tmp_path / "grid.jsonl"
        run_sweep(sweep, checkpoint=ckpt)
        lines = ckpt.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]   # mangle a middle line
        ckpt.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="not\\s+JSON"):
            run_sweep(sweep, checkpoint=ckpt)

    def test_missing_header_rejected(self, tmp_path):
        ckpt = tmp_path / "grid.jsonl"
        ckpt.write_text('{"kind": "result", "key": "x", "metrics": {}}\n')
        with pytest.raises(CheckpointError, match="header"):
            read_checkpoint(ckpt)

    def test_empty_file_rejected(self, tmp_path):
        ckpt = tmp_path / "grid.jsonl"
        ckpt.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            read_checkpoint(ckpt)

    def test_duplicate_task_rejected(self, tmp_path):
        sweep = _sweep(replications=1)
        ckpt = tmp_path / "grid.jsonl"
        run_sweep(sweep, checkpoint=ckpt)
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines + [lines[1]]) + "\n")
        with pytest.raises(CheckpointError, match="recorded twice"):
            read_checkpoint(ckpt)

    def test_format_bump_rejected(self, tmp_path):
        sweep = _sweep(replications=1)
        ckpt = tmp_path / "grid.jsonl"
        run_sweep(sweep, checkpoint=ckpt)
        lines = ckpt.read_text().splitlines()
        header = json.loads(lines[0])
        header["format"] = 999
        ckpt.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(CheckpointError, match="format"):
            read_checkpoint(ckpt)


class TestKillDebris:
    def test_truncated_final_line_tolerated(self, tmp_path):
        """A kill mid-append leaves half a line; the task just re-runs."""
        sweep = _sweep(replications=1)
        ckpt = tmp_path / "grid.jsonl"
        run_sweep(sweep, checkpoint=ckpt)
        text = ckpt.read_text()
        ckpt.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        resumed = run_sweep(sweep, checkpoint=ckpt)
        assert resumed.reused == 1 and resumed.executed == 1
        assert _dicts(resumed) == _dicts(run_sweep(sweep))


class TestStatus:
    def test_status_reports_progress_and_freshness(self, tmp_path):
        sweep = _sweep()
        ckpt = tmp_path / "grid.jsonl"
        with pytest.raises(SweepInterrupted):
            run_sweep(sweep, checkpoint=ckpt, task_budget=3)
        status = sweep_status(ckpt)
        assert status["total_tasks"] == 4
        assert status["done_tasks"] == 3
        assert status["points"] == 2
        assert status["replications"] == 2
        assert status["root_seed"] == 11
        assert status["stale"] is False

    def test_status_flags_stale(self, tmp_path):
        sweep = _sweep(replications=1)
        ckpt = tmp_path / "grid.jsonl"
        run_sweep(sweep, checkpoint=ckpt)
        lines = ckpt.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * 64
        ckpt.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        assert sweep_status(ckpt)["stale"] is True
