"""Cross-process determinism proofs for the parallel sweep runner.

The guarantee under test: a sweep's results are a pure function of the
sweep definition and its root seed — worker count, worker scheduling and
submission order cannot perturb a single bit.  Every test compares full
``RunMetrics.as_dict()`` payloads, not summary statistics, so even a
one-ulp drift in a histogram would fail.
"""

import random

import pytest

from repro.errors import ExperimentError
from repro.experiments.parallel import (SweepSpec, SweepTask, point_key,
                                        resolve_workers, run_sweep,
                                        run_tasks, task_seed)
from repro.experiments.runner import PointSpec, run_points, sweep_specs
from repro.faults import FaultPlan

# Structural determinism needs contention, not statistical power: short
# horizons keep the full workers-1/2/4 matrix affordable in CI.
CLOCKS = 20_000.0
SCHEDULERS = ("CHAIN", "K2", "C2PL", "2PL")


def _points(fault_plan=None):
    plan_json = None if fault_plan is None else fault_plan.to_json()
    return tuple(PointSpec("pattern1", scheduler, 0.5, sim_clocks=CLOCKS,
                           fault_plan_json=plan_json)
                 for scheduler in SCHEDULERS)


def _dicts(result):
    return {key: metrics.as_dict() for key, metrics in result.results.items()}


class TestSweepDeterminism:
    def test_serial_equals_parallel_all_schedulers(self):
        """workers=1, 2 and 4 produce bit-identical per-task metrics."""
        sweep = SweepSpec(points=_points(), root_seed=7, replications=2)
        baseline = _dicts(run_sweep(sweep, max_workers=1))
        for workers in (2, 4):
            assert _dicts(run_sweep(sweep, max_workers=workers)) == baseline

    def test_fault_plan_grid_deterministic(self):
        """Fault injection rides the same derived streams: still identical."""
        plan = FaultPlan(abort_rate=0.3)
        sweep = SweepSpec(points=_points(plan), root_seed=3)
        serial = _dicts(run_sweep(sweep, max_workers=1))
        assert _dicts(run_sweep(sweep, max_workers=2)) == serial
        assert any(d["fault_aborts"] > 0 for d in serial.values())

    def test_point_order_does_not_change_results(self):
        """Shuffling the grid definition shuffles nothing but row order."""
        forward = SweepSpec(points=_points(), root_seed=7)
        backward = SweepSpec(points=tuple(reversed(_points())), root_seed=7)
        assert _dicts(run_sweep(forward, max_workers=2)) \
            == _dicts(run_sweep(backward, max_workers=2))

    def test_grid_rows_follow_definition_order(self):
        sweep = SweepSpec(points=_points(), root_seed=7)
        rows = run_sweep(sweep, max_workers=2).grid()
        assert [row["scheduler"] for row in rows] == list(SCHEDULERS)
        assert all(row["commits"] > 0 for row in rows)

    def test_replication_summary_has_intervals(self):
        sweep = SweepSpec(points=_points()[:1], root_seed=7, replications=3)
        result = run_sweep(sweep, max_workers=2)
        summary = result.point_summary(sweep.points[0])
        assert summary["replications"] == 3.0
        assert summary["throughput_tps_ci"] >= 0.0
        # Replications use distinct derived seeds, so they differ.
        runs = result.point_runs(sweep.points[0])
        assert len({run.commits for run in runs}) > 1 or len(runs) == 1


class TestSeedDerivation:
    def test_task_seed_is_pure(self):
        assert task_seed(7, "k") == task_seed(7, "k")
        assert task_seed(7, "k") != task_seed(8, "k")
        assert task_seed(7, "k") != task_seed(7, "l")

    def test_spec_seed_field_does_not_identify_a_point(self):
        """point_key ignores seed: the runner owns seed derivation."""
        a = PointSpec("pattern1", "K2", 0.5, seed=1)
        b = PointSpec("pattern1", "K2", 0.5, seed=99)
        assert point_key(a) == point_key(b)
        with pytest.raises(ExperimentError, match="duplicate"):
            SweepSpec(points=(a, b))

    def test_task_seeds_survive_definition_shuffle(self):
        """Per-key seeds are identical however the grid is ordered."""
        points = list(_points())
        random.Random(0).shuffle(points)
        shuffled = SweepSpec(points=tuple(points), root_seed=7)
        original = SweepSpec(points=_points(), root_seed=7)
        assert {t.key: t.seed for t in shuffled.tasks()} \
            == {t.key: t.seed for t in original.tasks()}

    def test_replications_get_distinct_seeds(self):
        sweep = SweepSpec(points=_points()[:1], root_seed=7, replications=4)
        seeds = [t.seed for t in sweep.tasks()]
        assert len(set(seeds)) == len(seeds)

    def test_sweep_validation(self):
        with pytest.raises(ExperimentError, match="at least one point"):
            SweepSpec(points=())
        with pytest.raises(ExperimentError, match="replications"):
            SweepSpec(points=_points()[:1], replications=0)


class TestExecutor:
    def test_run_points_identical_for_any_worker_count(self):
        specs = sweep_specs("pattern1", ["CHAIN", "2PL"], [0.4, 0.6],
                            sim_clocks=CLOCKS, seed=5)
        baseline = [m.as_dict() for m in run_points(specs, processes=1)]
        for workers in (2, 4):
            assert [m.as_dict()
                    for m in run_points(specs, processes=workers)] == baseline

    def test_resolve_workers(self):
        assert resolve_workers(4, 2) == 2
        assert resolve_workers(2, 10) == 2
        assert resolve_workers(None, 3) >= 1
        assert resolve_workers(5, 0) == 1
        with pytest.raises(ExperimentError):
            resolve_workers(0, 3)

    def test_run_tasks_returns_task_order(self):
        specs = _points()[:2]
        tasks = [SweepTask(spec=spec, replication=0, key=f"t{i}",
                           seed=task_seed(1, f"t{i}"))
                 for i, spec in enumerate(specs)]
        seen = []
        results = run_tasks(tasks, max_workers=2,
                            on_result=lambda t, m: seen.append(t.key))
        assert list(results) == ["t0", "t1"]   # definition order, always
        assert sorted(seen) == ["t0", "t1"]    # completion order may vary

    def test_run_tasks_empty(self):
        assert run_tasks([], max_workers=4) == {}
