"""Tests for the EXPERIMENTS.md report parsers (scripts/)."""

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / \
    "build_experiments_md.py"


@pytest.fixture(scope="module")
def mod():
    spec = importlib.util.spec_from_file_location("build_experiments_md",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


EXP1_SAMPLE = """Readings at mean RT = 70 s:
  ASL        TPS@RT70 = 0.687, useful utilization 69%
  C2PL       TPS@RT70 = 0.285, useful utilization 29%
  NODC       TPS@RT70 = 0.999, useful utilization 100%
  NODC saturation rate λ_S = 1.04 TPS (paper: 1.08)
"""

EXP2_SAMPLE = """Figure 8: NumHots vs throughput at RT = 70 s (TPS)
NumHots    ASL   C2PL  CHAIN     K2
-------  -----  -----  -----  -----
      4  0.248  0.457  0.331  0.476
      8  0.333  0.502  0.512  0.672
"""

EXP4_SAMPLE = """Figure 10: error ratio sigma vs throughput at RT = 70 s
sigma  CHAIN     K2
-----  -----  -----
0.000  0.611  0.599
1.000  0.576  0.529

  CHAIN loss at sigma=1: 5.8% (paper at sigma=1: 4.6%)
  K2 loss at sigma=1: 11.8% (paper at sigma=1: 13.8%)
"""


class TestParsers:
    def test_tps_readings(self, mod):
        readings = mod.tps_readings(EXP1_SAMPLE)
        assert readings["ASL"] == (0.687, 69)
        assert readings["C2PL"][0] == 0.285

    def test_saturation_regex(self, mod):
        assert float(mod.SATURATION.search(EXP1_SAMPLE).group(1)) == 1.04

    def test_figure8_table(self, mod):
        table = mod.figure8_table(EXP2_SAMPLE)
        assert table[4]["K2"] == 0.476
        assert table[8]["ASL"] == 0.333
        assert set(table) == {4, 8}

    def test_figure10_table(self, mod):
        table = mod.figure10_table(EXP4_SAMPLE)
        assert table[0.0]["CHAIN"] == 0.611
        assert table[1.0]["K2"] == 0.529

    def test_loss_lines(self, mod):
        losses = {m.group(1): float(m.group(3))
                  for m in mod.LOSS_LINE.finditer(EXP4_SAMPLE)}
        assert losses == {"CHAIN": 5.8, "K2": 11.8}

    def test_missing_results_give_clear_error(self, mod, monkeypatch,
                                              tmp_path):
        monkeypatch.setattr(mod, "RESULTS", tmp_path)
        with pytest.raises(SystemExit, match="missing"):
            mod.read("exp1")


class TestEndToEnd:
    def test_build_runs_against_real_results(self, mod):
        # The repository ships the full-fidelity reports; building the
        # document from them must succeed and contain the verdict table.
        if not (mod.RESULTS / "exp4.txt").exists():
            pytest.skip("full results not generated yet")
        text = mod.build()
        assert "| Exp |" in text
        assert "Experiment 1 (Figures 6 and 7)" in text
