"""Tests for the command-line interface (tiny runs)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_exp_flags(self):
        args = build_parser().parse_args(
            ["exp1", "--clocks", "1000", "--rates", "0.2,0.4",
             "--schedulers", "asl,k2", "--quiet"])
        assert args.clocks == 1000
        assert args.rates == "0.2,0.4"

    def test_exp2_num_hots(self):
        args = build_parser().parse_args(["exp2", "--num-hots", "4,8"])
        assert args.num_hots == "4,8"

    def test_exp4_sigmas(self):
        args = build_parser().parse_args(["exp4", "--sigmas", "0,1"])
        assert args.sigmas == "0,1"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NumNodes" in out
        assert "ObjTime" in out

    def test_run(self, capsys):
        assert main(["run", "--scheduler", "NODC", "--rate", "0.3",
                     "--clocks", "60000"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "NODC" in out

    def test_exp1_tiny(self, capsys):
        code = main(["exp1", "--clocks", "40000", "--rates", "0.3",
                     "--schedulers", "NODC", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Figure 7" in out

    def test_exp2_tiny(self, capsys):
        code = main(["exp2", "--clocks", "40000", "--rates", "0.3",
                     "--schedulers", "ASL", "--num-hots", "4", "--quiet"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_exp3_tiny(self, capsys):
        code = main(["exp3", "--clocks", "40000", "--rates", "0.3",
                     "--schedulers", "C2PL", "--quiet"])
        assert code == 0
        assert "Figure 9" in capsys.readouterr().out

    def test_exp4_tiny(self, capsys):
        code = main(["exp4", "--clocks", "40000", "--rates", "0.3",
                     "--schedulers", "K2", "--sigmas", "0,1", "--quiet"])
        assert code == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_mixed_tiny(self, capsys):
        assert main(["mixed", "--clocks", "60000", "--rate", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "BAT share" in out

    def test_placement_tiny(self, capsys):
        assert main(["placement", "--clocks", "60000"]) == 0
        out = capsys.readouterr().out
        assert "declustered" in out

    def test_progress_goes_to_stderr(self, capsys):
        main(["exp1", "--clocks", "40000", "--rates", "0.3",
              "--schedulers", "NODC"])
        captured = capsys.readouterr()
        assert "NODC" in captured.err  # progress line
