"""Tests for the command-line interface (tiny runs)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_exp_flags(self):
        args = build_parser().parse_args(
            ["exp1", "--clocks", "1000", "--rates", "0.2,0.4",
             "--schedulers", "asl,k2", "--quiet"])
        assert args.clocks == 1000
        assert args.rates == "0.2,0.4"

    def test_exp2_num_hots(self):
        args = build_parser().parse_args(["exp2", "--num-hots", "4,8"])
        assert args.num_hots == "4,8"

    def test_exp4_sigmas(self):
        args = build_parser().parse_args(["exp4", "--sigmas", "0,1"])
        assert args.sigmas == "0,1"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NumNodes" in out
        assert "ObjTime" in out

    def test_run(self, capsys):
        assert main(["run", "--scheduler", "NODC", "--rate", "0.3",
                     "--clocks", "60000"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "NODC" in out

    def test_exp1_tiny(self, capsys):
        code = main(["exp1", "--clocks", "40000", "--rates", "0.3",
                     "--schedulers", "NODC", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Figure 7" in out

    def test_exp2_tiny(self, capsys):
        code = main(["exp2", "--clocks", "40000", "--rates", "0.3",
                     "--schedulers", "ASL", "--num-hots", "4", "--quiet"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_exp3_tiny(self, capsys):
        code = main(["exp3", "--clocks", "40000", "--rates", "0.3",
                     "--schedulers", "C2PL", "--quiet"])
        assert code == 0
        assert "Figure 9" in capsys.readouterr().out

    def test_exp4_tiny(self, capsys):
        code = main(["exp4", "--clocks", "40000", "--rates", "0.3",
                     "--schedulers", "K2", "--sigmas", "0,1", "--quiet"])
        assert code == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_mixed_tiny(self, capsys):
        assert main(["mixed", "--clocks", "60000", "--rate", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "BAT share" in out

    def test_placement_tiny(self, capsys):
        assert main(["placement", "--clocks", "60000"]) == 0
        out = capsys.readouterr().out
        assert "declustered" in out

    def test_progress_goes_to_stderr(self, capsys):
        main(["exp1", "--clocks", "40000", "--rates", "0.3",
              "--schedulers", "NODC"])
        captured = capsys.readouterr()
        assert "NODC" in captured.err  # progress line


class TestSweepCommand:
    RUN = ["sweep", "run", "--schedulers", "CHAIN,K2", "--rates", "0.5",
           "--clocks", "15000", "--replications", "2", "--quiet"]

    def test_run_prints_merged_grid(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "pattern1/CHAIN" in out and "pattern1/K2" in out
        assert "±" in out                      # CI half-widths rendered
        assert "4 executed" in out

    def test_interrupt_status_resume_flow(self, tmp_path, capsys):
        ckpt = str(tmp_path / "grid.jsonl")
        budgeted = self.RUN + ["--checkpoint", ckpt, "--task-budget", "3"]
        assert main(budgeted) == 3             # interrupted, resumable
        assert "interrupted" in capsys.readouterr().err

        assert main(["sweep", "status", "--checkpoint", ckpt]) == 0
        out = capsys.readouterr().out
        assert "done_tasks" in out and "3" in out
        assert "stale" in out and "False" in out

        assert main(["sweep", "resume", "--checkpoint", ckpt,
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "1 executed, 3 resumed" in out

    def test_jobs_flag_changes_nothing(self, tmp_path, capsys):
        assert main(self.RUN) == 0
        serial = capsys.readouterr().out
        assert main(self.RUN + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial
