"""Unit tests for SimulationParameters (Table 1)."""

import pytest

from repro import SimulationParameters
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_stated_values(self):
        params = SimulationParameters()
        assert params.num_nodes == 8
        assert params.obj_time == 1000.0      # 1 second
        assert params.keep_time == 5000.0     # control-saving period
        assert params.sim_clocks == 2_000_000

    def test_mean_interarrival(self):
        params = SimulationParameters(arrival_rate_tps=0.5)
        assert params.mean_interarrival_clocks == 2000.0

    def test_placement_rule(self):
        params = SimulationParameters(num_partitions=16, num_nodes=8)
        assert params.node_of_partition(0) == 0
        assert params.node_of_partition(9) == 1
        with pytest.raises(ConfigurationError):
            params.node_of_partition(16)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_nodes": 0},
        {"num_partitions": 0},
        {"obj_time": 0},
        {"arrival_rate_tps": 0},
        {"sim_clocks": 0},
        {"warmup_clocks": -1},
        {"warmup_clocks": 2_000_000},
        {"startup_time": -1},
        {"retry_delay": -0.5},
        {"k_conflicts": -1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationParameters(**kwargs)

    def test_with_overrides_is_a_copy(self):
        base = SimulationParameters()
        hot = base.with_overrides(arrival_rate_tps=1.0, scheduler="K2")
        assert base.arrival_rate_tps != 1.0
        assert hot.scheduler == "K2"
        assert hot.num_nodes == base.num_nodes


class TestSchedulerKwargs:
    def test_chain_gets_chaintime_and_keeptime(self):
        params = SimulationParameters(scheduler="CHAIN", chain_time=33,
                                      keep_time=77, admission_time=3)
        assert params.scheduler_kwargs() == {
            "chaintime": 33, "keeptime": 77, "admission_time": 3}

    def test_k2_gets_kwtpgtime(self):
        params = SimulationParameters(scheduler="K2", kwtpg_time=11)
        kwargs = params.scheduler_kwargs()
        assert kwargs["kwtpgtime"] == 11

    def test_c2pl_family_gets_ddtime(self):
        for name in ("C2PL", "CHAIN-C2PL", "K2-C2PL"):
            params = SimulationParameters(scheduler=name, dd_time=9,
                                          admission_time=3)
            assert params.scheduler_kwargs() == {"ddtime": 9,
                                                 "admission_time": 3}

    def test_asl_gets_admission_time(self):
        params = SimulationParameters(scheduler="ASL", admission_time=3)
        assert params.scheduler_kwargs() == {"admission_time": 3}

    def test_nodc_gets_nothing(self):
        assert SimulationParameters(scheduler="NODC").scheduler_kwargs() == {}

    def test_factory_integration(self):
        from repro import make_scheduler
        params = SimulationParameters(scheduler="CHAIN", chain_time=42)
        sched = make_scheduler(params.scheduler, **params.scheduler_kwargs())
        assert sched.chaintime == 42


class TestTable1:
    def test_table1_lists_all_paper_parameters(self):
        table = SimulationParameters().table1()
        for key in ("NumNodes", "ObjTime", "chaintime", "kwtpgtime",
                    "ddtime", "keeptime (period of control-saving)"):
            assert key in table
        assert table["ObjTime"] == "1000 ms"
        assert table["multiprogramming level"] == "infinity"
