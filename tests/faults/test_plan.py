"""The fault-plan DSL: validation, JSON round-trip, emptiness."""

import pytest

from repro.errors import ConfigurationError, FaultPlanError
from repro.faults import (FaultPlan, NodeCrash, PartitionSlowdown,
                          RetryPolicy, StepAbort)


class TestValidation:
    def test_empty_plan_is_valid_and_empty(self):
        plan = FaultPlan()
        assert plan.empty()
        assert not plan.distorts_declarations()

    def test_any_fault_makes_plan_non_empty(self):
        assert not FaultPlan(abort_rate=0.1).empty()
        assert not FaultPlan(crashes=(NodeCrash(0, 10.0),)).empty()
        assert not FaultPlan(step_aborts=(StepAbort(1, 0),)).empty()
        assert not FaultPlan(
            slowdowns=(PartitionSlowdown(0, 2.0, 0.0, 10.0),)).empty()
        assert not FaultPlan(declared_cost_sigma=0.5).empty()
        assert not FaultPlan(declared_cost_factor=0.5).empty()
        assert not FaultPlan(cascade=True).empty()
        assert not FaultPlan(retry=RetryPolicy()).empty()

    def test_abort_rate_range(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(abort_rate=-0.1)
        with pytest.raises(FaultPlanError):
            FaultPlan(abort_rate=1.5)

    def test_crash_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(NodeCrash(-1, 10.0),))
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(NodeCrash(0, -5.0),))
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(NodeCrash(0, 10.0, recover_at=5.0),))

    def test_step_abort_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(step_aborts=(StepAbort(1, -1),))
        with pytest.raises(FaultPlanError):
            FaultPlan(step_aborts=(StepAbort(1, 0, attempt=0),))

    def test_duplicate_step_abort_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate"):
            FaultPlan(step_aborts=(StepAbort(1, 0), StepAbort(1, 2)))

    def test_same_tid_different_attempts_allowed(self):
        plan = FaultPlan(step_aborts=(StepAbort(1, 0, attempt=1),
                                      StepAbort(1, 0, attempt=2)))
        assert len(plan.step_aborts) == 2

    def test_slowdown_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(slowdowns=(PartitionSlowdown(0, 0.0, 0.0, 10.0),))
        with pytest.raises(FaultPlanError):
            FaultPlan(slowdowns=(PartitionSlowdown(0, 2.0, 10.0, 10.0),))
        with pytest.raises(FaultPlanError):
            FaultPlan(slowdowns=(PartitionSlowdown(-1, 2.0, 0.0, 10.0),))

    def test_declared_cost_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(declared_cost_sigma=-0.1)
        with pytest.raises(FaultPlanError):
            FaultPlan(declared_cost_factor=0.0)

    def test_retry_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(retry=RetryPolicy(kind="bogus"))
        with pytest.raises(FaultPlanError):
            FaultPlan(retry=RetryPolicy(delay=-1.0))
        with pytest.raises(FaultPlanError):
            FaultPlan(retry=RetryPolicy(kind="exponential", cap=0.0))

    def test_plan_error_is_a_configuration_error(self):
        # CLI callers that already catch ConfigurationError keep working.
        assert issubclass(FaultPlanError, ConfigurationError)


class TestRetryPolicy:
    def test_immediate_is_zero(self):
        policy = RetryPolicy(kind="immediate")
        assert policy.delay_for(1, 500.0) == 0.0
        assert policy.delay_for(9, 500.0) == 0.0

    def test_fixed_defaults_to_machine_delay(self):
        # The default policy must hand back the machine's retry_delay
        # bit-exactly: this is what keeps fault-free runs byte-identical.
        assert RetryPolicy().delay_for(1, 500.0) == 500.0
        assert RetryPolicy().delay_for(7, 500.0) == 500.0

    def test_fixed_with_explicit_delay(self):
        assert RetryPolicy(delay=123.0).delay_for(3, 500.0) == 123.0

    def test_exponential_doubles_per_attempt(self):
        policy = RetryPolicy(kind="exponential", delay=100.0)
        assert policy.delay_for(1, 500.0) == 100.0
        assert policy.delay_for(2, 500.0) == 200.0
        assert policy.delay_for(3, 500.0) == 400.0

    def test_exponential_clamped_at_cap(self):
        policy = RetryPolicy(kind="exponential", delay=100.0, cap=250.0)
        assert policy.delay_for(1, 500.0) == 100.0
        assert policy.delay_for(2, 500.0) == 200.0
        assert policy.delay_for(3, 500.0) == 250.0
        assert policy.delay_for(10, 500.0) == 250.0

    def test_exponential_without_delay_uses_machine_delay(self):
        policy = RetryPolicy(kind="exponential")
        assert policy.delay_for(2, 500.0) == 1000.0


class TestJsonRoundTrip:
    def full_plan(self):
        return FaultPlan(
            crashes=(NodeCrash(2, 10_000.0, recover_at=20_000.0),
                     NodeCrash(5, 50_000.0)),
            step_aborts=(StepAbort(7, 3), StepAbort(7, 1, attempt=2)),
            slowdowns=(PartitionSlowdown(3, 2.5, 5_000.0, 30_000.0),),
            abort_rate=0.25, declared_cost_sigma=0.5,
            declared_cost_factor=0.8, cascade=True,
            retry=RetryPolicy(kind="exponential", delay=100.0, cap=5_000.0))

    def test_round_trip_preserves_everything(self):
        plan = self.full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_empty_round_trip(self):
        assert FaultPlan.from_json(FaultPlan().to_json()) == FaultPlan()

    def test_to_json_is_deterministic(self):
        assert self.full_plan().to_json() == self.full_plan().to_json()

    def test_from_file(self, tmp_path):
        plan = self.full_plan()
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(str(path)) == plan

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown"):
            FaultPlan.from_json('{"explosions": 3}')

    def test_malformed_entry_rejected(self):
        with pytest.raises(FaultPlanError, match="malformed"):
            FaultPlan.from_json('{"crashes": [{"nodule": 1, "at": 5}]}')

    def test_non_object_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('[1, 2, 3]')

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json('{nope')

    def test_minimal_hand_written_plan(self):
        plan = FaultPlan.from_json('{"abort_rate": 0.1}')
        assert plan.abort_rate == 0.1
        assert plan.crashes == ()
        assert plan.retry is None
