"""Satellite fix: the declared-cost error model wired through fault plans.

The paper's Experiment 4 distorts the pre-declared ``costof`` the WTPG
weights are built from while the actual bulk work stays the truth.  The
fault-plan DSL reuses :func:`repro.workloads.errors.declare_with_error`
for exactly that distortion, so schedulers face wrong weights — and the
schedule must stay conflict-serializable anyway, because locking (not
the weights) carries correctness.
"""

import pytest

from repro.config import SimulationParameters
from repro.engine import RandomStreams
from repro.faults import FaultInjector, FaultPlan
from repro.faults.injector import STREAM_DECLARED
from repro.machine import run_simulation
from repro.workloads import pattern1, pattern1_catalog
from repro.workloads.errors import declare_with_error


class TestWiring:
    def test_distort_matches_declare_with_error(self):
        """The injector applies the exact workloads.errors model."""
        spec = pattern1()(1, RandomStreams(3))
        plan = FaultPlan(declared_cost_sigma=0.75)
        injected = FaultInjector(plan, RandomStreams(9)).distort(spec)
        expected = declare_with_error(list(spec.steps), RandomStreams(9),
                                      0.75, stream_name=STREAM_DECLARED)
        assert [s.declared_cost for s in injected.steps] == \
               [s.declared_cost for s in expected]

    def test_factor_then_sigma_composition(self):
        spec = pattern1()(1, RandomStreams(3))
        plan = FaultPlan(declared_cost_sigma=0.5, declared_cost_factor=0.5)
        injected = FaultInjector(plan, RandomStreams(9)).distort(spec)
        # Factor halves the declaration before the noise multiplies it,
        # so declared costs cannot all equal the clean model's output.
        clean = declare_with_error(list(spec.steps), RandomStreams(9),
                                   0.5, stream_name=STREAM_DECLARED)
        assert [s.declared_cost for s in injected.steps] != \
               [s.declared_cost for s in clean]


class TestUnderDeclaredStillSerializable:
    @pytest.mark.parametrize("scheduler", ["CHAIN", "K2"])
    def test_under_declared_costof_keeps_schedule_serializable(
            self, scheduler):
        """Under-declaration (factor 0.5, sigma 0.75) breaks the weights'
        accuracy, not the schedule's correctness."""
        plan = FaultPlan(declared_cost_sigma=0.75, declared_cost_factor=0.5)
        params = SimulationParameters(scheduler=scheduler,
                                      arrival_rate_tps=0.8,
                                      sim_clocks=120_000, seed=5,
                                      num_partitions=16)
        result = run_simulation(params, pattern1(),
                                catalog=pattern1_catalog(), fault_plan=plan,
                                record_history=True)
        assert result.metrics.commits > 0
        result.history.check_lock_exclusion()
        result.history.check_serializable()
        result.validate()
