"""The abort/restart path: scheduler excision, cascade, retry, config."""

import pytest

from repro.config import SimulationParameters
from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.core.invariants import check_consistency
from repro.core.schedulers import make_scheduler
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, NodeCrash, RetryPolicy, StepAbort
from repro.machine import run_simulation
from repro.workloads import pattern1, pattern1_catalog

WTPG_SCHEDULERS = ["C2PL", "CHAIN", "K2", "KWTPG", "CHAIN-C2PL", "K2-C2PL"]


def rt(tid, steps):
    return TransactionRuntime(TransactionSpec(tid, steps))


class TestSchedulerAbort:
    @pytest.mark.parametrize("name", WTPG_SCHEDULERS)
    def test_abort_excises_node_and_keeps_invariants(self, name):
        sched = make_scheduler(name)
        t1 = rt(1, [Step.write(0, 3), Step.write(1, 2)])
        t2 = rt(2, [Step.write(0, 1)])
        assert sched.admit(t1).admitted
        sched.admit(t2)  # may or may not be admitted; only t1 must die
        assert sched.abort_transaction(t1) in ((), (2,))
        assert 1 not in sched.wtpg
        assert not sched.table.is_registered(1)
        assert sched.wtpg.cache_violations() == []
        check_consistency(sched.table, sched.wtpg)

    @pytest.mark.parametrize("name", WTPG_SCHEDULERS)
    def test_survivors_commit_after_abort(self, name):
        sched = make_scheduler(name)
        t1 = rt(1, [Step.write(0, 2)])
        t2 = rt(2, [Step.write(0, 1)])
        assert sched.admit(t1).admitted
        if not sched.admit(t2).admitted:
            # Admission control deferred t2 behind t1; the abort must
            # clear the way for a fresh admission.
            sched.abort_transaction(t1)
            assert sched.admit(t2).admitted
        else:
            sched.abort_transaction(t1)
        # With the victim gone, the lone survivor's request must be
        # granted outright — nothing is left to conflict with.
        assert sched.request_lock(t2).granted
        t2.advance_step()
        sched.commit(t2)
        assert 2 not in sched.wtpg

    @pytest.mark.parametrize("name", ["2PL", "WAIT-DIE", "ASL", "NODC"])
    def test_non_wtpg_schedulers_tolerate_abort(self, name):
        sched = make_scheduler(name)
        t1 = rt(1, [Step.write(0, 1)])
        sched.admit(t1)
        assert sched.abort_transaction(t1) == ()

    def test_abort_generation_bump_invalidates_estimator_cache(self):
        sched = make_scheduler("K2")
        t1 = rt(1, [Step.write(0, 5), Step.write(1, 5)])
        t2 = rt(2, [Step.write(0, 2)])
        assert sched.admit(t1).admitted
        sched.admit(t2)
        before = sched.wtpg._structure_gen
        sched.abort_transaction(t1)
        assert sched.wtpg._structure_gen > before


class TestMachineAbortPath:
    def params(self, **overrides):
        base = dict(scheduler="K2", arrival_rate_tps=0.5, sim_clocks=60_000,
                    seed=3, num_partitions=16)
        base.update(overrides)
        return SimulationParameters(**base)

    def run(self, plan, **overrides):
        return run_simulation(self.params(**overrides), pattern1(),
                              catalog=pattern1_catalog(), fault_plan=plan,
                              record_history=True)

    def test_step_abort_kills_named_transaction_once(self):
        plan = FaultPlan(step_aborts=(StepAbort(1, 0),))
        result = self.run(plan)
        m = result.metrics
        assert m.fault_aborts == 1
        assert m.restarts >= 1
        assert m.commits > 0
        result.history.check_serializable()

    def test_abort_rate_produces_aborts_and_restarts(self):
        result = self.run(FaultPlan(abort_rate=0.4))
        m = result.metrics
        assert m.fault_aborts > 0
        # Every restart is the re-admission of an earlier abort; victims
        # assassinated near the horizon may not make it back in time.
        assert 0 < m.restarts <= m.aborts
        assert m.commits > 0
        result.history.check_serializable()

    def test_crash_aborts_resident_transactions(self):
        plan = FaultPlan(
            crashes=(NodeCrash(0, 10_000.0, recover_at=14_000.0),))
        result = self.run(plan)
        m = result.metrics
        assert m.node_crashes == 1
        assert m.crash_aborts >= 1
        kinds = [entry["kind"] for entry in m.fault_timeline]
        assert "node_crash" in kinds
        assert "node_recovery" in kinds
        result.history.check_serializable()

    def test_unrecovered_crash_still_commits_elsewhere(self):
        plan = FaultPlan(crashes=(NodeCrash(7, 2_000.0),))
        result = self.run(plan)
        assert result.metrics.commits > 0
        result.history.check_serializable()

    def test_cascade_reaches_precedence_successors(self):
        plan = FaultPlan(abort_rate=0.3, cascade=True)
        # Higher load so the WTPG actually holds conflicting pairs.
        result = self.run(plan, arrival_rate_tps=0.9, sim_clocks=120_000)
        m = result.metrics
        assert m.cascade_aborts > 0
        assert m.aborts == (m.fault_aborts + m.crash_aborts
                            + m.cascade_aborts)
        result.history.check_serializable()

    def test_timeline_entries_are_time_ordered_and_tagged(self):
        plan = FaultPlan(abort_rate=0.4,
                         crashes=(NodeCrash(1, 10_000.0,
                                            recover_at=15_000.0),))
        m = self.run(plan).metrics
        times = [entry["time"] for entry in m.fault_timeline]
        assert times == sorted(times)
        for entry in m.fault_timeline:
            assert entry["kind"] in ("abort", "node_crash", "node_recovery",
                                     "slowdown_start", "slowdown_end")

    def test_retry_policy_exponential_backoff_slows_restarts(self):
        aggressive = FaultPlan(abort_rate=0.5,
                               retry=RetryPolicy(kind="immediate"))
        patient = FaultPlan(abort_rate=0.5,
                            retry=RetryPolicy(kind="exponential",
                                              delay=8_000.0))
        fast = self.run(aggressive).metrics
        slow = self.run(patient).metrics
        # Identical fault draws; only the backoff differs, so the
        # patient run must spend strictly more time waiting.
        assert fast.restarts >= slow.restarts
        assert fast.commits >= slow.commits

    def test_machine_retry_policy_used_when_plan_has_none(self):
        result = self.run(FaultPlan(abort_rate=0.4),
                          retry_policy="exponential",
                          retry_backoff_cap=4_000.0)
        assert result.metrics.commits > 0


class TestConfigValidation:
    def test_retry_policy_names(self):
        for name in ("fixed", "immediate", "exponential"):
            SimulationParameters(retry_policy=name)
        with pytest.raises(ConfigurationError):
            SimulationParameters(retry_policy="bogus")

    def test_backoff_cap_non_negative(self):
        SimulationParameters(retry_backoff_cap=0.0)
        with pytest.raises(ConfigurationError):
            SimulationParameters(retry_backoff_cap=-1.0)
