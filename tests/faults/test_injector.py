"""FaultInjector unit behaviour: distortion, assassination, determinism."""

from repro.core.transaction import Step, TransactionRuntime, TransactionSpec
from repro.engine import RandomStreams
from repro.faults import FaultInjector, FaultPlan, StepAbort


def spec(tid=1, n_steps=4):
    return TransactionSpec(tid, [Step.write(p, 5.0) for p in range(n_steps)],
                           label="bat")


class TestDistort:
    def test_no_distortion_returns_same_object(self):
        injector = FaultInjector(FaultPlan(abort_rate=0.5), RandomStreams(1))
        s = spec()
        assert injector.distort(s) is s

    def test_factor_scales_declared_cost_only(self):
        plan = FaultPlan(declared_cost_factor=0.5)
        injector = FaultInjector(plan, RandomStreams(1))
        distorted = injector.distort(spec())
        for original, new in zip(spec().steps, distorted.steps):
            assert new.cost == original.cost           # actual untouched
            assert new.declared_cost == original.cost * 0.5

    def test_factor_composes_with_existing_declaration(self):
        s = TransactionSpec(1, [Step(0, "W", 10.0, declared_cost=4.0)])
        plan = FaultPlan(declared_cost_factor=2.0)
        injector = FaultInjector(plan, RandomStreams(1))
        assert injector.distort(s).steps[0].declared_cost == 8.0

    def test_sigma_is_seed_deterministic(self):
        plan = FaultPlan(declared_cost_sigma=0.75)
        a = FaultInjector(plan, RandomStreams(42)).distort(spec())
        b = FaultInjector(plan, RandomStreams(42)).distort(spec())
        c = FaultInjector(plan, RandomStreams(43)).distort(spec())
        assert [s.declared_cost for s in a.steps] == \
               [s.declared_cost for s in b.steps]
        assert [s.declared_cost for s in a.steps] != \
               [s.declared_cost for s in c.steps]

    def test_distortion_preserves_tid_and_label(self):
        plan = FaultPlan(declared_cost_factor=0.5)
        distorted = FaultInjector(plan, RandomStreams(1)).distort(spec())
        assert distorted.tid == 1
        assert distorted.label == "bat"


class TestPlanAbort:
    def test_explicit_step_abort_fires_on_its_attempt(self):
        plan = FaultPlan(step_aborts=(StepAbort(1, 2, attempt=1),
                                      StepAbort(1, 0, attempt=2)))
        injector = FaultInjector(plan, RandomStreams(1))
        txn = TransactionRuntime(spec(tid=1))
        assert injector.plan_abort(txn) == 2          # attempt 1
        txn.reset_for_retry()
        assert injector.plan_abort(txn) == 0          # attempt 2
        txn.reset_for_retry()
        assert injector.plan_abort(txn) is None       # attempt 3: no entry

    def test_explicit_abort_clamped_to_step_count(self):
        plan = FaultPlan(step_aborts=(StepAbort(1, 99),))
        injector = FaultInjector(plan, RandomStreams(1))
        txn = TransactionRuntime(spec(tid=1, n_steps=3))
        assert injector.plan_abort(txn) == 3          # pre-commit abort

    def test_explicit_abort_consumes_no_randomness(self):
        plan = FaultPlan(step_aborts=(StepAbort(1, 0),), abort_rate=0.5)
        streams = RandomStreams(7)
        injector = FaultInjector(plan, streams)
        injector.plan_abort(TransactionRuntime(spec(tid=1)))
        # The "faults-aborts" stream is untouched: a fresh copy of the
        # same seed agrees on the next draw.
        from repro.faults.injector import STREAM_ABORTS
        fresh = RandomStreams(7)
        assert streams.stream(STREAM_ABORTS).random() == \
               fresh.stream(STREAM_ABORTS).random()

    def test_zero_rate_never_aborts(self):
        injector = FaultInjector(FaultPlan(cascade=True), RandomStreams(1))
        for tid in range(1, 50):
            assert injector.plan_abort(
                TransactionRuntime(spec(tid=tid))) is None

    def test_unit_rate_always_aborts_within_bounds(self):
        injector = FaultInjector(FaultPlan(abort_rate=1.0), RandomStreams(1))
        for tid in range(1, 50):
            step = injector.plan_abort(TransactionRuntime(spec(tid=tid)))
            assert step is not None
            assert 0 <= step <= 4

    def test_rate_draws_are_seed_deterministic(self):
        plan = FaultPlan(abort_rate=0.3)
        def schedule(seed):
            injector = FaultInjector(plan, RandomStreams(seed))
            return [injector.plan_abort(TransactionRuntime(spec(tid=t)))
                    for t in range(1, 100)]
        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)

    def test_rate_roughly_matches_frequency(self):
        injector = FaultInjector(FaultPlan(abort_rate=0.3), RandomStreams(5))
        hits = sum(1 for t in range(1, 1001)
                   if injector.plan_abort(
                       TransactionRuntime(spec(tid=t))) is not None)
        assert 200 < hits < 400
