"""Determinism regression: same seed + same plan => byte-identical runs."""

import json

import pytest

from repro.config import SimulationParameters
from repro.faults import FaultPlan, NodeCrash, PartitionSlowdown, RetryPolicy
from repro.machine.cluster import Cluster
from repro.machine.trace import Tracer
from repro.workloads import pattern1, pattern1_catalog

SCHEDULERS = ["CHAIN", "K2", "C2PL", "2PL"]

FAULT_PLAN = FaultPlan(
    crashes=(NodeCrash(2, 15_000.0, recover_at=25_000.0),),
    slowdowns=(PartitionSlowdown(3, 2.0, 5_000.0, 40_000.0),),
    abort_rate=0.25, declared_cost_sigma=0.5, cascade=True,
    retry=RetryPolicy(kind="exponential", delay=200.0, cap=5_000.0))


def run_once(scheduler, fault_plan):
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=0.6,
                                  sim_clocks=60_000, seed=11,
                                  num_partitions=16)
    cluster = Cluster(params, pattern1(), catalog=pattern1_catalog(),
                      tracer=Tracer(), fault_plan=fault_plan)
    result = cluster.run()
    trace_bytes = "\n".join(e.to_json() for e in result.tracer.events)
    metrics_bytes = json.dumps(result.metrics.as_dict(), sort_keys=True)
    return trace_bytes, metrics_bytes


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_same_seed_same_plan_same_bytes(self, scheduler):
        first = run_once(scheduler, FAULT_PLAN)
        second = run_once(scheduler, FAULT_PLAN)
        assert first[0] == second[0], "traces diverged"
        assert first[1] == second[1], "metrics diverged"

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_plan_round_tripped_through_json_replays_identically(
            self, scheduler):
        reloaded = FaultPlan.from_json(FAULT_PLAN.to_json())
        assert run_once(scheduler, FAULT_PLAN) == \
               run_once(scheduler, reloaded)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_no_plan_and_empty_plan_are_bit_identical(self, scheduler):
        # The fault subsystem must be invisible when unused: an empty
        # plan builds no injector, draws no randomness and perturbs no
        # event ordering.
        assert run_once(scheduler, None) == run_once(scheduler, FaultPlan())

    def test_different_seed_diverges(self):
        # Sanity check that the comparison would actually catch drift.
        params_a = SimulationParameters(scheduler="K2", sim_clocks=60_000,
                                        seed=11, num_partitions=16,
                                        arrival_rate_tps=0.6)
        params_b = params_a.with_overrides(seed=12)
        results = []
        for params in (params_a, params_b):
            cluster = Cluster(params, pattern1(),
                              catalog=pattern1_catalog(), tracer=Tracer(),
                              fault_plan=FAULT_PLAN)
            result = cluster.run()
            results.append("\n".join(e.to_json()
                                     for e in result.tracer.events))
        assert results[0] != results[1]
